#!/usr/bin/env bash
# Smoke test for the serving stack: build rarserved and rarload with the
# race detector, stand a server up on an ephemeral port, drive it with a
# deterministic hot/cold request mix, and require zero request errors
# plus at least one cross-request dedup hit (rarload -assert-dedup).
# A second wave must be answered entirely from cache (no new sims).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    if [ -n "${server_pid:-}" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid"
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -race -o "$tmp/rarserved" ./cmd/rarserved
go build -race -o "$tmp/rarload" ./cmd/rarload

"$tmp/rarserved" -addr 127.0.0.1:0 -cache "$tmp/cache" -failure-ttl 10s \
    > "$tmp/server.log" 2>&1 &
server_pid=$!

# The server prints "listening on <addr>" once the listener is bound.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$tmp/server.log")
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: server died at startup:" >&2
        cat "$tmp/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: server never reported its address" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

echo "serve-smoke: cold wave against $addr"
"$tmp/rarload" -addr "$addr" -wait 10s -requests 24 -concurrency 8 \
    -n 20000 -hot 0.75 -assert-dedup

echo "serve-smoke: warm wave (must not simulate anything new)"
before=$(curl -sf "http://$addr/metrics" | sed 's/.*"simulated":\([0-9]*\).*/\1/')
"$tmp/rarload" -addr "$addr" -requests 24 -concurrency 8 \
    -n 20000 -hot 0.75 -assert-dedup
after=$(curl -sf "http://$addr/metrics" | sed 's/.*"simulated":\([0-9]*\).*/\1/')
if [ "$before" != "$after" ]; then
    echo "serve-smoke: warm wave simulated $((after - before)) new cells, want 0" >&2
    exit 1
fi

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "serve-smoke: server exited non-zero on SIGTERM" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
server_pid=""
echo "serve-smoke: ok"
