// Package report renders experiment results as aligned ASCII tables and
// CSV, matching the rows and series of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row from a label and float values rendered with %.3f.
func (t *Table) AddF(label string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf("%.3f", v))
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts = append(parts, fmt.Sprintf("%-*s", widths[i], c))
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(widths))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as CSV to w.
func (t *Table) WriteCSV(w io.Writer) {
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	write(t.Header)
	for _, r := range t.Rows {
		write(r)
	}
}

// F formats a float with three decimals, for ad-hoc rows.
//
//rarlint:pure
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// X formats a ratio as "N.NNx".
//
//rarlint:pure
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Pct formats a ratio-relative-to-1 as a signed percentage
// (1.335 -> "+33.5%").
//
//rarlint:pure
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", (v-1)*100) }
