package report

import (
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1.0")
	tb.AddRow("beta-longer", "2.0")
	var sb strings.Builder
	tb.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "beta-longer") {
		t.Error("missing row")
	}
	// Columns align: 'value' entries start at the same offset in each line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	h := strings.Index(lines[1], "value")
	r1 := strings.Index(lines[3], "1.0")
	r2 := strings.Index(lines[4], "2.0")
	if h != r1 || r1 != r2 {
		t.Errorf("columns misaligned: %d %d %d", h, r1, r2)
	}
}

func TestTableAddF(t *testing.T) {
	tb := NewTable("", "x", "a", "b")
	tb.AddF("row", 1.23456, 2)
	if len(tb.Rows) != 1 || tb.Rows[0][1] != "1.235" || tb.Rows[0][2] != "2.000" {
		t.Errorf("AddF row = %v", tb.Rows)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`comma,here`, `quote"inside`)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"comma,here"`) {
		t.Errorf("comma field not quoted: %q", out)
	}
	if !strings.Contains(out, `"quote""inside"`) {
		t.Errorf("quote not doubled: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header line: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if X(4.8) != "4.80x" {
		t.Errorf("X = %q", X(4.8))
	}
	if Pct(1.335) != "+33.5%" {
		t.Errorf("Pct = %q", Pct(1.335))
	}
	if Pct(0.907) != "-9.3%" {
		t.Errorf("Pct = %q", Pct(0.907))
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")
	var sb strings.Builder
	tb.Write(&sb) // must not panic on short rows
	if !strings.Contains(sb.String(), "only-one") {
		t.Error("short row dropped")
	}
}
