// Package multicore simulates a chip with several out-of-order cores
// sharing a last-level cache and DRAM — the deployment the paper's
// conclusion points at ("deploying RAR in the OoO cores will further
// enhance soft-error reliability of the overall system", §VI-E).
//
// Cores step in lockstep (one cycle each per chip cycle), so LLC capacity
// pressure and DRAM bank/bus queueing between co-runners resolve exactly
// as in the single-core model. Each core runs its own workload under its
// own scheme, so homogeneous (all-RAR) and heterogeneous (mixed-scheme)
// chips can both be built.
package multicore

import (
	"fmt"
	"math"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/mem"
	"rarsim/internal/trace"
)

// Workload assigns one core its benchmark and mechanism.
type Workload struct {
	Bench  trace.Benchmark
	Scheme config.Scheme
}

// System is a multicore chip.
type System struct {
	cores  []*core.Core
	shared *mem.SharedLLC
	chip   uint64 // chip cycle
}

// New builds a chip of len(loads) cores with private L1/L2/MSHRs and a
// shared LLC and DRAM. Core i runs loads[i] with a seed derived from seed
// and its index.
func New(cfg config.Core, loads []Workload, seed uint64) (*System, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("multicore: need at least one workload")
	}
	shared := mem.NewSharedLLC(cfg.Mem)
	s := &System{shared: shared}
	for i, w := range loads {
		gen := trace.New(w.Bench, seed+uint64(i)*0x9E37)
		h := mem.NewHierarchyWithShared(cfg.Mem, shared)
		c := core.NewWithHierarchy(cfg, w.Scheme, w.Bench.Name, gen, h)
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Run simulates until every core has committed instructions, freezing
// cores as they finish (a finished core stops issuing memory traffic).
// It returns per-core statistics in core order.
func (s *System) Run(instructions uint64) ([]core.Stats, error) {
	running := len(s.cores)
	done := make([]bool, len(s.cores))
	for _, c := range s.cores {
		c.SetCommitLimit(instructions)
	}
	lastProgress := s.chip
	var lastSum uint64
	for running > 0 {
		s.chip++
		var sum uint64
		for i, c := range s.cores {
			if done[i] {
				continue
			}
			c.Step()
			sum += c.Committed()
			if c.Committed() >= instructions {
				done[i] = true
				running--
			}
		}
		if sum != lastSum {
			lastSum = sum
			lastProgress = s.chip
		} else if s.chip-lastProgress > 1_000_000 {
			return nil, fmt.Errorf("multicore: no progress for 1M chip cycles (%d cores left)", running)
		}
	}
	out := make([]core.Stats, len(s.cores))
	for i, c := range s.cores {
		out[i] = c.Snapshot()
	}
	return out, nil
}

// ChipMTTFRel returns the chip-level mean-time-to-failure of a system run
// relative to a baseline run of the same workloads: the chip's failure
// rate is the sum of the per-core derated rates (FIT_i ∝ AVF_i × N_i,
// Equation 4), so
//
//	MTTF_rel = Σ_i AVF_base_i·N_i / Σ_i AVF_i·N_i.
//
// A zero denominator (no cores, or a run with no derated failure rate at
// all) has no meaningful ratio: the result is NaN, never a fake "worst
// possible" 0 — the same zero-collapse family HarmMean/GeoMean already
// guard against.
func ChipMTTFRel(baseline, system []core.Stats) float64 {
	var num, den float64
	for i := range baseline {
		num += baseline[i].AVF() * float64(baseline[i].TotalBits)
	}
	for i := range system {
		den += system[i].AVF() * float64(system[i].TotalBits)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// ChipThroughputRel returns the chip's aggregate instruction throughput
// relative to a baseline run of the same workloads. A zero baseline
// (no cores, or cores that committed nothing) yields NaN: "relative to
// nothing" is undefined, and 0 would silently read as a total stall.
func ChipThroughputRel(baseline, system []core.Stats) float64 {
	var base, sys float64
	for i := range baseline {
		base += baseline[i].IPC()
	}
	for i := range system {
		sys += system[i].IPC()
	}
	if base == 0 {
		return math.NaN()
	}
	return sys / base
}

// LedgerAVFSum is a helper exposing the chip's summed derated rate, for
// ad-hoc reporting.
func LedgerAVFSum(stats []core.Stats) float64 {
	var sum float64
	for i := range stats {
		sum += stats[i].AVF() * float64(stats[i].TotalBits)
	}
	return sum
}
