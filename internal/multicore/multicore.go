// Package multicore simulates a chip with several out-of-order cores
// sharing a last-level cache and DRAM — the deployment the paper's
// conclusion points at ("deploying RAR in the OoO cores will further
// enhance soft-error reliability of the overall system", §VI-E).
//
// The model is lockstep — one cycle per core per chip cycle — so LLC
// capacity pressure and DRAM bank/bus queueing between co-runners resolve
// exactly as in the single-core model. The chip-level stall fast-forward
// (see Run) defers provably quiescent cores instead of ticking them, but
// by the byte-identical equivalence contract that changes wall-clock time
// only, never results. Each core runs its own workload under its own
// scheme, so homogeneous (all-RAR) and heterogeneous (mixed-scheme) chips
// can both be built.
package multicore

import (
	"fmt"
	"math"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/mem"
	"rarsim/internal/trace"
)

// Workload assigns one core its benchmark and mechanism.
type Workload struct {
	Bench  trace.Benchmark
	Scheme config.Scheme
}

// System is a multicore chip.
type System struct {
	cores  []*core.Core
	hiers  []*mem.Hierarchy
	shared *mem.SharedLLC
	//rarlint:nscaled the chip clock is the skip target: skipQuietGap jumps it to the earliest core event
	chip uint64 // chip cycle

	// noFF disables the chip-level epoch fast-forward, forcing the classic
	// cycle-by-cycle lockstep loop — the multicore face of the core's
	// -no-ff escape hatch. By the equivalence contract it changes
	// wall-clock time only, never per-core Stats.
	noFF bool

	// nextEv caches each core's NextEventCycle. A core whose cached event
	// lies beyond the current chip cycle is quiescent, and a quiescent
	// core's Step is a state no-op by the fast-forward completeness
	// argument (ff.go leg 1) — so Run defers it entirely: the core is not
	// stepped again until its clock would reach the cached cycle, and the
	// deferred stretch is integrated in one SkipTo when it comes due. The
	// cache is recomputed only at the bottom of a cycle the core actually
	// stepped, which is also the only kind of cycle its state can change.
	nextEv []uint64 //rarlint:unit cycles

	// watchdog is the no-progress deadline in ticked chip cycles
	// (chipWatchdogWindow unless a test shrinks it).
	watchdog uint64
}

// chipWatchdogWindow is the chip-level no-progress deadline: if no core
// commits for this many *ticked* chip cycles — lockstep iterations
// actually simulated, not epochs skipped in bulk — the run reports a
// deadlock. Counting ticks keeps the watchdog's two properties independent
// of the epoch fast-forward, exactly as in the single-core loop: a
// legitimate chip-wide stall longer than the window collapses into a few
// ticks and survives, while a genuine deadlock generates no events, is
// never skipped, and accumulates ticks until the watchdog fires.
const chipWatchdogWindow = 1_000_000

// New builds a chip of len(loads) cores with private L1/L2/MSHRs and a
// shared LLC and DRAM. Core i runs loads[i] with a seed derived from seed
// and its index.
func New(cfg config.Core, loads []Workload, seed uint64) (*System, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("multicore: need at least one workload")
	}
	shared := mem.NewSharedLLC(cfg.Mem)
	s := &System{shared: shared, watchdog: chipWatchdogWindow}
	for i, w := range loads {
		gen := trace.New(w.Bench, seed+uint64(i)*0x9E37)
		h := mem.NewHierarchyWithShared(cfg.Mem, shared)
		c := core.NewWithHierarchy(cfg, w.Scheme, w.Bench.Name, gen, h)
		s.cores = append(s.cores, c)
		s.hiers = append(s.hiers, h)
	}
	s.nextEv = make([]uint64, len(s.cores))
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Core exposes core i — tests and tools arm individual cores with audits
// (EnableAudit) or fault-injection campaigns (InjectSamples) before Run;
// the epoch fast-forward clamps to each core's exact-cycle obligations.
func (s *System) Core(i int) *core.Core { return s.cores[i] }

// SetStallFastForward enables or disables the chip-level epoch
// fast-forward (default: enabled). Disabling forces the classic
// cycle-by-cycle lockstep loop; by the equivalence contract it changes
// wall-clock time only.
func (s *System) SetStallFastForward(enabled bool) { s.noFF = !enabled }

// FFSkippedCycles returns the total cycles the epoch fast-forward has
// skipped in bulk, summed over cores (diagnostics; not part of Stats,
// which must stay identical with the fast-forward on and off).
func (s *System) FFSkippedCycles() uint64 {
	var sum uint64
	for _, c := range s.cores {
		sum += c.FFSkippedCycles()
	}
	return sum
}

// Run simulates until every core has committed instructions, freezing
// cores as they finish (a finished core stops issuing memory traffic).
// It returns per-core statistics in core order.
//
// The chip-level stall fast-forward defers each core individually: a core
// whose next event lies in the future is not stepped at all — its Steps
// would be state no-ops by the single-core fast-forward completeness
// argument — and is bulk-advanced (SkipTo) over the deferred stretch only
// when its event comes due. When *every* live core is deferred, the chip
// cycle itself jumps to one short of the earliest next event across cores
// (skipQuietGap). Per-core deferral is what makes the skip pay on real
// chips: co-runners' stall windows rarely line up, so a whole-chip epoch
// would be capped by the *intersection* of quiescent windows, while
// deferral collapses each core's own stalls regardless of its neighbours.
//
// Equivalence rides on the single-core argument (DESIGN.md §7) applied
// per core: a deferred core makes no shared-LLC/DRAM/prefetcher Access
// during the window — cross-core coupling only ever happens through those
// calls, and the shared components are pure timestamp machines in between
// — so the shared state every stepping core observes, and the intra-cycle
// core ordering, are identical to the cycle-by-cycle lockstep run. Each
// deferred stretch integrates over frozen state exactly as in the core's
// own skipStall, so per-core Stats stay byte-identical.
func (s *System) Run(instructions uint64) ([]core.Stats, error) {
	running := len(s.cores)
	done := make([]bool, len(s.cores))
	if s.nextEv == nil {
		s.nextEv = make([]uint64, len(s.cores))
	}
	for i, c := range s.cores {
		c.SetCommitLimit(instructions)
		s.nextEv[i] = 0 // due immediately: every core steps its first cycle
	}
	// The watchdog sums committed instructions over *all* cores, finished
	// ones included: a core reaching its commit limit merely stops adding,
	// it never subtracts. (Summing live cores only made the total drop when
	// a core finished, which read as progress and silently granted a
	// genuinely hung co-runner an extra full watchdog window.) It counts
	// ticked chip cycles — loop iterations actually simulated — not wall
	// cycles, so bulk-skipped stretches cannot starve a deadlocked chip of
	// its deadline: a deadlocked chip generates no events, is never
	// skipped, and accumulates ticks until the watchdog fires.
	var ticked, lastProgressTick uint64
	var lastSum uint64
	// Busy-core fast path: probing NextEventCycle costs O(structures), and
	// on a cycle that made forward progress it almost always answers "due
	// next cycle" anyway. Track each core's progress counter and only probe
	// after a cycle that provably did nothing — the same one-sided guard as
	// the single-core loop: skipping the probe can only keep a core ticking
	// (the lockstep status quo), never defer one early, so results are
	// untouched by construction.
	lastProg := make([]uint64, len(s.cores))
	for i, c := range s.cores {
		lastProg[i] = c.Progress() - 1 // force a first-cycle mismatch
	}
	for running > 0 {
		if !s.noFF {
			s.skipQuietGap(done)
		}
		s.chip++
		for i, c := range s.cores {
			if done[i] {
				continue
			}
			if !s.noFF {
				if s.nextEv[i] > s.chip {
					continue // deferred: provably cannot act this cycle
				}
				if c.CycleCount()+1 < s.chip {
					// Integrate the deferred quiet stretch before acting:
					// n-scaled stall accounting, ledger advance, exact
					// audit/injection clamps all happen inside SkipTo.
					c.SkipTo(s.chip - 1)
				}
			}
			c.Step()
			if c.Committed() >= instructions {
				done[i] = true
				running--
				continue
			}
			if !s.noFF {
				if p := c.Progress(); p != lastProg[i] {
					lastProg[i] = p
					s.nextEv[i] = s.chip + 1 // busy: assume due, skip the probe
				} else {
					s.nextEv[i] = c.NextEventCycle()
				}
			}
		}
		var sum uint64
		for _, c := range s.cores {
			sum += c.Committed()
		}
		ticked++
		if sum != lastSum {
			lastSum = sum
			lastProgressTick = ticked
		} else if ticked-lastProgressTick > s.watchdog {
			return nil, fmt.Errorf("multicore: no commit on any core for %d ticked chip cycles at chip cycle %d (%d cores left)",
				s.watchdog, s.chip, running)
		}
	}
	out := make([]core.Stats, len(s.cores))
	for i, c := range s.cores {
		out[i] = c.Snapshot()
	}
	return out, nil
}

// skipQuietGap advances the chip clock to one cycle short of the earliest
// next event across live cores when no core is due on the upcoming cycle —
// the all-deferred case of the per-core skip in Run. Each cached next
// event is already clamped to that core's exact-cycle audit/injection
// obligations and its own MSHR fill bound; on top of that the gap is
// lowered defensively below every hierarchy's earliest outstanding fill,
// finished cores included, so no shared-LLC/DRAM return time can land
// inside a skipped stretch even for a core that stopped being scanned when
// it finished. A chip whose live cores have no pending events at all
// (deadlock) never jumps: the watchdog keeps ticking until it fires.
//
//rarlint:hot
func (s *System) skipQuietGap(done []bool) {
	target := core.NoEventCycle
	for i := range s.cores {
		if done[i] {
			continue
		}
		ev := s.nextEv[i]
		if ev <= s.chip+1 {
			return // a core is due next cycle: nothing to skip
		}
		if ev < target {
			target = ev
		}
	}
	if target == core.NoEventCycle {
		return
	}
	for _, h := range s.hiers {
		if fill, ok := h.NextFillAt(s.chip); ok && fill < target {
			target = fill
		}
	}
	if target <= s.chip+1 {
		return
	}
	s.chip = target - 1
}

// ChipMTTFRel returns the chip-level mean-time-to-failure of a system run
// relative to a baseline run of the same workloads: the chip's failure
// rate is the sum of the per-core derated rates (FIT_i ∝ AVF_i × N_i,
// Equation 4), so
//
//	MTTF_rel = Σ_i AVF_base_i·N_i / Σ_i AVF_i·N_i.
//
// A zero denominator (no cores, or a run with no derated failure rate at
// all) has no meaningful ratio: the result is NaN, never a fake "worst
// possible" 0 — the same zero-collapse family HarmMean/GeoMean already
// guard against.
func ChipMTTFRel(baseline, system []core.Stats) float64 {
	var num, den float64
	for i := range baseline {
		num += baseline[i].AVF() * float64(baseline[i].TotalBits)
	}
	for i := range system {
		den += system[i].AVF() * float64(system[i].TotalBits)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// ChipThroughputRel returns the chip's aggregate instruction throughput
// relative to a baseline run of the same workloads. A zero baseline
// (no cores, or cores that committed nothing) yields NaN: "relative to
// nothing" is undefined, and 0 would silently read as a total stall.
func ChipThroughputRel(baseline, system []core.Stats) float64 {
	var base, sys float64
	for i := range baseline {
		base += baseline[i].IPC()
	}
	for i := range system {
		sys += system[i].IPC()
	}
	if base == 0 {
		return math.NaN()
	}
	return sys / base
}

// LedgerAVFSum is a helper exposing the chip's summed derated rate, for
// ad-hoc reporting.
func LedgerAVFSum(stats []core.Stats) float64 {
	var sum float64
	for i := range stats {
		sum += stats[i].AVF() * float64(stats[i].TotalBits)
	}
	return sum
}
