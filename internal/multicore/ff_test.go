package multicore

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"rarsim/internal/ace"
	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/mem"
	"rarsim/internal/trace"
)

// chipLoads builds a workload list pairing benches[i] with schemes[i%len].
func chipLoads(t *testing.T, benches []string, schemes []config.Scheme) []Workload {
	t.Helper()
	var out []Workload
	for i, n := range benches {
		b, err := trace.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Workload{Bench: b, Scheme: schemes[i%len(schemes)]})
	}
	return out
}

// runChipFF builds a chip, lets arm tweak individual cores, runs n
// instructions per core with the epoch fast-forward on or off, and
// returns the per-core Stats plus the system.
func runChipFF(t *testing.T, loads []Workload, ff bool, n uint64, arm func(*System)) ([]core.Stats, *System) {
	t.Helper()
	sys, err := New(config.Baseline(), loads, 42)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetStallFastForward(ff)
	if arm != nil {
		arm(sys)
	}
	stats, err := sys.Run(n)
	if err != nil {
		t.Fatalf("ff=%v: %v", ff, err)
	}
	return stats, sys
}

// assertChipsEqual asserts per-core Stats — every field, CommitHash
// included — are byte-identical between the two runs.
func assertChipsEqual(t *testing.T, on, off []core.Stats) {
	t.Helper()
	if len(on) != len(off) {
		t.Fatalf("core count diverges: ff=%d no-ff=%d", len(on), len(off))
	}
	for i := range on {
		if !reflect.DeepEqual(on[i], off[i]) {
			t.Errorf("core %d stats diverge with epoch fast-forward:\n on: %+v\noff: %+v",
				i, on[i], off[i])
		}
	}
}

// TestChipFFEquivalence is the tentpole's chip-level correctness
// contract: for homogeneous chips of every scheme family over a
// memory-intensive mix, and for heterogeneous scheme×bench chips, a run
// with the epoch fast-forward enabled must produce per-core Stats
// byte-identical (reflect.DeepEqual, CommitHash included) to the
// cycle-by-cycle lockstep run.
func TestChipFFEquivalence(t *testing.T) {
	memMix := []string{"libquantum", "gems", "fotonik", "milc"}
	cases := []struct {
		name    string
		benches []string
		schemes []config.Scheme
	}{
		{"all-OoO/mem", memMix, []config.Scheme{config.OoO}},
		{"all-FLUSH/mem", memMix, []config.Scheme{config.FLUSH}},
		{"all-TR/mem", memMix, []config.Scheme{config.TR}},
		{"all-PRE/mem", memMix, []config.Scheme{config.PRE}},
		{"all-RAR/mem", memMix, []config.Scheme{config.RAR}},
		{"hetero-scheme/mem", memMix,
			[]config.Scheme{config.RAR, config.OoO, config.FLUSH, config.TR}},
		{"hetero-scheme/mixed", []string{"libquantum", "exchange2", "mcf", "x264"},
			[]config.Scheme{config.RAR, config.OoO}},
		{"two-core", []string{"mcf", "libquantum"},
			[]config.Scheme{config.RARLate, config.PRE}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			loads := chipLoads(t, tc.benches, tc.schemes)
			on, sysOn := runChipFF(t, loads, true, 10_000, nil)
			off, sysOff := runChipFF(t, loads, false, 10_000, nil)
			assertChipsEqual(t, on, off)
			if sysOff.FFSkippedCycles() != 0 {
				t.Errorf("disabled epoch fast-forward still skipped %d cycles",
					sysOff.FFSkippedCycles())
			}
			_ = sysOn
		})
	}
}

// TestChipFFSkipsAreSubstantial: on an all-memory-bound chip the cores
// spend most cycles parked on DRAM together, so the epoch skip must
// actually collapse a large share of the chip's core-cycles — otherwise
// it is silently disabled and the multicore perf win is gone.
func TestChipFFSkipsAreSubstantial(t *testing.T) {
	loads := chipLoads(t, []string{"libquantum", "gems", "fotonik", "milc"},
		[]config.Scheme{config.OoO})
	_, sys := runChipFF(t, loads, true, 20_000, nil)
	var coreCycles uint64
	for i := 0; i < sys.Cores(); i++ {
		coreCycles += sys.Core(i).CycleCount()
	}
	if skipped := sys.FFSkippedCycles(); skipped < coreCycles/4 {
		t.Errorf("epoch fast-forward skipped only %d of %d core-cycles on a memory-bound chip",
			skipped, coreCycles)
	}
}

// TestChipFFEquivalenceWithObligations: exact-cycle obligations must
// clamp the epoch skip per core — one core runs a fault-injection
// campaign (strikes at precise cycles), another runs the invariant
// auditor (every N cycles), and the chip's per-core results must still be
// byte-identical with the epoch fast-forward on and off. The injection
// outcomes themselves must also agree, or a skipped epoch silently moved
// a strike.
func TestChipFFEquivalenceWithObligations(t *testing.T) {
	mkSamples := func() []core.InjectSample {
		var s []core.InjectSample
		for cyc := uint64(2_003); cyc < 60_000; cyc += 7_919 {
			s = append(s,
				core.InjectSample{Cycle: cyc, Structure: ace.ROB, Slot: int(cyc % 192)},
				core.InjectSample{Cycle: cyc + 13, Structure: ace.IQ, Slot: int(cyc % 92)},
			)
		}
		return s
	}
	loads := chipLoads(t, []string{"libquantum", "gems", "fotonik", "milc"},
		[]config.Scheme{config.RAR, config.OoO})
	run := func(ff bool) ([]core.Stats, []core.InjectSample) {
		samples := mkSamples()
		stats, _ := runChipFF(t, loads, ff, 10_000, func(s *System) {
			s.Core(1).InjectSamples(samples)
			s.Core(2).EnableAudit(1_000)
		})
		return stats, samples
	}
	on, onS := run(true)
	off, offS := run(false)
	assertChipsEqual(t, on, off)
	if !reflect.DeepEqual(onS, offS) {
		for i := range onS {
			if onS[i] != offS[i] {
				t.Errorf("sample %d diverges: ff=%+v no-ff=%+v", i, onS[i], offS[i])
			}
		}
	}
	resolved := 0
	for _, s := range onS {
		if s.Outcome != core.InjectPending {
			resolved++
		}
	}
	if resolved == 0 {
		t.Error("no injection sample resolved — the test exercised nothing")
	}
}

// TestRandomChipsFFEquivalence fuzzes the chip-level contract alongside
// the single-core TestRandomProgramsFFEquivalence: random synthetic
// programs on randomly sized chips with random scheme assignments must
// produce per-core Stats identical with the epoch fast-forward on and
// off. Random dependence structures and stream patterns hunt for
// cross-core event couplings skipEpoch's bound might miss.
func TestRandomChipsFFEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	schemes := []config.Scheme{config.OoO, config.FLUSH, config.TR, config.PREEarly, config.RAR}
	f := func(raw []byte, seed uint64) bool {
		nCores := 2 + int(seed%3)
		var loads []Workload
		for i := 0; i < nCores; i++ {
			// Distinct per-core programs: rotate the raw bytes so each
			// core runs a different (but reproducible) kernel.
			rot := append(append([]byte(nil), raw...), byte(i), byte(seed>>uint(8*i)))
			loads = append(loads, Workload{
				Bench:  trace.RandomBenchmark(rot),
				Scheme: schemes[(int(seed%uint64(len(schemes)))+i)%len(schemes)],
			})
		}
		run := func(ff bool) ([]core.Stats, error) {
			sys, err := New(config.Baseline(), loads, seed)
			if err != nil {
				return nil, err
			}
			sys.SetStallFastForward(ff)
			return sys.Run(3_000)
		}
		on, errOn := run(true)
		off, errOff := run(false)
		if errOn != nil || errOff != nil {
			t.Logf("errOn=%v errOff=%v raw=%v seed=%d", errOn, errOff, raw, seed)
			return false
		}
		for i := range on {
			if !reflect.DeepEqual(on[i], off[i]) {
				t.Logf("core %d seed=%d raw=%v:\n on: %+v\noff: %+v", i, seed, raw, on[i], off[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestChipWatchdogFrozenCoRunner pins the watchdog's false-progress fix:
// a chip where one core finishes and its co-runner is genuinely wedged
// must still trip the no-progress watchdog. (The old per-cycle sum
// covered live cores only, so the finished core dropping out made the
// total *decrease*, which read as progress and reset the deadline.) The
// frozen core here has a zero-entry load queue: its first load can never
// dispatch, the front-end fills, and no event source ever fires.
func TestChipWatchdogFrozenCoRunner(t *testing.T) {
	healthyCfg := config.Baseline()
	frozenCfg := config.Baseline()
	frozenCfg.LQ = 0
	b, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	shared := mem.NewSharedLLC(healthyCfg.Mem)
	mk := func(cfg config.Core, seed uint64) (*core.Core, *mem.Hierarchy) {
		h := mem.NewHierarchyWithShared(cfg.Mem, shared)
		return core.NewWithHierarchy(cfg, config.OoO, b.Name, trace.New(b, seed), h), h
	}
	healthy, h1 := mk(healthyCfg, 42)
	frozen, h2 := mk(frozenCfg, 43)
	sys := &System{
		cores:    []*core.Core{healthy, frozen},
		hiers:    []*mem.Hierarchy{h1, h2},
		shared:   shared,
		watchdog: 20_000,
	}
	_, err = sys.Run(2_000)
	if err == nil {
		t.Fatal("frozen co-runner must trip the chip watchdog")
	}
	if !strings.Contains(err.Error(), "no commit") {
		t.Fatalf("want a no-progress report, got: %v", err)
	}
	if healthy.Committed() < 2_000 {
		t.Errorf("healthy core committed %d before the watchdog fired, want 2000 — "+
			"the deadline must only cover the wedged remainder", healthy.Committed())
	}
}
