package multicore

import (
	"math"
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

func loads(t *testing.T, scheme config.Scheme, names ...string) []Workload {
	t.Helper()
	var out []Workload
	for _, n := range names {
		b, err := trace.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Workload{Bench: b, Scheme: scheme})
	}
	return out
}

func runChip(t *testing.T, scheme config.Scheme, n uint64) []core.Stats {
	t.Helper()
	sys, err := New(config.Baseline(), loads(t, scheme, "libquantum", "gems", "fotonik", "milc"), 42)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestChipRuns(t *testing.T) {
	stats := runChip(t, config.OoO, 20_000)
	if len(stats) != 4 {
		t.Fatalf("cores = %d", len(stats))
	}
	for i, st := range stats {
		if st.Committed != 20_000 {
			t.Errorf("core %d committed %d", i, st.Committed)
		}
		if st.IPC() <= 0 {
			t.Errorf("core %d IPC %v", i, st.IPC())
		}
	}
}

func TestSharedLLCContention(t *testing.T) {
	// A core co-running with three memory-intensive neighbours must be
	// slower than running alone on the same configuration: the shared
	// LLC and DRAM are genuinely contended.
	solo, err := New(config.Baseline(), loads(t, config.OoO, "libquantum"), 42)
	if err != nil {
		t.Fatal(err)
	}
	soloStats, err := solo.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	shared := runChip(t, config.OoO, 20_000)
	if shared[0].IPC() >= soloStats[0].IPC() {
		t.Errorf("co-running IPC %v must trail solo IPC %v",
			shared[0].IPC(), soloStats[0].IPC())
	}
}

func TestChipRARImprovesMTTF(t *testing.T) {
	base := runChip(t, config.OoO, 20_000)
	rar := runChip(t, config.RAR, 20_000)
	mttf := ChipMTTFRel(base, rar)
	if mttf <= 2 {
		t.Errorf("all-RAR chip MTTF = %vx, want a large factor", mttf)
	}
	thr := ChipThroughputRel(base, rar)
	if thr < 0.8 {
		t.Errorf("all-RAR chip throughput = %v, too low", thr)
	}
	if ChipMTTFRel(base, base) != 1 {
		t.Error("baseline vs itself must be 1.0")
	}
}

func TestHeterogeneousChip(t *testing.T) {
	// Mixed schemes: two RAR cores next to two OoO cores. The chip's
	// reliability must land between all-OoO and all-RAR.
	b1, _ := trace.ByName("libquantum")
	b2, _ := trace.ByName("gems")
	b3, _ := trace.ByName("fotonik")
	b4, _ := trace.ByName("milc")
	sys, err := New(config.Baseline(), []Workload{
		{Bench: b1, Scheme: config.RAR},
		{Bench: b2, Scheme: config.OoO},
		{Bench: b3, Scheme: config.RAR},
		{Bench: b4, Scheme: config.OoO},
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := sys.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	base := runChip(t, config.OoO, 20_000)
	rar := runChip(t, config.RAR, 20_000)
	mMixed := ChipMTTFRel(base, mixed)
	mRAR := ChipMTTFRel(base, rar)
	if !(1 < mMixed && mMixed < mRAR) {
		t.Errorf("mixed chip MTTF %v must sit between 1 and all-RAR %v", mMixed, mRAR)
	}
}

func TestEmptySystem(t *testing.T) {
	if _, err := New(config.Baseline(), nil, 1); err == nil {
		t.Error("empty workload list must error")
	}
}

// TestChipRelZeroDenominators pins the zero-collapse fix: a zero
// denominator (empty chip, or a run with no derated failure rate /
// no committed work) must read as NaN — unmistakably "undefined" — not
// as 0, which a report would silently render as the worst possible
// chip. Same family as the HarmMean/GeoMean fix of PR 1.
func TestChipRelZeroDenominators(t *testing.T) {
	live := core.Stats{Cycles: 1000, Committed: 500, TotalABC: 4000, TotalBits: 1 << 20}
	dead := core.Stats{} // no cycles, no bits: AVF and IPC both 0

	cases := []struct {
		name             string
		fn               func(baseline, system []core.Stats) float64
		baseline, system []core.Stats
		wantNaN          bool
		want             float64
	}{
		{"mttf empty chips", ChipMTTFRel, nil, nil, true, 0},
		{"mttf zero-AVF system", ChipMTTFRel, []core.Stats{live}, []core.Stats{dead}, true, 0},
		{"mttf empty system", ChipMTTFRel, []core.Stats{live}, nil, true, 0},
		{"mttf self is one", ChipMTTFRel, []core.Stats{live}, []core.Stats{live}, false, 1},
		{"throughput empty chips", ChipThroughputRel, nil, nil, true, 0},
		{"throughput zero baseline", ChipThroughputRel, []core.Stats{dead}, []core.Stats{live}, true, 0},
		{"throughput self is one", ChipThroughputRel, []core.Stats{live}, []core.Stats{live}, false, 1},
		{"throughput stalled system is zero", ChipThroughputRel, []core.Stats{live}, []core.Stats{dead}, false, 0},
	}
	for _, tc := range cases {
		got := tc.fn(tc.baseline, tc.system)
		if tc.wantNaN {
			if !math.IsNaN(got) {
				t.Errorf("%s = %v, want NaN", tc.name, got)
			}
		} else if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
}
