package multicore

import (
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

func loads(t *testing.T, scheme config.Scheme, names ...string) []Workload {
	t.Helper()
	var out []Workload
	for _, n := range names {
		b, err := trace.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Workload{Bench: b, Scheme: scheme})
	}
	return out
}

func runChip(t *testing.T, scheme config.Scheme, n uint64) []core.Stats {
	t.Helper()
	sys, err := New(config.Baseline(), loads(t, scheme, "libquantum", "gems", "fotonik", "milc"), 42)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestChipRuns(t *testing.T) {
	stats := runChip(t, config.OoO, 20_000)
	if len(stats) != 4 {
		t.Fatalf("cores = %d", len(stats))
	}
	for i, st := range stats {
		if st.Committed != 20_000 {
			t.Errorf("core %d committed %d", i, st.Committed)
		}
		if st.IPC() <= 0 {
			t.Errorf("core %d IPC %v", i, st.IPC())
		}
	}
}

func TestSharedLLCContention(t *testing.T) {
	// A core co-running with three memory-intensive neighbours must be
	// slower than running alone on the same configuration: the shared
	// LLC and DRAM are genuinely contended.
	solo, err := New(config.Baseline(), loads(t, config.OoO, "libquantum"), 42)
	if err != nil {
		t.Fatal(err)
	}
	soloStats, err := solo.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	shared := runChip(t, config.OoO, 20_000)
	if shared[0].IPC() >= soloStats[0].IPC() {
		t.Errorf("co-running IPC %v must trail solo IPC %v",
			shared[0].IPC(), soloStats[0].IPC())
	}
}

func TestChipRARImprovesMTTF(t *testing.T) {
	base := runChip(t, config.OoO, 20_000)
	rar := runChip(t, config.RAR, 20_000)
	mttf := ChipMTTFRel(base, rar)
	if mttf <= 2 {
		t.Errorf("all-RAR chip MTTF = %vx, want a large factor", mttf)
	}
	thr := ChipThroughputRel(base, rar)
	if thr < 0.8 {
		t.Errorf("all-RAR chip throughput = %v, too low", thr)
	}
	if ChipMTTFRel(base, base) != 1 {
		t.Error("baseline vs itself must be 1.0")
	}
}

func TestHeterogeneousChip(t *testing.T) {
	// Mixed schemes: two RAR cores next to two OoO cores. The chip's
	// reliability must land between all-OoO and all-RAR.
	b1, _ := trace.ByName("libquantum")
	b2, _ := trace.ByName("gems")
	b3, _ := trace.ByName("fotonik")
	b4, _ := trace.ByName("milc")
	sys, err := New(config.Baseline(), []Workload{
		{Bench: b1, Scheme: config.RAR},
		{Bench: b2, Scheme: config.OoO},
		{Bench: b3, Scheme: config.RAR},
		{Bench: b4, Scheme: config.OoO},
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := sys.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	base := runChip(t, config.OoO, 20_000)
	rar := runChip(t, config.RAR, 20_000)
	mMixed := ChipMTTFRel(base, mixed)
	mRAR := ChipMTTFRel(base, rar)
	if !(1 < mMixed && mMixed < mRAR) {
		t.Errorf("mixed chip MTTF %v must sit between 1 and all-RAR %v", mMixed, mRAR)
	}
}

func TestEmptySystem(t *testing.T) {
	if _, err := New(config.Baseline(), nil, 1); err == nil {
		t.Error("empty workload list must error")
	}
}
