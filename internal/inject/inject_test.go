package inject

import (
	"math"
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

func campaign(t *testing.T, scheme config.Scheme, benchName string, trials int) Result {
	t.Helper()
	b, err := trace.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(config.Baseline(), scheme, b, Campaign{
		Trials: trials, Instructions: 60_000, Warmup: 20_000, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCampaignResolvesAllSamples(t *testing.T) {
	res := campaign(t, config.OoO, "libquantum", 400)
	if got := res.Corrupt + res.Squashed + res.Masked + res.Pending; got != 400 {
		t.Fatalf("outcome counts sum to %d", got)
	}
	// Pending should be a thin sliver: only state in flight at the very
	// end of the run.
	if res.Pending > 20 {
		t.Errorf("too many unresolved strikes: %d", res.Pending)
	}
	if res.Corrupt == 0 {
		t.Error("a memory-bound run must have ACE strikes")
	}
	if res.Masked == 0 {
		t.Error("some strikes must land in empty or protected slots")
	}
}

// TestInjectionValidatesACE is the footnote-1 experiment: the empirical
// injection AVF must agree with the ACE-analysis ledger within sampling
// error. This exercises a completely independent code path through the
// machinery (per-slot occupancy versus per-window accounting).
func TestInjectionValidatesACE(t *testing.T) {
	res := campaign(t, config.OoO, "libquantum", 1200)
	emp := res.EmpiricalAVF()
	diff := math.Abs(emp - res.LedgerAVF)
	tol := 4*res.StdErr() + 0.03
	if diff > tol {
		t.Errorf("injection AVF %.4f vs ledger AVF %.4f: |diff| %.4f > tol %.4f",
			emp, res.LedgerAVF, diff, tol)
	}
}

// TestInjectionSeesRARProtection: under RAR, strikes during memory shadows
// land on state that is later flushed — the squashed share must rise
// dramatically and the corrupt share must collapse.
func TestInjectionSeesRARProtection(t *testing.T) {
	ooo := campaign(t, config.OoO, "libquantum", 800)
	rar := campaign(t, config.RAR, "libquantum", 800)
	if rar.EmpiricalAVF() >= ooo.EmpiricalAVF()/2 {
		t.Errorf("RAR empirical AVF %.4f must be far below OoO %.4f",
			rar.EmpiricalAVF(), ooo.EmpiricalAVF())
	}
	if rar.Squashed <= ooo.Squashed {
		t.Errorf("RAR must squash more struck state: %d vs %d",
			rar.Squashed, ooo.Squashed)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a := campaign(t, config.OoO, "gems", 300)
	b := campaign(t, config.OoO, "gems", 300)
	if a.Corrupt != b.Corrupt || a.Squashed != b.Squashed || a.Masked != b.Masked {
		t.Errorf("campaigns diverge: %+v vs %+v",
			[3]int{a.Corrupt, a.Squashed, a.Masked},
			[3]int{b.Corrupt, b.Squashed, b.Masked})
	}
}

func TestOutcomeString(t *testing.T) {
	// Compile-time exhaustiveness nudge plus rendering check.
	names := map[string]bool{}
	for o := 0; o < 4; o++ {
		names[coreOutcomeName(o)] = true
	}
	for _, want := range []string{"pending", "masked", "squashed", "corrupt"} {
		if !names[want] {
			t.Errorf("missing outcome name %q", want)
		}
	}
}

func coreOutcomeName(o int) string {
	return core.InjectOutcome(o).String()
}
