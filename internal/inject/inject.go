// Package inject runs statistical fault-injection campaigns against the
// simulated core and compares the empirical vulnerability with the
// ACE-analysis ledger.
//
// The paper quantifies soft-error vulnerability with ACE analysis and
// notes (footnote 1) that "an elaborate fault injection campaign might
// report lower absolute vulnerability numbers, but the overall conclusions
// and insights would be similar". This package provides that campaign:
// uniformly random (cycle, structure, entry) strikes, weighted by each
// structure's bit capacity, classified by the fate of the struck state —
// corrupt (the occupant committed: the bit was ACE), squashed (speculative
// state discarded by recovery, flushing, or a runahead exit), or masked
// (empty slot, protected state, or outside the vulnerability window).
//
// Because injection in this model is observational (a strike tags state,
// it never alters timing), a whole campaign resolves in two deterministic
// simulations: one to learn the cycle count, one carrying every sample.
package inject

import (
	"fmt"
	"math"

	"rarsim/internal/ace"
	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

// Campaign configures an injection run.
type Campaign struct {
	// Trials is the number of fault strikes to sample.
	Trials int
	// Instructions and Warmup mirror sim.Options: strikes land only in
	// the measured (post-warmup) region.
	Instructions uint64
	Warmup       uint64
	// Seed drives both workload generation and strike sampling.
	Seed uint64
}

// Result is the outcome of a campaign.
type Result struct {
	Samples  []core.InjectSample
	Corrupt  int
	Squashed int
	Masked   int
	Pending  int

	// LedgerAVF is the ACE-analysis AVF over the sampled structures
	// (ROB, IQ, LQ, SQ, RF — the FU share is excluded from both sides),
	// from the same measured region.
	LedgerAVF float64
	// Stats is the underlying run's statistics.
	Stats core.Stats
}

// EmpiricalAVF returns the fraction of strikes that corrupted
// architectural state — the injection-measured vulnerability.
func (r Result) EmpiricalAVF() float64 {
	n := len(r.Samples)
	if n == 0 {
		return 0
	}
	return float64(r.Corrupt) / float64(n)
}

// StdErr returns the binomial standard error of EmpiricalAVF.
func (r Result) StdErr() float64 {
	n := float64(len(r.Samples))
	if n == 0 {
		return 0
	}
	p := r.EmpiricalAVF()
	return math.Sqrt(p * (1 - p) / n)
}

// sampledStructures are the injection targets and their per-entry bit
// budgets; FUs hold state too transiently to sample meaningfully.
func sampledStructures(cfg config.Core, bits ace.Bits) (structs []ace.Structure, slots []int, weights []float64) {
	add := func(s ace.Structure, n, entryBits int) {
		structs = append(structs, s)
		slots = append(slots, n)
		weights = append(weights, float64(n*entryBits))
	}
	add(ace.ROB, cfg.ROB, bits.ROBEntry)
	add(ace.IQ, cfg.IQ, bits.IQEntry)
	add(ace.LQ, cfg.LQ, bits.LQEntry)
	add(ace.SQ, cfg.SQ, bits.SQEntry)
	// The register files differ in width; weight by total bits but slot
	// over the whole physical register space.
	add(ace.RF, cfg.IntRegs+cfg.FpRegs,
		(cfg.IntRegs*bits.IntReg+cfg.FpRegs*bits.FpReg)/(cfg.IntRegs+cfg.FpRegs))
	return structs, slots, weights
}

// Run executes a campaign for one (core, scheme, benchmark) cell.
func Run(cfg config.Core, scheme config.Scheme, bench trace.Benchmark, camp Campaign) (Result, error) {
	if camp.Trials <= 0 {
		camp.Trials = 500
	}

	// Pass 1: learn the measured region's cycle span.
	probe := core.New(cfg, scheme, bench, camp.Seed)
	warmStats, err := probe.RunWarm(camp.Warmup, camp.Instructions)
	if err != nil {
		return Result{}, fmt.Errorf("inject: probe run: %w", err)
	}
	// The measured region spans the last warmStats.Cycles of the run.
	start := probe.CycleCount() - warmStats.Cycles
	span := warmStats.Cycles

	// Build the strike list.
	rnd := newRNG(camp.Seed ^ 0xFA17)
	bits := ace.DefaultBits()
	structs, slots, weights := sampledStructures(cfg, bits)
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	samples := make([]core.InjectSample, camp.Trials)
	for i := range samples {
		roll := rnd.float64() * totalW
		k := 0
		for k < len(weights)-1 && roll >= weights[k] {
			roll -= weights[k]
			k++
		}
		samples[i] = core.InjectSample{
			Cycle:     start + 1 + rnd.uint64n(span),
			Structure: structs[k],
			Slot:      int(rnd.uint64n(uint64(slots[k]))),
		}
	}

	// Pass 2: the same deterministic run, carrying the strikes.
	c := core.New(cfg, scheme, bench, camp.Seed)
	c.InjectSamples(samples)
	st, err := c.RunWarm(camp.Warmup, camp.Instructions)
	if err != nil {
		return Result{}, fmt.Errorf("inject: campaign run: %w", err)
	}

	res := Result{Samples: samples, Stats: st}
	for _, s := range samples {
		switch s.Outcome {
		case core.InjectCorrupt:
			res.Corrupt++
		case core.InjectSquashed:
			res.Squashed++
		case core.InjectMasked:
			res.Masked++
		default:
			res.Pending++
		}
	}

	// Ledger AVF over the same structures (exclude FU on both sides).
	var abc uint64
	for _, s := range []ace.Structure{ace.ROB, ace.IQ, ace.LQ, ace.SQ, ace.RF} {
		abc += st.ABC[s]
	}
	res.LedgerAVF = ace.AVF(abc, uint64(totalW), st.Cycles)
	return res, nil
}

// rng is a private splitmix64 for strike sampling.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	return &rng{state: seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }
