package core

import "testing"

func TestSSTInsertContains(t *testing.T) {
	s := newSST(128)
	if s.contains(0x1000) {
		t.Error("empty SST must miss")
	}
	s.insert(0x1000)
	if !s.contains(0x1000) {
		t.Error("inserted PC must hit")
	}
	s.insert(0) // zero PCs are ignored
	if s.inserts != 1 {
		t.Errorf("inserts = %d", s.inserts)
	}
}

func TestSSTSizeRounding(t *testing.T) {
	s := newSST(100) // rounds down to 64
	if len(s.entries) != 64 {
		t.Errorf("size = %d, want 64", len(s.entries))
	}
}

func TestProducers(t *testing.T) {
	p := newProducers(8)
	p.record(0x100, 0x80, 0x90)
	srcs, ok := p.lookup(0x100)
	if !ok || srcs != [2]uint64{0x80, 0x90} {
		t.Errorf("lookup = %v,%v", srcs, ok)
	}
	if _, ok := p.lookup(0x104); ok {
		t.Error("unknown PC must miss")
	}
	// Find a PC that collides under the hashed index and check it evicts
	// (the table is direct-mapped).
	target := sstIndex(0x100, p.mask)
	conflict := uint64(0)
	for pc := uint64(0x104); ; pc += 4 {
		if sstIndex(pc, p.mask) == target {
			conflict = pc
			break
		}
	}
	p.record(conflict, 0x1, 0x2)
	if _, ok := p.lookup(0x100); ok {
		t.Error("conflict must evict")
	}
}

func TestTrainSliceWalk(t *testing.T) {
	s := newSST(128)
	p := newProducers(10)
	// Build a chain: 0x500 <- 0x400 <- 0x300 <- 0x200 <- 0x100.
	p.record(0x500, 0x400, 0)
	p.record(0x400, 0x300, 0)
	p.record(0x300, 0x200, 0)
	p.record(0x200, 0x100, 0)
	p.record(0x100, 0, 0)
	trainSlice(s, p, 0x500, 3, 16)
	for _, pc := range []uint64{0x500, 0x400, 0x300, 0x200} {
		if !s.contains(pc) {
			t.Errorf("slice missing %#x", pc)
		}
	}
	// Depth limit 3: 0x100 is four dependence levels up.
	if s.contains(0x100) {
		t.Error("depth limit not honoured")
	}
}

func TestTrainSliceWidthLimit(t *testing.T) {
	s := newSST(128)
	p := newProducers(10)
	// A load with a wide fan-in tree.
	p.record(0x1000, 0x900, 0x910)
	p.record(0x900, 0x800, 0x810)
	p.record(0x910, 0x820, 0x830)
	trainSlice(s, p, 0x1000, 8, 3)
	n := 0
	for _, pc := range []uint64{0x1000, 0x900, 0x910, 0x800, 0x810, 0x820, 0x830} {
		if s.contains(pc) {
			n++
		}
	}
	if n > 3 {
		t.Errorf("maxSlice exceeded: %d PCs inserted", n)
	}
}

func TestTrainSliceCycle(t *testing.T) {
	s := newSST(128)
	p := newProducers(10)
	// Dependence "cycle" through stale producer info must terminate.
	p.record(0x100, 0x200, 0)
	p.record(0x200, 0x100, 0)
	trainSlice(s, p, 0x100, 10, 32) // must not hang
	if !s.contains(0x100) || !s.contains(0x200) {
		t.Error("cycle members missing")
	}
}

func TestUopPoolReuse(t *testing.T) {
	var p uopPool
	u := p.get()
	u.seq = 42
	p.put(u)
	v := p.get()
	if v != u {
		t.Error("pool must recycle")
	}
	if v.seq != 0 {
		t.Error("recycled uop not zeroed")
	}
}
