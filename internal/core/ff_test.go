package core

import (
	"reflect"
	"strings"
	"testing"

	"rarsim/internal/ace"
	"rarsim/internal/config"
	"rarsim/internal/trace"
)

// runFF builds a core for (scheme, bench) and runs warmup+measured with the
// stall fast-forward on or off, returning the measured Stats and the core.
func runFF(t *testing.T, scheme config.Scheme, benchName string, ff bool,
	warmup, measured uint64) (Stats, *Core) {
	t.Helper()
	b, err := trace.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	c := New(config.Baseline(), scheme, b, 42)
	c.SetStallFastForward(ff)
	st, err := c.RunWarm(warmup, measured)
	if err != nil {
		t.Fatalf("%s/%s ff=%v: %v", scheme.Name, benchName, ff, err)
	}
	return st, c
}

// TestFFEquivalence is the tentpole's correctness contract: for every
// scheme, on both a memory-intensive and a compute-intensive benchmark,
// a run with the stall fast-forward enabled must produce Stats — every
// field, including CommitHash and the ACE/attribution counters — and a
// cycle count byte-identical to the cycle-by-cycle run.
func TestFFEquivalence(t *testing.T) {
	schemes := append(config.Schemes(), config.RunaheadVariants()...)
	for _, bn := range []string{"libquantum", "mcf", "exchange2"} {
		for _, s := range schemes {
			s, bn := s, bn
			t.Run(bn+"/"+s.Name, func(t *testing.T) {
				t.Parallel()
				on, conOn := runFF(t, s, bn, true, 5_000, 30_000)
				off, conOff := runFF(t, s, bn, false, 5_000, 30_000)
				if !reflect.DeepEqual(on, off) {
					t.Errorf("stats diverge with fast-forward:\n on: %+v\noff: %+v", on, off)
				}
				if conOn.CycleCount() != conOff.CycleCount() {
					t.Errorf("cycle count diverges: ff=%d, no-ff=%d",
						conOn.CycleCount(), conOff.CycleCount())
				}
				if conOff.FFSkippedCycles() != 0 {
					t.Errorf("disabled fast-forward still skipped %d cycles",
						conOff.FFSkippedCycles())
				}
			})
		}
	}
}

// TestFFSkipsAreSubstantial: on a memory-intensive benchmark the baseline
// core spends most of its time waiting on DRAM, so the fast-forward must
// actually skip a large share of the cycles — otherwise it is silently
// disabled and the perf win is gone.
func TestFFSkipsAreSubstantial(t *testing.T) {
	_, c := runFF(t, config.OoO, "libquantum", true, 5_000, 30_000)
	total := c.CycleCount()
	skipped := c.FFSkippedCycles()
	if skipped < total/4 {
		t.Errorf("fast-forward skipped only %d of %d cycles on a memory-bound run",
			skipped, total)
	}
}

// TestFFEquivalenceWithAudit: the invariant auditor must still run on its
// exact cycles (the skip clamps to the next audit multiple), and the
// audited run must match the unaudited one.
func TestFFEquivalenceWithAudit(t *testing.T) {
	run := func(ff bool) Stats {
		b, err := trace.ByName("mcf")
		if err != nil {
			t.Fatal(err)
		}
		c := New(config.Baseline(), config.RAR, b, 42)
		c.EnableAudit(1_000)
		c.SetStallFastForward(ff)
		st, err := c.RunWarm(5_000, 30_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	on, off := run(true), run(false)
	if !reflect.DeepEqual(on, off) {
		t.Errorf("audited stats diverge with fast-forward:\n on: %+v\noff: %+v", on, off)
	}
}

// TestFFEquivalenceWithInjection: fault-injection samples strike at exact
// cycles; the skip must clamp to each pending sample so every trial sees
// the same machine state — and therefore resolves to the same outcome —
// with fast-forward on and off.
func TestFFEquivalenceWithInjection(t *testing.T) {
	mkSamples := func() []InjectSample {
		var s []InjectSample
		// A spread of strikes across structures, deliberately landing in
		// the long quiescent windows a memory-bound run produces.
		for cyc := uint64(7_001); cyc < 120_000; cyc += 7_919 {
			s = append(s,
				InjectSample{Cycle: cyc, Structure: ace.ROB, Slot: int(cyc % 192)},
				InjectSample{Cycle: cyc + 13, Structure: ace.IQ, Slot: int(cyc % 92)},
				InjectSample{Cycle: cyc + 29, Structure: ace.LQ, Slot: int(cyc % 64)},
			)
		}
		return s
	}
	run := func(ff bool) ([]InjectSample, Stats) {
		b, err := trace.ByName("libquantum")
		if err != nil {
			t.Fatal(err)
		}
		c := New(config.Baseline(), config.RAR, b, 42)
		samples := mkSamples()
		c.InjectSamples(samples)
		c.SetStallFastForward(ff)
		st, err := c.RunWarm(5_000, 30_000)
		if err != nil {
			t.Fatal(err)
		}
		return samples, st
	}
	onS, on := run(true)
	offS, off := run(false)
	if !reflect.DeepEqual(on, off) {
		t.Errorf("injected stats diverge with fast-forward:\n on: %+v\noff: %+v", on, off)
	}
	if !reflect.DeepEqual(onS, offS) {
		for i := range onS {
			if onS[i] != offS[i] {
				t.Errorf("sample %d diverges: ff=%+v no-ff=%+v", i, onS[i], offS[i])
			}
		}
	}
	resolved := 0
	for _, s := range onS {
		if s.Outcome != InjectPending {
			resolved++
		}
	}
	if resolved == 0 {
		t.Error("no injection sample resolved — the test exercised nothing")
	}
}

// slowDRAMCore returns the baseline core with a DRAM whose fixed controller
// overhead alone exceeds the watchdog window: every LLC miss stalls the
// pipeline for longer than the old wall-cycle watchdog would tolerate.
func slowDRAMCore() config.Core {
	cfg := config.Baseline()
	cfg.Mem.DRAM.Ctrl = watchdogWindow + 100_000
	return cfg
}

// TestWatchdogSurvivesLongStall: a legitimate stall longer than the
// watchdog window — here a pathologically slow DRAM — must not be reported
// as a deadlock. The fast-forward collapses the stall into a handful of
// ticked cycles, and the watchdog counts ticks, not wall cycles. (Before
// this change the run aborted with a spurious deadlock error.)
func TestWatchdogSurvivesLongStall(t *testing.T) {
	b, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	c := New(slowDRAMCore(), config.OoO, b, 42)
	st, err := c.Run(2_000)
	if err != nil {
		t.Fatalf("slow-DRAM run must survive the watchdog: %v", err)
	}
	if st.Committed != 2_000 {
		t.Fatalf("committed %d, want 2000", st.Committed)
	}
	if st.Cycles <= watchdogWindow {
		t.Fatalf("run finished in %d cycles — DRAM not actually slow, test is vacuous", st.Cycles)
	}
}

// TestWatchdogLongStallStillTripsWithoutFF documents the flip side: with
// the fast-forward disabled the same stall is ticked cycle by cycle, so the
// watchdog (correctly, per its contract: ticked cycles without commit)
// still reports it. Anyone running -no-ff with an exotic memory config sees
// the pre-existing behaviour, not silent hours of simulation.
func TestWatchdogLongStallStillTripsWithoutFF(t *testing.T) {
	b, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	c := New(slowDRAMCore(), config.OoO, b, 42)
	c.SetStallFastForward(false)
	if _, err := c.Run(2_000); err == nil {
		t.Fatal("cycle-by-cycle run over a >window stall must trip the watchdog")
	}
}

// TestWatchdogCatchesDeadlock: a genuine deadlock — here a core whose load
// queue has zero entries, so the first load can never dispatch — must still
// trip the watchdog with fast-forward enabled: no event source fires, so
// nothing is skipped and ticked cycles accumulate.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	cfg := config.Baseline()
	cfg.LQ = 0
	b, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	c := New(cfg, config.OoO, b, 42)
	_, err = c.Run(2_000)
	if err == nil {
		t.Fatal("LQ=0 deadlock must trip the watchdog")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want a deadlock report, got: %v", err)
	}
}
