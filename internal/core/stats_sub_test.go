package core

import (
	"reflect"
	"testing"
)

// fillNumeric sets every numeric leaf of v (recursing through structs and
// arrays) to x.
func fillNumeric(v reflect.Value, x uint64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillNumeric(v.Field(i), x)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fillNumeric(v.Index(i), x)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(x)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(x))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(x))
	}
}

// checkNumeric walks v and calls f with ("path.to.field", value) for every
// numeric leaf.
func checkNumeric(t *testing.T, v reflect.Value, path string, f func(path string, got uint64)) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			name := v.Type().Field(i).Name
			p := name
			if path != "" {
				p = path + "." + name
			}
			checkNumeric(t, v.Field(i), p, f)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			checkNumeric(t, v.Index(i), path, f)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		f(path, v.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		f(path, uint64(v.Int()))
	case reflect.Float32, reflect.Float64:
		f(path, uint64(v.Float()))
	}
}

// TestStatsSubCoversAllFields pins the warmup-exclusion contract: Stats.sub
// must subtract every numeric field — including those nested in mem.Stats
// and the ABC array — except the fields explicitly exempted in
// wholeRunStatsFields. A counter added to Stats without a matching line in
// sub shows up here as a 100 that should have been 99, instead of silently
// leaking warmup into every measured result.
func TestStatsSubCoversAllFields(t *testing.T) {
	var s, w Stats
	fillNumeric(reflect.ValueOf(&s).Elem(), 100)
	fillNumeric(reflect.ValueOf(&w).Elem(), 1)
	diff := s.sub(w)

	seen := map[string]bool{}
	checkNumeric(t, reflect.ValueOf(diff), "", func(path string, got uint64) {
		leaf := path
		if i := lastDot(path); i >= 0 {
			leaf = path[i+1:]
		}
		if wholeRunStatsFields[leaf] {
			seen[leaf] = true
			if got != 100 {
				t.Errorf("%s: allowlisted as whole-run but sub changed it: got %d, want 100", path, got)
			}
			return
		}
		if got != 99 {
			t.Errorf("%s: not subtracted by Stats.sub (got %d, want 99) — subtract it or add it to wholeRunStatsFields", path, got)
		}
	})
	for name := range wholeRunStatsFields {
		if !seen[name] {
			t.Errorf("wholeRunStatsFields lists %q but Stats has no such numeric field", name)
		}
	}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
