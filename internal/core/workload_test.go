package core

import (
	"testing"

	"rarsim/internal/config"
)

// Workload-characteristic tests: the paper's analysis leans on specific
// behaviours of specific benchmarks (§II-C). These tests pin those
// behaviours on the baseline core so a workload-suite change cannot
// silently invalidate the experiments built on them.

func ratioABC(st Stats, part uint64) float64 {
	if st.TotalABC == 0 {
		return 0
	}
	return float64(part) / float64(st.TotalABC)
}

// TestMcfHeadBlockedNotFull: mcf's misses block the ROB head while branch
// mispredictions in the shadow keep the ROB from filling with correct-path
// state — the case only the early-start trigger covers, and the reason mcf
// is RAR's biggest MTTF winner.
func TestMcfHeadBlockedNotFull(t *testing.T) {
	st := run(t, config.OoO, "mcf")
	hb := ratioABC(st, st.HeadBlockedABC)
	fs := ratioABC(st, st.FullStallABC)
	if hb < 0.6 {
		t.Errorf("mcf head-blocked ABC share %.2f, want >0.6", hb)
	}
	if fs > 0.3*hb {
		t.Errorf("mcf full-stall share %.2f should be far below head-blocked %.2f", fs, hb)
	}
}

// TestFotonikFullStalls: fotonik is the classic full-ROB staller; most of
// its head-blocked exposure happens with the ROB completely full.
func TestFotonikFullStalls(t *testing.T) {
	st := run(t, config.OoO, "fotonik")
	hb := ratioABC(st, st.HeadBlockedABC)
	fs := ratioABC(st, st.FullStallABC)
	if fs < 0.5*hb {
		t.Errorf("fotonik full-stall share %.2f should approach head-blocked %.2f", fs, hb)
	}
}

// TestLbmIssueQueuePressure: lbm's FP dependence chains keep the ROB from
// filling as readily as the streaming benchmarks.
func TestLbmNotAFullStaller(t *testing.T) {
	lbm := run(t, config.OoO, "lbm")
	fot := run(t, config.OoO, "fotonik")
	if ratioABC(lbm, lbm.FullStallABC) >= ratioABC(fot, fot.FullStallABC) {
		t.Errorf("lbm full-stall share %.2f must trail fotonik's %.2f",
			ratioABC(lbm, lbm.FullStallABC), ratioABC(fot, fot.FullStallABC))
	}
}

// TestROBDominatesABC: the paper's Figure 3 finding — the reorder buffer
// is responsible for the bulk of the vulnerable state, followed by
// IQ/LQ/RF.
func TestROBDominatesABC(t *testing.T) {
	for _, bn := range []string{"libquantum", "lbm", "gems"} {
		st := run(t, config.OoO, bn)
		rob := st.ABC[0]
		for i, v := range st.ABC {
			if i != 0 && v >= rob {
				t.Errorf("%s: structure %d ABC %d >= ROB %d", bn, i, v, rob)
			}
		}
		if float64(rob) < 0.4*float64(st.TotalABC) {
			t.Errorf("%s: ROB share %.2f, want the bulk", bn,
				float64(rob)/float64(st.TotalABC))
		}
	}
}

// TestMemoryVsComputeABC: memory-intensive workloads expose significantly
// more vulnerable state than compute-intensive ones (Figure 3).
func TestMemoryVsComputeABC(t *testing.T) {
	mem := run(t, config.OoO, "gems")
	cmp := run(t, config.OoO, "x264")
	if float64(mem.TotalABC) < 1.5*float64(cmp.TotalABC) {
		t.Errorf("memory-intensive ABC %d should dominate compute-intensive %d",
			mem.TotalABC, cmp.TotalABC)
	}
}

// TestChaseSerialisation: pointer-chase benchmarks cannot overlap their
// own misses; streaming benchmarks can.
func TestChaseSerialisation(t *testing.T) {
	chase := run(t, config.OoO, "astar")
	stream := run(t, config.OoO, "gems")
	if chase.Mem.MLP() >= stream.Mem.MLP() {
		t.Errorf("chase MLP %.2f must trail streaming MLP %.2f",
			chase.Mem.MLP(), stream.Mem.MLP())
	}
	if chase.Mem.MLP() > 2.5 {
		t.Errorf("chase MLP %.2f implausibly high for dependent misses", chase.Mem.MLP())
	}
}

// TestRunaheadCannotChase: runahead prefetching barely helps dependent
// pointer chases whose hops miss (mcf: the next address needs the missing
// data), while it clearly helps streams — the structural reason RAR's IPC
// profile differs across the suite. Chases through cache-resident hops
// (astar) are exempt: runahead follows them through the hits.
func TestRunaheadCannotChase(t *testing.T) {
	chaseBase := run(t, config.OoO, "mcf")
	chasePre := run(t, config.PRE, "mcf")
	streamBase := run(t, config.OoO, "gems")
	streamPre := run(t, config.PRE, "gems")
	chaseGain := chasePre.IPC() / chaseBase.IPC()
	streamGain := streamPre.IPC() / streamBase.IPC()
	if streamGain < chaseGain {
		t.Errorf("stream PRE gain %.3f must exceed chase gain %.3f", streamGain, chaseGain)
	}
	if streamGain < 1.05 {
		t.Errorf("stream PRE gain %.3f too small", streamGain)
	}
}
