package core

import "rarsim/internal/isa"

// regFile is the register renaming state: the register allocation table
// (RAT), the physical-register free lists, and the per-physical-register
// ready and INV (runahead poison) bits.
//
// Physical registers are numbered 0..nInt-1 for the integer file and
// nInt..nInt+nFp-1 for the FP file, so a single id space serves both.
type regFile struct {
	nInt, nFp int

	rat [isa.NumRegs]int16 //rarlint:quiescent rename state: read only by stage-driven rename and the checkpointed restore
	//rarlint:survives per-register bit is dead once the register is freed; alloc clears it on reallocation
	ready []bool
	//rarlint:survives poison bit is dead once the register is freed; alloc clears it on reallocation
	inv []bool //rarlint:quiescent poison bits: read only by stage-driven rename and cleared on reallocation

	freeInt []int16
	freeFp  []int16
}

func newRegFile(nInt, nFp int) *regFile {
	r := &regFile{
		nInt:  nInt,
		nFp:   nFp,
		ready: make([]bool, nInt+nFp),
		inv:   make([]bool, nInt+nFp),
	}
	// Architectural registers start mapped to the low physical registers
	// of each file, ready and clean.
	for a := 0; a < isa.NumIntRegs; a++ {
		r.rat[a] = int16(a)
		r.ready[a] = true
	}
	for a := 0; a < isa.NumFpRegs; a++ {
		p := int16(nInt + a)
		r.rat[isa.FirstFpReg+isa.Reg(a)] = p
		r.ready[p] = true
	}
	for p := isa.NumIntRegs; p < nInt; p++ {
		r.freeInt = append(r.freeInt, int16(p))
	}
	for p := nInt + isa.NumFpRegs; p < nInt+nFp; p++ {
		r.freeFp = append(r.freeFp, int16(p))
	}
	return r
}

// lookup returns the physical register currently mapped to arch register a,
// or -1 for an absent operand.
func (r *regFile) lookup(a isa.Reg) int16 {
	if !a.Valid() {
		return -1
	}
	return r.rat[a]
}

// canAlloc reports whether a destination register of the given kind is
// available.
func (r *regFile) canAlloc(fp bool) bool {
	if fp {
		return len(r.freeFp) > 0
	}
	return len(r.freeInt) > 0
}

// alloc takes a free physical register of the requested kind, marks it
// not-ready and clean, and returns it. Callers must check canAlloc.
func (r *regFile) alloc(fp bool) int16 {
	var p int16
	if fp {
		p = r.freeFp[len(r.freeFp)-1]
		r.freeFp = r.freeFp[:len(r.freeFp)-1]
	} else {
		p = r.freeInt[len(r.freeInt)-1]
		r.freeInt = r.freeInt[:len(r.freeInt)-1]
	}
	r.ready[p] = false
	r.inv[p] = false
	return p
}

// free returns physical register p to its free list.
func (r *regFile) free(p int16) {
	if p < 0 {
		return
	}
	if int(p) < r.nInt {
		r.freeInt = append(r.freeInt, p)
	} else {
		r.freeFp = append(r.freeFp, p)
	}
}

// isFp reports whether physical register p belongs to the FP file.
func (r *regFile) isFp(p int16) bool { return int(p) >= r.nInt }

// rename maps the destination arch register a to a fresh physical
// register, returning (newPhys, prevPhys).
func (r *regFile) rename(a isa.Reg) (int16, int16) {
	prev := r.rat[a]
	p := r.alloc(a.IsFp())
	r.rat[a] = p
	return p, prev
}

// snapshotRAT copies the current RAT (the runahead checkpoint).
func (r *regFile) snapshotRAT() [isa.NumRegs]int16 { return r.rat }

// restoreRAT replaces the RAT with a checkpoint.
func (r *regFile) restoreRAT(s [isa.NumRegs]int16) { r.rat = s }

// freeRegs returns the number of free registers of each kind, for stats.
func (r *regFile) freeRegs() (ints, fps int) { return len(r.freeInt), len(r.freeFp) }
