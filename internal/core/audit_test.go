package core

import (
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/trace"
)

// TestAuditAllSchemes runs every mechanism with the invariant checker
// armed: register conservation, ROB ordering, queue capacities and mode
// coherence are validated every 64 cycles across wrong paths, flushes,
// runahead entries/exits and aborts.
func TestAuditAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("audit sweep is slow")
	}
	for _, bn := range []string{"libquantum", "mcf", "gcc", "lbm"} {
		for _, s := range append(config.Schemes(), config.TR, config.TREarly, config.PREEarly) {
			bn, s := bn, s
			t.Run(bn+"/"+s.Name, func(t *testing.T) {
				t.Parallel()
				b, err := trace.ByName(bn)
				if err != nil {
					t.Fatal(err)
				}
				c := New(config.Baseline(), s, b, 11)
				c.EnableAudit(64)
				if _, err := c.Run(30_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
