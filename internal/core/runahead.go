package core

// Runahead machinery: mode triggers (early-start countdown timer and
// full-ROB stall), PRE-style lean dispatch via the SST, the PRDQ register
// recycling, runahead branch handling, the two exit styles (PRE resume vs
// RAR flush), and the Weaver-style Flushing scheme.

// minTRInterval is traditional runahead's short-interval filter: TR skips
// runahead when the blocking load is about to return. The paper expresses
// this as "issued to the memory hierarchy less than 250 cycles before the
// stall"; with this pipeline's issue timing that test is almost never true
// even for fresh misses, so we implement the rule's intent directly — the
// remaining latency must be worth the entry/exit overhead.
const minTRInterval = 40

// runaheadLoadCutoff separates runahead loads that return data usefully
// fast (L1/L2 hits — their values feed further slice execution, e.g. the
// next hop of a pointer chase) from long-latency ones, which pseudo-retire
// as fire-and-forget prefetches with an INV destination.
const runaheadLoadCutoff = 20

// longLatWait classifies a load whose data is at least this many cycles
// away as long-latency for trigger purposes, even when it merged with an
// in-flight fill rather than missing the LLC itself.
const longLatWait = 60

// modeStage evaluates mode transitions once per cycle: runahead exit when
// the blocking load has returned, runahead entry per the scheme's trigger,
// or a FLUSH-scheme pipeline flush.
func (c *Core) modeStage() {
	if c.mode == modeRunahead {
		c.drainPRDQ()
		if c.blocking.doneAt <= c.cycle {
			c.exitRunahead()
			c.progress++
		}
		return
	}

	head := c.robHeadUop()
	if head == nil || !head.isLoad() || head.state != uopIssued || !head.memIssued {
		return
	}
	blockedFor := c.cycle - c.headSince
	timerFired := blockedFor >= c.cfg.RunaheadTimer

	if c.scheme.FlushAtEntry {
		// Weaver-style Flushing: flush when a long-latency memory access
		// blocks commit at the head of the ROB; the pipeline refills when
		// the access returns (§V). The trigger is the LLC's miss signal,
		// so — unlike RAR's countdown timer — Flushing does not cover
		// long waits on fills already in flight (e.g. while the window
		// rebuilds after a flush): that state stays exposed, which is
		// one reason RAR surpasses Flushing in reliability (§V-B).
		if timerFired && head.llcMiss && head.seq != c.lastFlushSeq {
			c.doFlush(head)
		}
		return
	}
	if !c.scheme.Runahead {
		return
	}

	if c.scheme.Early {
		// Pure countdown-timer trigger (§III-D): any load that has
		// blocked the head for RunaheadTimer cycles enters runahead —
		// LLC misses, but also long waits on lines whose fills are still
		// in flight (e.g. right after a flush-exit refetch). Covering
		// those waits is what keeps the back-end non-vulnerable for the
		// whole memory shadow.
		if timerFired {
			c.enterRunahead(head)
		}
		return
	}
	// Late trigger: a full-ROB stall with a long-latency load at the head.
	if c.robCount == c.cfg.ROB && head.longLat {
		if c.scheme.IssueWindow && head.doneAt <= c.cycle+minTRInterval {
			return
		}
		c.enterRunahead(head)
	}
}

// modeNextEvent returns the earliest future cycle at which modeStage can
// change anything, given the pipeline state frozen as it is now, or
// noEvent when no mode transition is pending. It is the runahead/flush
// half of the stall fast-forward's nextEventCycle (ff.go) and mirrors
// modeStage's trigger conditions exactly:
//
//   - In runahead mode, drainPRDQ makes progress the next cycle whenever
//     the PRDQ head has already pseudo-retired, and the mode exits when
//     the blocking load's data returns.
//   - In normal mode, the countdown-timer triggers (RAR/PRE early start,
//     FLUSH's long-latency detection) expire RunaheadTimer cycles after the
//     countdown base: headSince, or the next cycle when the head changed
//     during this cycle and tickBlocked has not yet restarted the timer.
//   - The late (full-ROB) trigger reads only current state. Its inputs can
//     have become true after this cycle's modeStage ran (issue and dispatch
//     execute later in the cycle), so when they hold now the trigger fires
//     next cycle; when they don't, they only change at other pipeline
//     events.
//
//rarlint:pure
func (c *Core) modeNextEvent(head *uop) uint64 {
	if c.mode == modeRunahead {
		if len(c.prdq) > 0 {
			if st := c.prdq[0].state; st == uopCompleted || st == uopDead {
				return c.cycle + 1
			}
		}
		return c.blocking.doneAt
	}
	if head == nil || !head.isLoad() || head.state != uopIssued || !head.memIssued {
		return noEvent
	}
	base := c.headSince
	if head.seq != c.headSeq {
		base = c.cycle + 1 // countdown restarts at the next tickBlocked
	}
	timerAt := base + c.cfg.RunaheadTimer
	if c.scheme.FlushAtEntry {
		if head.llcMiss && head.seq != c.lastFlushSeq {
			return timerAt
		}
		return noEvent
	}
	if !c.scheme.Runahead {
		return noEvent
	}
	if c.scheme.Early {
		return timerAt
	}
	if c.robCount == c.cfg.ROB && head.longLat {
		if c.scheme.IssueWindow && head.doneAt <= c.cycle+minTRInterval {
			return noEvent // short-interval filter: stays filtered as cycle grows
		}
		return c.cycle + 1
	}
	return noEvent
}

// enterRunahead checkpoints the machine and switches to runahead mode.
// The ROB is frozen: nothing commits and nothing new is allocated in it.
func (c *Core) enterRunahead(blocking *uop) {
	c.s.RunaheadEntries++
	c.progress++
	c.mode = modeRunahead
	c.blocking = blocking

	// Dependents of the blocking load are INV: they cannot produce values
	// during runahead and are dropped at dispatch.
	if blocking.dest >= 0 {
		c.regs.inv[blocking.dest] = true
	}

	c.chk.rat = c.regs.snapshotRAT()
	c.chk.bpSnap = c.bp.Snapshot()

	// Entry is cheap in PRE (and therefore in RAR): the front-end pipe is
	// NOT flushed — in-flight instructions simply continue and are
	// dispatched in runahead mode. The exit rewind point is the oldest
	// on-path instruction still in the pipe (it will be consumed
	// speculatively and must be re-fetched after exit), or the current
	// cursor if the pipe holds none.
	resume := c.stream.cursor()
	onPath := false
	for i := 0; i < c.frontQ.len(); i++ {
		u := c.frontQ.at(i)
		if !u.inst.WrongPath {
			onPath = true
			if u.streamIdx < resume {
				resume = u.streamIdx
			}
		}
	}
	c.chk.resumeCursor = resume

	// Wrong-path handling: if an unresolved mispredicted branch is still
	// in the front-end pipe, it will be consumed by runahead and nothing
	// in the back-end will ever resolve it — but the exit rewind point is
	// at or before that branch, so the exit refetch repairs the path.
	// Only when the entire wrong path has already dispatched into the ROB
	// must the wrong-path state be restored at exit (the in-ROB branch
	// resolves and recovers normally).
	c.chk.wrongPath = c.wrongPath && !onPath
	c.chk.wpPC = c.wpPC
	c.chk.wpSynthetic = c.wpSynthetic

	c.raDiverged = c.wrongPath
	c.wrongPath = false
}

// dispatchRunahead handles dispatch while in runahead mode: every
// instruction is renamed (PRE renames the full stream), but only useful
// instructions — loads and, in lean mode, SST slice hits; everything
// except stores in non-lean mode — are sent to the issue queue. INV
// instructions are dropped immediately.
func (c *Core) dispatchRunahead(u *uop) bool {
	if len(c.prdq) >= c.cfg.PRDQ {
		return false
	}
	in := &u.inst
	u.runahead = true

	if in.HasDest() && !c.regs.canAlloc(in.Dest.IsFp()) {
		return false
	}
	u.src[0] = c.regs.lookup(in.Src1)
	u.src[1] = c.regs.lookup(in.Src2)
	if in.HasDest() {
		u.dest, u.prevDest = c.regs.rename(in.Dest)
	}
	u.dispatchedAt = c.cycle
	c.s.TotalDispatched++
	c.prdq = append(c.prdq, u)

	execute := false
	switch {
	case in.IsNop() || in.IsStore():
		// Stores do not execute in runahead mode (no memory side effects).
	case in.IsLoad():
		execute = true
	case in.IsBranch():
		execute = !c.scheme.Lean // TR resolves branches to stay on path
	default:
		if c.scheme.Lean {
			execute = c.sstT.contains(in.PC)
		} else {
			execute = true
		}
	}

	// INV poisoning: a source that depends on the blocking load (or on a
	// dropped runahead instruction) makes this instruction INV.
	inv := false
	for _, p := range u.src {
		if p >= 0 && c.regs.inv[p] {
			inv = true
			break
		}
	}

	if !execute || inv {
		c.dropRunahead(u, inv)
		return true
	}
	if c.iqLive >= c.cfg.IQ {
		// Undo the PRDQ/rename allocation and stall dispatch.
		c.prdq = c.prdq[:len(c.prdq)-1]
		if u.dest >= 0 {
			c.regs.rat[in.Dest] = u.prevDest
			c.regs.free(u.dest)
			u.dest, u.prevDest = -1, -1
		}
		return false
	}
	c.enqueueIQ(u)
	return true
}

// dropRunahead retires a runahead uop without executing it. Its
// destination (if any) is marked ready-but-INV so consumers are dropped
// too rather than waiting forever.
func (c *Core) dropRunahead(u *uop, inv bool) {
	u.state = uopCompleted
	u.inv = inv
	u.doneAt = c.cycle
	if u.dest >= 0 {
		c.markReady(u.dest)
		c.regs.inv[u.dest] = true
	}
	c.s.RunaheadDropped++
}

// drainPRDQ retires completed runahead uops from the head of the precise
// register deallocation queue, recycling their destination registers in
// program order — PRE's mechanism for running long runahead intervals with
// a bounded register file. Registers release as soon as their producer
// pseudo-retires: at a full-window stall only a handful of registers are
// free, so aggressive recycling is what lets runahead run hundreds of
// instructions deep (the PRE paper's key enabler). A recycled register may
// still be named by the runahead RAT; the subsequent reallocation simply
// re-poisons it, which costs at most a mistimed prefetch.
func (c *Core) drainPRDQ() {
	n := 0
	for ; n < len(c.prdq); n++ {
		u := c.prdq[n]
		if u.state != uopCompleted && u.state != uopDead {
			break
		}
		if u.dest >= 0 {
			if u.inst.HasDest() && c.regs.rat[u.inst.Dest] == u.dest {
				// Still architecturally live in runahead: keep the INV
				// poison visible to future consumers by leaving the
				// ready/inv bits in place but recycle the storage.
				c.regs.inv[u.dest] = c.regs.inv[u.dest] || u.inv
			}
			c.regs.free(u.dest)
			u.dest = -1
		}
		c.release(u)
	}
	if n > 0 {
		c.progress++
		// Compact instead of re-slicing so the queue's capacity is
		// reused forever (see dispatchStage); the PRDQ is bounded by
		// cfg.PRDQ entries.
		rest := copy(c.prdq, c.prdq[n:])
		for i := rest; i < rest+n; i++ {
			c.prdq[i] = nil
		}
		c.prdq = c.prdq[:rest]
	}
}

// redirectRunahead handles a mispredicted branch resolved during runahead
// (non-lean mode): squash younger runahead work and steer runahead fetch
// back onto the stream.
func (c *Core) redirectRunahead(u *uop) {
	c.squashRunaheadYounger(u.seq)
	c.raDiverged = false
	c.stream.rewind(u.streamIdx + 1)
	c.bp.Restore(c.bpSnapArena[u.bpSnap], true, u.inst.PC, u.inst.Taken)
	if u.inst.Taken {
		c.btb.Insert(u.inst.PC, u.inst.Target)
	}
	if c.fetchStallUntil < c.cycle+1 {
		c.fetchStallUntil = c.cycle + 1
	}
}

// squashRunaheadYounger rolls back runahead uops younger than seqB.
func (c *Core) squashRunaheadYounger(seqB uint64) {
	squashed := c.squashScratch[:0]
	for len(c.prdq) > 0 {
		u := c.prdq[len(c.prdq)-1]
		if u.seq <= seqB {
			break
		}
		if u.dest >= 0 {
			c.regs.rat[u.inst.Dest] = u.prevDest
			c.regs.free(u.dest)
			u.dest = -1
		}
		u.state = uopDead
		c.prdq = c.prdq[:len(c.prdq)-1]
		squashed = append(squashed, u)
	}
	c.filterSecondary()
	c.clearFrontQ()
	for _, u := range squashed {
		c.release(u)
	}
	c.squashScratch = squashed[:0]
}

// discardRunahead throws away all remaining runahead state: restores the
// RAT checkpoint, releases every runahead register, and removes runahead
// uops from the pipeline.
func (c *Core) discardRunahead() {
	c.regs.restoreRAT(c.chk.rat)
	for _, u := range c.prdq {
		u.state = uopDead
		if u.dest >= 0 {
			c.regs.free(u.dest)
			u.dest = -1
		}
	}
	c.filterSecondary()
	c.clearFrontQ()
	for _, u := range c.prdq {
		c.release(u)
	}
	c.prdq = c.prdq[:0]
	c.raDiverged = false
}

// abortRunahead cancels runahead mode without the scheme's exit actions —
// used when a pre-runahead branch misprediction resolves mid-runahead and
// normal-mode recovery must proceed.
func (c *Core) abortRunahead() {
	c.discardRunahead()
	c.mode = modeNormal
	c.blocking = nil
	c.wrongPath = c.chk.wrongPath
	c.wpPC = c.chk.wpPC
	c.wpSynthetic = c.chk.wpSynthetic
	// The subsequent recovery rewinds stream and history itself.
}

// exitRunahead returns to normal mode when the blocking load's data has
// arrived. PRE resumes with the frozen ROB intact; flush-at-exit schemes
// (TR, RAR) squash the entire back-end — rendering all state accumulated
// during the runahead interval un-ACE — and refetch from the blocking load.
func (c *Core) exitRunahead() {
	blocking := c.blocking
	c.blocking = nil
	c.mode = modeNormal

	c.discardRunahead()

	if c.scheme.FlushAtExit {
		// Flush the whole back-end, including the blocking load: its
		// first incarnation never commits (un-ACE) and the refetch hits
		// in the now-filled cache.
		c.squashYounger(blocking.seq - 1)
		c.stream.rewind(blocking.streamIdx)
		c.bp.Restore(c.chk.bpSnap, false, 0, false)
		c.clearWrongPath()
		if c.fetchStallUntil < c.cycle+2 {
			c.fetchStallUntil = c.cycle + 2 // flush penalty
		}
		return
	}

	// PRE-style resume: the frozen ROB remains valid; fetch restarts
	// where it stopped at entry.
	c.stream.rewind(c.chk.resumeCursor)
	c.bp.Restore(c.chk.bpSnap, false, 0, false)
	c.wrongPath = c.chk.wrongPath
	c.wpPC = c.chk.wpPC
	c.wpSynthetic = c.chk.wpSynthetic
	if c.fetchStallUntil < c.cycle+1 {
		c.fetchStallUntil = c.cycle + 1
	}
}

// doFlush implements the FLUSH scheme: as soon as a load's LLC miss is
// detected, squash everything younger than the load and stall fetch until
// the data returns (Weaver et al.). Flushing this early is what destroys
// MLP: instructions past the load never get to issue their own misses.
func (c *Core) doFlush(load *uop) {
	c.s.Flushes++
	c.progress++
	c.lastFlushSeq = load.seq
	c.squashYounger(load.seq)
	c.stream.rewind(load.streamIdx + 1)
	c.clearWrongPath()
	// Resume fetch when the blocking access returns (overwrite, not max:
	// a later flush from an older load supersedes a younger one's
	// deadline).
	c.fetchStallUntil = load.doneAt + 1
}
