package core

import (
	"fmt"

	"rarsim/internal/mem"
)

// Sampled simulation, SimPoint-style: long stretches of the instruction
// stream are fast-forwarded functionally (caches, branch predictor and the
// SST's dependence table stay warm, but no cycle-accurate timing), and
// short windows are simulated in detail. This is how the paper's
// methodology scales 500M-instruction SimPoints; here it lets a user
// sample a long trace at a fraction of the detailed-simulation cost.

// FastForward advances the instruction stream by n instructions
// functionally: memory accesses walk the cache hierarchy and the branch
// predictor trains on every branch, but no pipeline timing is modelled
// (the pseudo-clock advances one cycle per instruction). The pipeline
// must be empty — call it before Run, or between samples via RunSampled.
func (c *Core) FastForward(n uint64) error {
	if c.robCount != 0 || c.frontQ.len() != 0 || c.mode != modeNormal {
		return fmt.Errorf("core: FastForward requires an empty pipeline")
	}
	var released uint64
	for i := uint64(0); i < n; i++ {
		in, idx := c.stream.next()
		c.cycle++
		c.ledger.SetCycle(c.cycle)
		switch {
		case in.IsMem():
			kind := mem.KindLoad
			if in.IsStore() {
				kind = mem.KindStore
			}
			res := c.hier.Access(in.Addr, c.cycle, kind)
			if res.MSHRStall {
				// Functional mode cannot retry; let the pseudo-clock
				// catch up with the outstanding fills and move on.
				c.cycle += 50
			}
		case in.IsBranch():
			_, info := c.bp.Predict(in.PC)
			c.bp.Update(in.PC, in.Taken, info)
			if in.Taken {
				c.btb.Insert(in.PC, in.Target)
			}
		}
		// Track producers so the SST can extract slices immediately
		// after the fast-forward.
		if !in.IsNop() {
			var s1, s2 uint64
			if in.Src1.Valid() {
				s1 = c.lastWriter[in.Src1]
			}
			if in.Src2.Valid() {
				s2 = c.lastWriter[in.Src2]
			}
			c.prod.record(in.PC, s1, s2)
			if in.HasDest() {
				c.lastWriter[in.Dest] = in.PC
			}
		}
		released = idx + 1
	}
	c.stream.release(released)
	c.ffInstructions += n
	return nil
}

// drain runs the pipeline with fetch disabled until it is empty, so a
// fast-forward can take over the instruction stream.
func (c *Core) drain() error {
	c.draining = true
	defer func() { c.draining = false }()
	// In-flight instructions past the measured window commit freely; the
	// next window's warmup snapshot excludes them from measurement.
	c.commitBarrier = 0
	deadline := c.cycle + watchdogWindow
	for c.robCount != 0 || c.frontQ.len() != 0 || c.mode == modeRunahead || len(c.storeBuf) != 0 {
		if c.cycle > deadline {
			return fmt.Errorf("core: drain did not converge (rob=%d frontQ=%d mode=%d)",
				c.robCount, c.frontQ.len(), c.mode)
		}
		c.Step()
	}
	// Anything still buffered but unfetched stays for the next phase.
	return nil
}

// RunSampled simulates `samples` detailed windows separated by functional
// fast-forwards: each iteration skips ffInstructions functionally, then
// simulates warmup+measured instructions in detail. The returned Stats
// aggregate only the measured windows. Commit limits are managed per
// window, so every sample measures exactly `measured` instructions.
func (c *Core) RunSampled(samples int, ffInstructions, warmup, measured uint64) (Stats, error) {
	if samples <= 0 {
		return Stats{}, fmt.Errorf("core: need at least one sample")
	}
	var agg Stats
	for k := 0; k < samples; k++ {
		if err := c.FastForward(ffInstructions); err != nil {
			return agg, err
		}
		window, err := c.RunWarm(warmup, measured)
		if err != nil {
			return agg, err
		}
		agg = agg.add(window)
		if err := c.drain(); err != nil {
			return agg, err
		}
	}
	c.finalizeStats()
	agg.Benchmark, agg.Scheme, agg.CoreName = c.s.Benchmark, c.s.Scheme, c.s.CoreName
	agg.TotalBits = c.s.TotalBits
	agg.CommitHash = c.s.CommitHash
	return agg, nil
}

// add accumulates w's counters into s.
func (s Stats) add(w Stats) Stats {
	s.Cycles += w.Cycles
	s.Committed += w.Committed
	s.CommittedLoads += w.CommittedLoads
	s.CommittedStores += w.CommittedStores
	s.CommittedBranches += w.CommittedBranches
	s.Mispredicts += w.Mispredicts
	s.WrongPathFetched += w.WrongPathFetched
	s.RunaheadEntries += w.RunaheadEntries
	s.RunaheadCycles += w.RunaheadCycles
	s.RunaheadExecuted += w.RunaheadExecuted
	s.RunaheadDropped += w.RunaheadDropped
	s.Flushes += w.Flushes
	s.TotalFetched += w.TotalFetched
	s.TotalDispatched += w.TotalDispatched
	s.TotalIssued += w.TotalIssued
	s.HeadBlockedCycles += w.HeadBlockedCycles
	s.FullStallCycles += w.FullStallCycles
	for i := range s.ABC {
		s.ABC[i] += w.ABC[i]
	}
	s.TotalABC += w.TotalABC
	s.HeadBlockedABC += w.HeadBlockedABC
	s.FullStallABC += w.FullStallABC
	s.Mem.DemandLoads += w.Mem.DemandLoads
	s.Mem.DemandLLCMisses += w.Mem.DemandLLCMisses
	s.Mem.LLCMissCycles += w.Mem.LLCMissCycles
	s.Mem.LLCBusyCycles += w.Mem.LLCBusyCycles
	s.Mem.DRAMReads += w.Mem.DRAMReads
	s.Mem.DRAMWrites += w.Mem.DRAMWrites
	s.Mem.PrefetchIssued += w.Mem.PrefetchIssued
	s.Mem.MSHRFullStalls += w.Mem.MSHRFullStalls
	return s
}
