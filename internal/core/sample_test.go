package core

import (
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/trace"
)

func TestFastForwardRequiresEmptyPipeline(t *testing.T) {
	b, _ := trace.ByName("libquantum")
	c := New(config.Baseline(), config.OoO, b, 1)
	if _, err := c.Run(5_000); err != nil {
		t.Fatal(err)
	}
	// The pipeline stopped mid-flight; FastForward must refuse.
	if err := c.FastForward(100); err == nil {
		t.Error("FastForward must reject a non-empty pipeline")
	}
}

func TestFastForwardWarmsCaches(t *testing.T) {
	b, _ := trace.ByName("x264") // cache-resident working set
	cold := New(config.Baseline(), config.OoO, b, 5)
	coldStats, err := cold.Run(30_000)
	if err != nil {
		t.Fatal(err)
	}

	warm := New(config.Baseline(), config.OoO, b, 5)
	if err := warm.FastForward(100_000); err != nil {
		t.Fatal(err)
	}
	warmStats, err := warm.RunWarm(0, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.IPC() <= coldStats.IPC() {
		t.Errorf("fast-forward warming should raise IPC: cold %.3f warm %.3f",
			coldStats.IPC(), warmStats.IPC())
	}
}

func TestRunSampled(t *testing.T) {
	b, _ := trace.ByName("gems")
	c := New(config.Baseline(), config.RAR, b, 9)
	st, err := c.RunSampled(4, 50_000, 5_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 4*10_000 {
		t.Errorf("sampled committed = %d, want 40000", st.Committed)
	}
	if st.IPC() <= 0 || st.IPC() > 4 {
		t.Errorf("sampled IPC = %v", st.IPC())
	}
	if st.TotalABC == 0 {
		t.Error("sampled ABC empty")
	}

	// Determinism across identical sampled runs.
	c2 := New(config.Baseline(), config.RAR, b, 9)
	st2, err := c2.RunSampled(4, 50_000, 5_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != st2.Cycles || st.TotalABC != st2.TotalABC {
		t.Error("sampled runs diverge")
	}
}

func TestRunSampledMatchesContiguousShape(t *testing.T) {
	// A sampled measurement of a homogeneous (single-kernel, phase-free)
	// workload must land near the contiguous measurement — benchmarks
	// with phase structure alias against the sampling period and are not
	// a fair comparison.
	b, _ := trace.ByName("x264")
	cont := New(config.Baseline(), config.OoO, b, 3)
	contStats, err := cont.RunWarm(50_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	samp := New(config.Baseline(), config.OoO, b, 3)
	sampStats, err := samp.RunSampled(5, 20_000, 10_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling is optimistically biased (each window starts from a
	// drained pipeline and freshly-touched caches — the classic
	// short-warmup artefact); the estimate must still land in the same
	// regime as the contiguous measurement.
	ratio := sampStats.IPC() / contStats.IPC()
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("sampled IPC %v vs contiguous %v (ratio %v)",
			sampStats.IPC(), contStats.IPC(), ratio)
	}
}
