package core

import (
	"fmt"

	"rarsim/internal/ace"
	"rarsim/internal/isa"
	"rarsim/internal/mem"
)

// dispatchStage moves up to Width uops from the front-end pipe into the
// back-end. In normal mode this allocates ROB/IQ/LQ/SQ entries and renames;
// in runahead mode dispatch is handled by dispatchRunahead (no ROB).
func (c *Core) dispatchStage() {
	popped := 0
	for n := 0; n < c.cfg.Width && popped < len(c.frontQ); n++ {
		u := c.frontQ[popped]
		if u.frontReadyAt > c.cycle {
			break
		}
		var ok bool
		if c.mode == modeNormal {
			ok = c.dispatchNormal(u)
		} else {
			ok = c.dispatchRunahead(u)
		}
		if !ok {
			break // structural stall: retry next cycle, in order
		}
		popped++
	}
	if popped > 0 {
		// Compact instead of re-slicing: a [1:] pop strands the front of
		// the backing array, so the paired fetch append re-allocates the
		// queue every few thousand cycles.
		rest := copy(c.frontQ, c.frontQ[popped:])
		for i := rest; i < rest+popped; i++ {
			c.frontQ[i] = nil
		}
		c.frontQ = c.frontQ[:rest]
	}
}

// dispatchStalled reports whether u cannot dispatch in normal mode for a
// structural reason (ROB/IQ/LQ/SQ/registers full). Every resource it
// consults is freed only by a pipeline event (commit, completion, squash),
// which is what lets the stall fast-forward (ff.go) treat a stalled
// dispatch head as quiescent until the next event.
//
//rarlint:pure
func (c *Core) dispatchStalled(u *uop) bool {
	in := &u.inst
	return c.robCount == c.cfg.ROB ||
		(!in.IsNop() && len(c.iq) >= c.cfg.IQ) ||
		(in.IsLoad() && c.lqCount >= c.cfg.LQ) ||
		(in.IsStore() && len(c.sqList) >= c.cfg.SQ) ||
		(in.HasDest() && !c.regs.canAlloc(in.Dest.IsFp()))
}

// dispatchNormal allocates back-end resources for u and renames it.
// Returns false on a structural stall (ROB/IQ/LQ/SQ/registers full).
func (c *Core) dispatchNormal(u *uop) bool {
	if c.dispatchStalled(u) {
		return false
	}
	in := &u.inst

	u.src[0] = c.regs.lookup(in.Src1)
	u.src[1] = c.regs.lookup(in.Src2)
	if in.HasDest() {
		u.dest, u.prevDest = c.regs.rename(in.Dest)
	}

	// Record dependence edges for SST slice extraction (correct path only).
	if !in.WrongPath {
		var s1, s2 uint64
		if in.Src1.Valid() {
			s1 = c.lastWriter[in.Src1]
		}
		if in.Src2.Valid() {
			s2 = c.lastWriter[in.Src2]
		}
		c.prod.record(in.PC, s1, s2)
		if in.HasDest() {
			c.lastWriter[in.Dest] = in.PC
		}
	}

	u.dispatchedAt = c.cycle
	u.hbAtDispatch, u.fsAtDispatch = c.ledger.Cum()
	c.s.TotalDispatched++
	u.robIdx = c.robTailIdx()
	c.rob[u.robIdx] = u
	c.robCount++

	if in.IsNop() {
		u.state = uopCompleted
		u.doneAt = c.cycle
		return true
	}
	if in.IsLoad() {
		c.lqCount++
		u.inLQ = true
	}
	if in.IsStore() {
		c.sqList = append(c.sqList, u)
		u.inSQ = true
	}
	c.enqueueIQ(u)
	return true
}

// poolOf maps an instruction class to its functional-unit pool. Loads,
// stores and branches use the integer-add pool (address generation /
// resolution).
//
//rarlint:pure
func poolOf(class isa.Class) int {
	switch class {
	case isa.IntMult:
		return fuIntMult
	case isa.IntDiv:
		return fuIntDiv
	case isa.FpAdd:
		return fuFpAdd
	case isa.FpMult:
		return fuFpMult
	case isa.FpDiv:
		return fuFpDiv
	default:
		return fuIntAdd
	}
}

// fuWidth returns the ACE bit width of the unit executing the class.
func (c *Core) fuWidth(class isa.Class) uint64 {
	if class.IsFp() {
		return uint64(c.bits.FpFU)
	}
	return uint64(c.bits.IntFU)
}

//rarlint:pure
func (c *Core) srcsReady(u *uop) bool {
	for _, p := range u.src {
		if p >= 0 && !c.regs.ready[p] {
			return false
		}
	}
	return true
}

// waiter is one issue-queue wakeup registration. The seq guard makes stale
// entries inert: uop records are pooled, so a squashed-and-recycled record
// reachable from an old registration carries a different seq and is skipped.
type waiter struct {
	u   *uop
	seq uint64
}

// enqueueIQ inserts u into the issue queue, registering its not-yet-ready
// sources for event-driven wakeup. u.notReady is a one-sided filter:
// notReady > 0 guarantees srcsReady is false, because a ready bit flips
// true only inside markReady, and the first markReady(p) after a
// registration on p decrements it. A registration survives even PRE's
// register recycling (drainPRDQ frees a dead producer's register and a
// later rename re-allocates it while the consumer still names it): the
// consumer then waits for the new producer, whose markReady performs the
// wake — exactly the poll-based semantics this filter replaces.
// notReady == 0 does NOT guarantee readiness: that same recycling can
// re-poison a source behind the filter's back (alloc clears the ready bit
// without touching registrations already woken), so issueStage confirms
// with srcsReady before issuing. The filter takes the srcsReady poll off
// the queue's blocked majority; the confirm only runs for issue candidates.
//
//rarlint:hot
func (c *Core) enqueueIQ(u *uop) {
	u.state = uopDispatched
	u.notReady = 0
	for _, p := range u.src {
		if p >= 0 && !c.regs.ready[p] {
			u.notReady++
			c.waiters[p] = append(c.waiters[p], waiter{u, u.seq})
		}
	}
	c.iq = append(c.iq, u)
}

// markReady publishes physical register p as ready and wakes the uops
// registered as waiting on it. Registrations from squashed consumers are
// inert (the pooled uop record carries a newer seq); registrations from
// before a recycling of p are live and correct to wake (see enqueueIQ).
//
//rarlint:hot
func (c *Core) markReady(p int16) {
	c.regs.ready[p] = true
	ws := c.waiters[p]
	for _, w := range ws {
		if w.u.seq == w.seq && w.u.notReady > 0 {
			w.u.notReady--
		}
	}
	c.waiters[p] = ws[:0]
}

// issueStage selects up to Width ready uops, oldest first, and starts them
// on functional units; loads and stores additionally access memory.
func (c *Core) issueStage() {
	for i := range c.fuIssued {
		c.fuIssued[i] = 0
	}
	issued := 0
	kept := c.iq[:0]
	for _, u := range c.iq {
		if u.state != uopDispatched {
			continue // dead: drop from the queue
		}
		if u.notReady != 0 || issued >= c.cfg.Width || u.retryAt > c.cycle ||
			!c.srcsReady(u) || !c.tryIssue(u) {
			kept = append(kept, u)
			continue
		}
		issued++
	}
	c.iq = kept
}

// tryIssue attempts to start u this cycle. It returns false when no unit
// is free or the L1D is out of MSHRs.
func (c *Core) tryIssue(u *uop) bool {
	pool := poolOf(u.inst.Class)
	fu := &c.fuPools[pool]
	if fu.Pipelined {
		if c.fuIssued[pool] >= fu.Count {
			return false
		}
	} else if c.fuBusyTill[pool] > c.cycle {
		return false
	}

	switch {
	case u.isLoad():
		if fwd, ok := c.forwardFromStore(u); ok {
			u.doneAt = fwd
		} else {
			kind := mem.KindLoad
			switch {
			case u.inst.WrongPath:
				kind = mem.KindWrongPath
			case u.runahead:
				kind = mem.KindRunahead
			}
			res := c.hier.Access(u.inst.Addr, c.cycle+1, kind)
			if res.MSHRStall {
				u.retryAt = c.cycle + 4
				return false
			}
			u.doneAt = res.DoneAt
			u.llcMiss = res.LLCMiss
			// A load merging with an in-flight fill waits nearly as long
			// as a fresh miss; the MSHRs report it as an outstanding
			// long-latency access, so stall-based mechanisms treat it
			// like one.
			u.longLat = res.LLCMiss || res.DoneAt > c.cycle+longLatWait
			u.memIssued = true
			if u.runahead && res.DoneAt > c.cycle+runaheadLoadCutoff {
				// Fire-and-forget: a runahead load that misses does its
				// job the moment the prefetch is in flight. It
				// pseudo-retires immediately with a poisoned (INV)
				// destination rather than holding PRDQ/IQ resources for
				// the full memory latency — this is what lets runahead
				// run hundreds of instructions ahead.
				u.doneAt = c.cycle + 1
				u.inv = true
			}
			if res.LLCMiss && kind == mem.KindLoad && u.inst.PC != c.lastTrainedPC {
				trainSlice(c.sstT, c.prod, u.inst.PC, 4, 16)
				c.lastTrainedPC = u.inst.PC
			}
		}
	case u.isStore():
		u.doneAt = c.cycle + 1 // address generation; data written post-commit
	default:
		u.doneAt = c.cycle + fu.Latency
	}

	if fu.Pipelined {
		c.fuIssued[pool]++
	} else {
		c.fuBusyTill[pool] = u.doneAt
	}
	u.fuLatency = fu.Latency
	u.state = uopIssued
	u.issuedAt = c.cycle
	u.hbAtIssue, u.fsAtIssue = c.ledger.Cum()
	u.issueValid = true
	c.s.TotalIssued++
	c.execList = append(c.execList, u)
	if u.runahead {
		c.s.RunaheadExecuted++
	}
	return true
}

// forwardFromStore checks the store queue for an older in-flight store to
// the same 8-byte block; a hit forwards in two cycles without touching the
// cache.
func (c *Core) forwardFromStore(u *uop) (doneAt uint64, ok bool) {
	block := u.inst.Addr >> 3
	for i := len(c.sqList) - 1; i >= 0; i-- {
		s := c.sqList[i]
		if s.seq >= u.seq || s.state == uopDead {
			continue
		}
		if s.state == uopDispatched {
			continue // address not generated yet; no forwarding
		}
		if s.inst.Addr>>3 == block {
			return c.cycle + 2, true
		}
	}
	return 0, false
}

// completeStage retires finished executions: wakes dependents, resolves
// branches (including misprediction recovery), and marks uops completed.
//
//rarlint:hot
func (c *Core) completeStage() {
	done := c.doneScratch[:0]
	kept := c.execList[:0]
	for _, u := range c.execList {
		if u.state == uopDead {
			continue
		}
		if u.doneAt <= c.cycle {
			done = append(done, u)
		} else {
			kept = append(kept, u)
		}
	}
	c.execList = kept
	c.doneScratch = done
	if len(done) == 0 {
		return
	}
	// Resolve oldest-first: an older mispredicted branch squashes younger
	// completions in the same cycle. The batch is small (bounded by uops
	// finishing on one cycle), so an insertion sort beats sort.Slice.
	for i := 1; i < len(done); i++ {
		for j := i; j > 0 && done[j-1].seq > done[j].seq; j-- {
			done[j-1], done[j] = done[j], done[j-1]
		}
	}
	for _, u := range done {
		if u.state == uopDead {
			continue
		}
		c.completeUop(u)
	}
}

func (c *Core) completeUop(u *uop) {
	u.state = uopCompleted
	u.hbAtDone, u.fsAtDone = c.ledger.Cum()
	if u.dest >= 0 {
		c.markReady(u.dest)
		c.regs.inv[u.dest] = u.inv
	}
	if u.isBranch() && !u.inst.WrongPath && u.predTaken != u.inst.Taken {
		if u.runahead {
			c.redirectRunahead(u)
		} else {
			c.recoverMispredict(u)
		}
	}
}

// recoverMispredict repairs a normal-mode branch misprediction: squash
// everything younger, rewind the stream and the predictor history, and
// redirect fetch. If the core is in runahead mode (the branch pre-dates
// runahead entry), runahead is aborted first.
func (c *Core) recoverMispredict(u *uop) {
	if c.mode == modeRunahead {
		c.abortRunahead()
	}
	c.squashYounger(u.seq)
	c.clearWrongPath()
	c.stream.rewind(u.streamIdx + 1)
	c.bp.Restore(u.bpSnap, true, u.inst.PC, u.inst.Taken)
	if u.inst.Taken {
		c.btb.Insert(u.inst.PC, u.inst.Target)
	}
	if c.fetchStallUntil < c.cycle+1 {
		c.fetchStallUntil = c.cycle + 1
	}
}

// squashYounger removes every uop younger than seqB from the ROB and the
// front-end, rolling back rename state.
func (c *Core) squashYounger(seqB uint64) {
	squashed := c.squashScratch[:0]
	for c.robCount > 0 {
		tail := (c.robHead + c.robCount - 1) % c.cfg.ROB
		u := c.rob[tail]
		if u.seq <= seqB {
			break
		}
		if u.dest >= 0 {
			c.regs.rat[u.inst.Dest] = u.prevDest
			c.regs.free(u.dest)
		}
		if u.inLQ {
			c.lqCount--
		}
		u.state = uopDead
		c.rob[tail] = nil
		c.robCount--
		squashed = append(squashed, u)
	}
	c.filterSecondary()
	c.clearFrontQ()
	for _, u := range squashed {
		c.release(u)
	}
	c.squashScratch = squashed[:0]
}

// filterSecondary drops dead uops from the issue queue, execution list and
// store queue.
func (c *Core) filterSecondary() {
	iq := c.iq[:0]
	for _, u := range c.iq {
		if u.state != uopDead {
			iq = append(iq, u)
		}
	}
	c.iq = iq
	ex := c.execList[:0]
	for _, u := range c.execList {
		if u.state != uopDead {
			ex = append(ex, u)
		}
	}
	c.execList = ex
	sq := c.sqList[:0]
	for _, u := range c.sqList {
		if u.state != uopDead {
			sq = append(sq, u)
		}
	}
	c.sqList = sq
}

// commitStage retires up to Width completed instructions from the ROB
// head, reporting their ACE windows and releasing resources. Commit is
// architecturally blocked during runahead mode.
func (c *Core) commitStage() {
	if c.mode == modeRunahead {
		return
	}
	for n := 0; n < c.cfg.Width && c.robCount > 0; n++ {
		if c.commitBarrier > 0 && c.s.Committed >= c.commitBarrier {
			break
		}
		u := c.rob[c.robHead]
		if u.state != uopCompleted {
			break
		}
		if u.isStore() {
			if len(c.storeBuf) >= c.cfg.PostCommitStoreBuffer {
				break
			}
			c.storeBuf = append(c.storeBuf, u.inst.Addr)
		}
		c.commitUop(u)
		c.rob[c.robHead] = nil
		c.robHead = (c.robHead + 1) % c.cfg.ROB
		c.robCount--
		c.release(u)
	}
}

func (c *Core) commitUop(u *uop) {
	in := &u.inst
	if in.WrongPath {
		//rarlint:allow hotalloc fatal model-bug exit, never taken on a healthy run
		panic(fmt.Sprintf("core: committing wrong-path uop seq=%d pc=%#x cycle=%d mode=%d wrongPath=%v",
			u.seq, in.PC, c.cycle, c.mode, c.wrongPath))
	}
	if len(u.inj) > 0 {
		// The tagged bits reach architectural state: they were ACE.
		c.resolveInjections(u, InjectCorrupt)
	}
	// FNV-1a over (PC, class): the architectural commit-stream fingerprint.
	h := c.s.CommitHash
	if h == 0 {
		h = 14695981039346656037
	}
	h = (h ^ in.PC) * 1099511628211
	h = (h ^ uint64(in.Class)) * 1099511628211
	c.s.CommitHash = h
	c.s.Committed++
	switch {
	case in.IsLoad():
		c.s.CommittedLoads++
	case in.IsStore():
		c.s.CommittedStores++
	case in.IsBranch():
		c.s.CommittedBranches++
		c.bp.Update(in.PC, in.Taken, u.bpInfo)
		if in.Taken {
			c.btb.Insert(in.PC, in.Target)
		}
		if u.predTaken != in.Taken {
			c.s.Mispredicts++
		}
	}
	if u.prevDest >= 0 {
		c.regs.free(u.prevDest)
	}
	if u.inLQ {
		c.lqCount--
	}
	if u.inSQ {
		for i, s := range c.sqList {
			if s == u {
				c.sqList = append(c.sqList[:i], c.sqList[i+1:]...)
				break
			}
		}
	}
	c.reportACE(u)
	c.stream.release(u.streamIdx + 1)
}

// reportACE resolves the committed instruction's vulnerability windows
// into the ledger (Figure 2 semantics). NOPs are un-ACE; wrong-path
// instructions never reach here.
func (c *Core) reportACE(u *uop) {
	if u.inst.IsNop() {
		return
	}
	now := c.cycle
	hbNow, fsNow := c.ledger.Cum()

	// ROB entry: dispatch → commit.
	c.ledger.Add(ace.ROB, uint64(c.bits.ROBEntry),
		now-u.dispatchedAt, hbNow-u.hbAtDispatch, fsNow-u.fsAtDispatch)

	if !u.issueValid {
		return
	}
	// Issue-queue entry: dispatch → issue.
	c.ledger.Add(ace.IQ, uint64(c.bits.IQEntry),
		u.issuedAt-u.dispatchedAt, u.hbAtIssue-u.hbAtDispatch, u.fsAtIssue-u.fsAtDispatch)

	// Load/store queue: execute → commit.
	if u.isLoad() {
		c.ledger.Add(ace.LQ, uint64(c.bits.LQEntry),
			now-u.issuedAt, hbNow-u.hbAtIssue, fsNow-u.fsAtIssue)
	}
	if u.isStore() {
		c.ledger.Add(ace.SQ, uint64(c.bits.SQEntry),
			now-u.issuedAt, hbNow-u.hbAtIssue, fsNow-u.fsAtIssue)
	}

	// Functional unit: bit width × execution cycles.
	hbFU := minU64(u.fuLatency, u.hbAtDone-u.hbAtIssue)
	fsFU := minU64(u.fuLatency, u.fsAtDone-u.fsAtIssue)
	c.ledger.Add(ace.FU, c.fuWidth(u.inst.Class), u.fuLatency, hbFU, fsFU)

	// Physical register: writeback → commit of the producer.
	if u.dest >= 0 {
		bits := uint64(c.bits.IntReg)
		if c.regs.isFp(u.dest) {
			bits = uint64(c.bits.FpReg)
		}
		c.ledger.Add(ace.RF, bits, now-u.doneAt, hbNow-u.hbAtDone, fsNow-u.fsAtDone)
	}
}

// drainStores writes one committed store per cycle into the L1D.
func (c *Core) drainStores() {
	if len(c.storeBuf) == 0 {
		return
	}
	res := c.hier.Access(c.storeBuf[0], c.cycle, mem.KindStore)
	if res.MSHRStall {
		return
	}
	// Compact instead of re-slicing so the buffer's capacity is reused
	// forever (see dispatchStage); the buffer is bounded by
	// PostCommitStoreBuffer entries, so the copy is cheap.
	n := copy(c.storeBuf, c.storeBuf[1:])
	c.storeBuf = c.storeBuf[:n]
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
