package core

import (
	"fmt"

	"rarsim/internal/ace"
	"rarsim/internal/isa"
	"rarsim/internal/mem"
)

// dispatchStage moves up to Width uops from the front-end pipe into the
// back-end. In normal mode this allocates ROB/IQ/LQ/SQ entries and renames;
// in runahead mode dispatch is handled by dispatchRunahead (no ROB).
func (c *Core) dispatchStage() {
	for n := 0; n < c.cfg.Width && c.frontQ.len() > 0; n++ {
		u := c.frontQ.at(0)
		if u.frontReadyAt > c.cycle {
			break
		}
		var ok bool
		if c.mode == modeNormal {
			ok = c.dispatchNormal(u)
		} else {
			ok = c.dispatchRunahead(u)
		}
		if !ok {
			break // structural stall: retry next cycle, in order
		}
		c.frontQ.popFront()
		c.progress++
	}
}

// dispatchStalled reports whether u cannot dispatch in normal mode for a
// structural reason (ROB/IQ/LQ/SQ/registers full). Every resource it
// consults is freed only by a pipeline event (commit, completion, squash),
// which is what lets the stall fast-forward (ff.go) treat a stalled
// dispatch head as quiescent until the next event.
//
//rarlint:pure
func (c *Core) dispatchStalled(u *uop) bool {
	in := &u.inst
	return c.robCount == c.cfg.ROB ||
		(!in.IsNop() && c.iqLive >= c.cfg.IQ) ||
		(in.IsLoad() && c.lqCount >= c.cfg.LQ) ||
		(in.IsStore() && len(c.sqList) >= c.cfg.SQ) ||
		(in.HasDest() && !c.regs.canAlloc(in.Dest.IsFp()))
}

// dispatchNormal allocates back-end resources for u and renames it.
// Returns false on a structural stall (ROB/IQ/LQ/SQ/registers full).
func (c *Core) dispatchNormal(u *uop) bool {
	if c.dispatchStalled(u) {
		return false
	}
	in := &u.inst

	u.src[0] = c.regs.lookup(in.Src1)
	u.src[1] = c.regs.lookup(in.Src2)
	if in.HasDest() {
		u.dest, u.prevDest = c.regs.rename(in.Dest)
	}

	// Record dependence edges for SST slice extraction (correct path only).
	if !in.WrongPath {
		var s1, s2 uint64
		if in.Src1.Valid() {
			s1 = c.lastWriter[in.Src1]
		}
		if in.Src2.Valid() {
			s2 = c.lastWriter[in.Src2]
		}
		c.prod.record(in.PC, s1, s2)
		if in.HasDest() {
			c.lastWriter[in.Dest] = in.PC
		}
	}

	u.dispatchedAt = c.cycle
	u.hbAtDispatch, u.fsAtDispatch = c.ledger.Cum()
	c.s.TotalDispatched++
	u.robIdx = c.robTailIdx()
	c.rob[u.robIdx] = u
	c.robCount++

	if in.IsNop() {
		u.state = uopCompleted
		u.doneAt = c.cycle
		return true
	}
	if in.IsLoad() {
		c.lqCount++
		u.inLQ = true
	}
	if in.IsStore() {
		c.sqList = append(c.sqList, u)
		u.inSQ = true
	}
	c.enqueueIQ(u)
	return true
}

// poolOf maps an instruction class to its functional-unit pool. Loads,
// stores and branches use the integer-add pool (address generation /
// resolution).
//
//rarlint:pure
func poolOf(class isa.Class) int {
	switch class {
	case isa.IntMult:
		return fuIntMult
	case isa.IntDiv:
		return fuIntDiv
	case isa.FpAdd:
		return fuFpAdd
	case isa.FpMult:
		return fuFpMult
	case isa.FpDiv:
		return fuFpDiv
	default:
		return fuIntAdd
	}
}

// fuWidth returns the ACE bit width of the unit executing the class.
func (c *Core) fuWidth(class isa.Class) uint64 {
	if class.IsFp() {
		return uint64(c.bits.FpFU)
	}
	return uint64(c.bits.IntFU)
}

//rarlint:pure
func (c *Core) srcsReady(u *uop) bool {
	for _, p := range u.src {
		if p >= 0 && !c.regs.ready[p] {
			return false
		}
	}
	return true
}

// waiter is one issue-queue wakeup registration. The seq guard makes stale
// entries inert: uop records are pooled, so a squashed-and-recycled record
// reachable from an old registration carries a different seq and is skipped.
type waiter struct {
	u   *uop
	seq uint64
}

// enqueueIQ inserts u into the issue queue, registering its not-yet-ready
// sources for event-driven wakeup. u.notReady is a one-sided filter:
// notReady > 0 guarantees srcsReady is false, because a ready bit flips
// true only inside markReady, and the first markReady(p) after a
// registration on p decrements it. A registration survives even PRE's
// register recycling (drainPRDQ frees a dead producer's register and a
// later rename re-allocates it while the consumer still names it): the
// consumer then waits for the new producer, whose markReady performs the
// wake — exactly the poll-based semantics this filter replaces.
// notReady == 0 does NOT guarantee readiness: that same recycling can
// re-poison a source behind the filter's back (alloc clears the ready bit
// without touching registrations already woken), so issueStage confirms
// with srcsReady before issuing. The filter takes the srcsReady poll off
// the queue's blocked majority; the confirm only runs for issue candidates.
//
//rarlint:hot
func (c *Core) enqueueIQ(u *uop) {
	u.state = uopDispatched
	u.notReady = 0
	for _, p := range u.src {
		if p >= 0 && !c.regs.ready[p] {
			u.notReady++
			c.waiters[p] = append(c.waiters[p], waiter{u, u.seq})
		}
	}
	c.iq = append(c.iq, waiter{u, u.seq})
	c.iqLive++
	if u.notReady == 0 {
		c.pushReady(u)
	}
}

// markReady publishes physical register p as ready and wakes the uops
// registered as waiting on it. Registrations from squashed consumers are
// inert (the pooled uop record carries a newer seq); registrations from
// before a recycling of p are live and correct to wake (see enqueueIQ).
// A uop whose last unready source arrives becomes an issue candidate.
//
//rarlint:hot
func (c *Core) markReady(p int16) {
	c.regs.ready[p] = true
	ws := c.waiters[p]
	for _, w := range ws {
		if w.u.seq == w.seq && w.u.notReady > 0 {
			w.u.notReady--
			if w.u.notReady == 0 {
				c.pushReady(w.u)
			}
		}
	}
	c.waiters[p] = ws[:0]
}

// pushReady inserts u into the ready list, keeping it sorted by seq so
// issue stays oldest-first. notReady never rises again once it reaches
// zero, so each uop incarnation is pushed exactly once — at enqueue when
// all sources are already ready, or at its final wakeup. Pushes are
// near-sorted already (wakeups follow dispatch order closely), so the
// insertion scan is almost always a plain append.
//
//rarlint:hot
func (c *Core) pushReady(u *uop) {
	i := len(c.readyList)
	c.readyList = append(c.readyList, waiter{})
	for i > 0 && c.readyList[i-1].seq > u.seq {
		c.readyList[i] = c.readyList[i-1]
		i--
	}
	c.readyList[i] = waiter{u, u.seq}
}

// iqCompactThreshold is the tombstone count at which issueStage compacts
// the issue queue (see compactIQ).
const iqCompactThreshold = 32

// compactIQ drops every entry that is no longer a waiting dispatched uop —
// issued tombstones and squashed leftovers — restoring the dense dispatch-
// order layout the per-cycle-compacting implementation maintained. Audit
// and fault injection index IQ slots positionally, so both force a
// compaction before looking; the hot path compacts only when tombstones
// have piled up.
//
//rarlint:hot
func (c *Core) compactIQ() {
	if c.iqTomb == 0 {
		return
	}
	c.rebuildIQ()
}

// rebuildIQ unconditionally compacts the issue queue down to its live
// waiting entries (seq guard intact and still dispatched) and recounts.
func (c *Core) rebuildIQ() {
	kept := c.iq[:0]
	for _, w := range c.iq {
		if w.u.seq == w.seq && w.u.state == uopDispatched {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(c.iq); i++ {
		c.iq[i] = waiter{}
	}
	c.iq = kept
	c.iqLive = len(kept)
	c.iqTomb = 0
}

// issueStage selects up to Width ready uops, oldest first, and starts them
// on functional units; loads and stores additionally access memory. Only
// the ready list is scanned — the blocked majority of the issue queue
// (notReady > 0) is never touched; it wakes event-driven via markReady.
//
//rarlint:hot
func (c *Core) issueStage() {
	for i := range c.fuIssued {
		c.fuIssued[i] = 0
	}
	issued := 0
	kept := c.readyList[:0]
	for _, w := range c.readyList {
		u := w.u
		if u.seq != w.seq || u.state != uopDispatched {
			continue // stale: issued earlier, squashed, or recycled
		}
		if issued >= c.cfg.Width || u.retryAt > c.cycle ||
			!c.srcsReady(u) || !c.tryIssue(u) {
			kept = append(kept, w)
			continue
		}
		issued++
		// The issued uop stays in c.iq as a tombstone until compaction.
		c.iqTomb++
		c.iqLive--
	}
	c.readyList = kept
	if issued > 0 {
		c.progress++
	}
	if c.iqTomb >= iqCompactThreshold {
		c.compactIQ()
	}
}

// tryIssue attempts to start u this cycle. It returns false when no unit
// is free or the L1D is out of MSHRs.
func (c *Core) tryIssue(u *uop) bool {
	pool := poolOf(u.inst.Class)
	fu := &c.fuPools[pool]
	if fu.Pipelined {
		if c.fuIssued[pool] >= fu.Count {
			return false
		}
	} else if c.fuBusyTill[pool] > c.cycle {
		return false
	}

	switch {
	case u.isLoad():
		if fwd, ok := c.forwardFromStore(u); ok {
			u.doneAt = fwd
		} else {
			kind := mem.KindLoad
			switch {
			case u.inst.WrongPath:
				kind = mem.KindWrongPath
			case u.runahead:
				kind = mem.KindRunahead
			}
			res := c.hier.Access(u.inst.Addr, c.cycle+1, kind)
			if res.MSHRStall {
				u.retryAt = c.cycle + 4
				return false
			}
			u.doneAt = res.DoneAt
			u.llcMiss = res.LLCMiss
			// A load merging with an in-flight fill waits nearly as long
			// as a fresh miss; the MSHRs report it as an outstanding
			// long-latency access, so stall-based mechanisms treat it
			// like one.
			u.longLat = res.LLCMiss || res.DoneAt > c.cycle+longLatWait
			u.memIssued = true
			if u.runahead && res.DoneAt > c.cycle+runaheadLoadCutoff {
				// Fire-and-forget: a runahead load that misses does its
				// job the moment the prefetch is in flight. It
				// pseudo-retires immediately with a poisoned (INV)
				// destination rather than holding PRDQ/IQ resources for
				// the full memory latency — this is what lets runahead
				// run hundreds of instructions ahead.
				u.doneAt = c.cycle + 1
				u.inv = true
			}
			if res.LLCMiss && kind == mem.KindLoad && u.inst.PC != c.lastTrainedPC {
				trainSlice(c.sstT, c.prod, u.inst.PC, 4, 16)
				c.lastTrainedPC = u.inst.PC
			}
		}
	case u.isStore():
		u.doneAt = c.cycle + 1 // address generation; data written post-commit
	default:
		u.doneAt = c.cycle + fu.Latency
	}

	if fu.Pipelined {
		c.fuIssued[pool]++
	} else {
		c.fuBusyTill[pool] = u.doneAt
	}
	u.fuLatency = fu.Latency
	u.state = uopIssued
	u.issuedAt = c.cycle
	u.hbAtIssue, u.fsAtIssue = c.ledger.Cum()
	u.issueValid = true
	c.s.TotalIssued++
	c.scheduleCompletion(u)
	if u.runahead {
		c.s.RunaheadExecuted++
	}
	return true
}

// forwardFromStore checks the store queue for an older in-flight store to
// the same 8-byte block; a hit forwards in two cycles without touching the
// cache.
func (c *Core) forwardFromStore(u *uop) (doneAt uint64, ok bool) {
	block := u.inst.Addr >> 3
	for i := len(c.sqList) - 1; i >= 0; i-- {
		s := c.sqList[i]
		if s.seq >= u.seq || s.state == uopDead {
			continue
		}
		if s.state == uopDispatched {
			continue // address not generated yet; no forwarding
		}
		if s.inst.Addr>>3 == block {
			return c.cycle + 2, true
		}
	}
	return 0, false
}

// completeStage retires finished executions: wakes dependents, resolves
// branches (including misprediction recovery), and marks uops completed.
//
// cwSize is the completion wheel's window in cycles: completions within
// cwSize cycles sit in their bucket, later ones (DRAM fills) wait in the
// overflow list. A power of two so the bucket index is a mask.
const cwSize = 256

// cwBucketCap is each bucket's preallocated capacity (see NewWithHierarchy);
// a bucket deeper than this grows normally and keeps the larger backing.
const cwBucketCap = 32

// cwEntry is an overflow registration: doneAt is recorded at insertion so
// migration never has to dereference a possibly-recycled uop.
type cwEntry struct {
	u      *uop
	seq    uint64
	doneAt uint64
}

// scheduleCompletion registers an issued uop's completion on the wheel.
// doneAt is always at least c.cycle+1 when issue succeeds, so the bucket
// the entry lands in is drained before the index can wrap.
//
//rarlint:hot
func (c *Core) scheduleCompletion(u *uop) {
	d := u.doneAt
	if d <= c.cycle {
		// Defensive: the scan-based predecessor completed a same-cycle
		// doneAt on the next cycle's pass; pin the wheel to the same
		// schedule.
		d = c.cycle + 1
	}
	if d-c.cycle < cwSize {
		i := d & (cwSize - 1)
		c.cwBuckets[i] = append(c.cwBuckets[i], waiter{u, u.seq})
	} else {
		c.cwOverflow = append(c.cwOverflow, cwEntry{u, u.seq, d})
		if d < c.cwOvMin {
			c.cwOvMin = d
		}
	}
	c.cwCount++
}

// migrateOverflow moves overflow completions that entered the wheel window
// into their buckets and recomputes the watermark. An entry due exactly
// now lands in this cycle's bucket, which completeStage drains right after
// — identical timing to the scan-based predecessor.
func (c *Core) migrateOverflow() {
	kept := c.cwOverflow[:0]
	min := NoEventCycle
	for _, e := range c.cwOverflow {
		if e.doneAt >= c.cycle+cwSize {
			kept = append(kept, e)
			if e.doneAt < min {
				min = e.doneAt
			}
			continue
		}
		if e.u.seq == e.seq && e.u.state == uopIssued {
			c.cwBuckets[e.doneAt&(cwSize-1)] = append(c.cwBuckets[e.doneAt&(cwSize-1)], waiter{e.u, e.seq})
		} else {
			c.cwCount-- // stale: the uop was squashed (or recycled) while waiting
		}
	}
	c.cwOverflow = kept
	c.cwOvMin = min
}

//rarlint:hot
func (c *Core) completeStage() {
	// Fast paths: nothing in flight at all, then nothing due this cycle.
	// The wheel holds every pending completion in the bucket of its due
	// cycle, so a cycle with no completions is two compares and a nil
	// bucket check — no scan, no compaction.
	if c.cwCount == 0 {
		return
	}
	if c.cwOvMin < c.cycle+cwSize {
		c.migrateOverflow()
	}
	slot := c.cycle & (cwSize - 1)
	b := c.cwBuckets[slot]
	if len(b) == 0 {
		return
	}
	c.cwBuckets[slot] = b[:0]
	c.cwCount -= len(b)
	done := c.doneScratch[:0]
	for _, w := range b {
		// Stale entries — squashed uops, or recycled records carrying a
		// newer seq — drop here; live ones are exactly the issued uops
		// whose doneAt is this cycle.
		if w.u.seq != w.seq || w.u.state != uopIssued {
			continue
		}
		done = append(done, w.u)
	}
	c.doneScratch = done
	if len(done) == 0 {
		return
	}
	c.progress++
	// Resolve oldest-first: an older mispredicted branch squashes younger
	// completions in the same cycle. The batch is small (bounded by uops
	// finishing on one cycle), so an insertion sort beats sort.Slice.
	for i := 1; i < len(done); i++ {
		for j := i; j > 0 && done[j-1].seq > done[j].seq; j-- {
			done[j-1], done[j] = done[j], done[j-1]
		}
	}
	for _, u := range done {
		if u.state == uopDead {
			continue
		}
		c.completeUop(u)
	}
}

func (c *Core) completeUop(u *uop) {
	u.state = uopCompleted
	u.hbAtDone, u.fsAtDone = c.ledger.Cum()
	if u.dest >= 0 {
		c.markReady(u.dest)
		c.regs.inv[u.dest] = u.inv
	}
	if u.isBranch() && !u.inst.WrongPath && u.predTaken != u.inst.Taken {
		if u.runahead {
			c.redirectRunahead(u)
		} else {
			c.recoverMispredict(u)
		}
	}
}

// recoverMispredict repairs a normal-mode branch misprediction: squash
// everything younger, rewind the stream and the predictor history, and
// redirect fetch. If the core is in runahead mode (the branch pre-dates
// runahead entry), runahead is aborted first.
func (c *Core) recoverMispredict(u *uop) {
	if c.mode == modeRunahead {
		c.abortRunahead()
	}
	c.squashYounger(u.seq)
	c.clearWrongPath()
	c.stream.rewind(u.streamIdx + 1)
	c.bp.Restore(c.bpSnapArena[u.bpSnap], true, u.inst.PC, u.inst.Taken)
	if u.inst.Taken {
		c.btb.Insert(u.inst.PC, u.inst.Target)
	}
	if c.fetchStallUntil < c.cycle+1 {
		c.fetchStallUntil = c.cycle + 1
	}
}

// squashYounger removes every uop younger than seqB from the ROB and the
// front-end, rolling back rename state.
func (c *Core) squashYounger(seqB uint64) {
	squashed := c.squashScratch[:0]
	for c.robCount > 0 {
		tail := c.robHead + c.robCount - 1
		if tail >= c.cfg.ROB {
			tail -= c.cfg.ROB
		}
		u := c.rob[tail]
		if u.seq <= seqB {
			break
		}
		if u.dest >= 0 {
			c.regs.rat[u.inst.Dest] = u.prevDest
			c.regs.free(u.dest)
		}
		if u.inLQ {
			c.lqCount--
		}
		u.state = uopDead
		c.rob[tail] = nil
		c.robCount--
		squashed = append(squashed, u)
	}
	c.filterSecondary()
	c.clearFrontQ()
	for _, u := range squashed {
		c.release(u)
	}
	c.squashScratch = squashed[:0]
}

// filterSecondary drops dead uops from the issue queue and store queue.
// Completion-wheel entries are NOT purged here: a squashed uop's entry is
// made inert by the seq/state guard and is dropped when its bucket drains
// (or at overflow migration), so squash paths stay O(squashed), not
// O(in-flight).
func (c *Core) filterSecondary() {
	c.rebuildIQ()
	sq := c.sqList[:0]
	for _, u := range c.sqList {
		if u.state != uopDead {
			sq = append(sq, u)
		}
	}
	c.sqList = sq
}

// commitStage retires up to Width completed instructions from the ROB
// head, reporting their ACE windows and releasing resources. Commit is
// architecturally blocked during runahead mode.
func (c *Core) commitStage() {
	if c.mode == modeRunahead {
		return
	}
	for n := 0; n < c.cfg.Width && c.robCount > 0; n++ {
		if c.commitBarrier > 0 && c.s.Committed >= c.commitBarrier {
			break
		}
		u := c.rob[c.robHead]
		if u.state != uopCompleted {
			break
		}
		if u.isStore() {
			if len(c.storeBuf) >= c.cfg.PostCommitStoreBuffer {
				break
			}
			c.storeBuf = append(c.storeBuf, u.inst.Addr)
		}
		c.commitUop(u)
		c.rob[c.robHead] = nil
		c.robHead++
		if c.robHead == c.cfg.ROB {
			c.robHead = 0
		}
		c.robCount--
		c.release(u)
		c.progress++
	}
}

func (c *Core) commitUop(u *uop) {
	in := &u.inst
	if in.WrongPath {
		//rarlint:allow hotalloc fatal model-bug exit, never taken on a healthy run
		panic(fmt.Sprintf("core: committing wrong-path uop seq=%d pc=%#x cycle=%d mode=%d wrongPath=%v",
			u.seq, in.PC, c.cycle, c.mode, c.wrongPath))
	}
	if len(u.inj) > 0 {
		// The tagged bits reach architectural state: they were ACE.
		c.resolveInjections(u, InjectCorrupt)
	}
	// FNV-1a over (PC, class): the architectural commit-stream fingerprint.
	h := c.s.CommitHash
	if h == 0 {
		h = 14695981039346656037
	}
	h = (h ^ in.PC) * 1099511628211
	h = (h ^ uint64(in.Class)) * 1099511628211
	c.s.CommitHash = h
	c.s.Committed++
	switch {
	case in.IsLoad():
		c.s.CommittedLoads++
	case in.IsStore():
		c.s.CommittedStores++
	case in.IsBranch():
		c.s.CommittedBranches++
		c.bp.Update(in.PC, in.Taken, u.bpInfo)
		if in.Taken {
			c.btb.Insert(in.PC, in.Target)
		}
		if u.predTaken != in.Taken {
			c.s.Mispredicts++
		}
	}
	if u.prevDest >= 0 {
		c.regs.free(u.prevDest)
	}
	if u.inLQ {
		c.lqCount--
	}
	if u.inSQ {
		for i, s := range c.sqList {
			if s == u {
				c.sqList = append(c.sqList[:i], c.sqList[i+1:]...)
				break
			}
		}
	}
	c.reportACE(u)
	c.stream.release(u.streamIdx + 1)
}

// reportACE resolves the committed instruction's vulnerability windows
// into the ledger (Figure 2 semantics). NOPs are un-ACE; wrong-path
// instructions never reach here.
func (c *Core) reportACE(u *uop) {
	if u.inst.IsNop() {
		return
	}
	now := c.cycle
	hbNow, fsNow := c.ledger.Cum()

	// ROB entry: dispatch → commit.
	c.ledger.Add(ace.ROB, uint64(c.bits.ROBEntry),
		now-u.dispatchedAt, hbNow-u.hbAtDispatch, fsNow-u.fsAtDispatch)

	if !u.issueValid {
		return
	}
	// Issue-queue entry: dispatch → issue.
	c.ledger.Add(ace.IQ, uint64(c.bits.IQEntry),
		u.issuedAt-u.dispatchedAt, u.hbAtIssue-u.hbAtDispatch, u.fsAtIssue-u.fsAtDispatch)

	// Load/store queue: execute → commit.
	if u.isLoad() {
		c.ledger.Add(ace.LQ, uint64(c.bits.LQEntry),
			now-u.issuedAt, hbNow-u.hbAtIssue, fsNow-u.fsAtIssue)
	}
	if u.isStore() {
		c.ledger.Add(ace.SQ, uint64(c.bits.SQEntry),
			now-u.issuedAt, hbNow-u.hbAtIssue, fsNow-u.fsAtIssue)
	}

	// Functional unit: bit width × execution cycles.
	hbFU := minU64(u.fuLatency, u.hbAtDone-u.hbAtIssue)
	fsFU := minU64(u.fuLatency, u.fsAtDone-u.fsAtIssue)
	c.ledger.Add(ace.FU, c.fuWidth(u.inst.Class), u.fuLatency, hbFU, fsFU)

	// Physical register: writeback → commit of the producer.
	if u.dest >= 0 {
		bits := uint64(c.bits.IntReg)
		if c.regs.isFp(u.dest) {
			bits = uint64(c.bits.FpReg)
		}
		c.ledger.Add(ace.RF, bits, now-u.doneAt, hbNow-u.hbAtDone, fsNow-u.fsAtDone)
	}
}

// drainStores writes one committed store per cycle into the L1D.
func (c *Core) drainStores() {
	if len(c.storeBuf) == 0 {
		return
	}
	res := c.hier.Access(c.storeBuf[0], c.cycle, mem.KindStore)
	if res.MSHRStall {
		return
	}
	c.progress++
	// Compact instead of re-slicing so the buffer's capacity is reused
	// forever (see dispatchStage); the buffer is bounded by
	// PostCommitStoreBuffer entries, so the copy is cheap.
	n := copy(c.storeBuf, c.storeBuf[1:])
	c.storeBuf = c.storeBuf[:n]
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
