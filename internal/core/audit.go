package core

import (
	"fmt"

	"rarsim/internal/isa"
)

// Audit mode: an invariant checker over the core's internal state, run
// every N cycles when enabled. It is a test harness feature — the checks
// are O(structures) and would slow production simulation — but it turns
// subtle bookkeeping bugs (leaked registers, stale queue entries, ROB
// ordering violations) into immediate failures with context.

// EnableAudit turns on invariant checking every interval cycles. A failed
// invariant panics with a state description.
func (c *Core) EnableAudit(interval uint64) {
	if interval == 0 {
		interval = 1000
	}
	c.auditEvery = interval
}

func (c *Core) audit() {
	fail := func(format string, args ...any) {
		panic(fmt.Sprintf("core audit @cycle %d (bench=%s scheme=%s mode=%d): %s",
			c.cycle, c.s.Benchmark, c.s.Scheme, c.mode, fmt.Sprintf(format, args...)))
	}

	// ROB: occupancy matches, ages strictly increase, slots outside the
	// ring are nil.
	var prevSeq uint64
	lq := 0
	inROB := make(map[*uop]bool, c.robCount)
	for i := 0; i < c.cfg.ROB; i++ {
		idx := (c.robHead + i) % c.cfg.ROB
		u := c.rob[idx]
		if i < c.robCount {
			if u == nil {
				fail("ROB slot %d (occupied region) is nil", idx)
			}
			if u.state == uopDead {
				fail("dead uop seq=%d in ROB", u.seq)
			}
			if u.seq <= prevSeq {
				fail("ROB age order violated: %d after %d", u.seq, prevSeq)
			}
			prevSeq = u.seq
			if u.inLQ {
				lq++
			}
			inROB[u] = true
		} else if u != nil {
			fail("ROB slot %d (free region) holds seq=%d", idx, u.seq)
		}
	}
	if lq != c.lqCount {
		fail("lqCount=%d but %d ROB loads hold LQ entries", c.lqCount, lq)
	}

	// IQ: entries are live, waiting, and within capacity. Tombstones left
	// by the lazy-compacting issue loop are squeezed out first so the
	// checks (and the positional layout injection sees) match a per-cycle-
	// compacting queue exactly.
	c.compactIQ()
	if len(c.iq) > c.cfg.IQ {
		fail("IQ over capacity: %d > %d", len(c.iq), c.cfg.IQ)
	}
	if c.iqLive != len(c.iq) {
		fail("iqLive=%d but compacted IQ holds %d entries", c.iqLive, len(c.iq))
	}
	listed := make(map[*uop]uint64, len(c.readyList))
	for i, w := range c.readyList {
		if i > 0 && c.readyList[i-1].seq > w.seq {
			fail("ready list age order violated at %d: %d after %d",
				i, w.seq, c.readyList[i-1].seq)
		}
		if w.u.seq == w.seq && w.u.state == uopDispatched {
			listed[w.u] = w.seq
		}
	}
	for _, w := range c.iq {
		u := w.u
		if u.seq != w.seq {
			fail("IQ entry seq=%d survived compaction but uop is seq=%d", w.seq, u.seq)
		}
		if u.state != uopDispatched {
			fail("IQ holds seq=%d in state %d", u.seq, u.state)
		}
		if !u.runahead && u.robIdx < 0 && !u.inst.IsNop() {
			fail("normal-mode IQ entry seq=%d has no ROB slot", u.seq)
		}
		// The event-driven wakeup filter is one-sided: a positive notReady
		// must imply unready sources (issueStage skips on it without
		// re-polling). notReady == 0 with unready sources is legal — PRE's
		// register recycling re-poisons a source behind the filter's back,
		// and issueStage's srcsReady confirm catches exactly that case.
		if u.notReady > 0 && c.srcsReady(u) {
			fail("IQ seq=%d notReady=%d but all sources ready", u.seq, u.notReady)
		}
		// Ready-list coverage: an entry whose wakeup filter has drained
		// must be visible to the issue loop, or it would never issue.
		if u.notReady == 0 {
			if _, ok := listed[u]; !ok {
				fail("IQ seq=%d has notReady=0 but is missing from the ready list", u.seq)
			}
		}
	}

	// SQ: age-ordered stores within capacity.
	if len(c.sqList) > c.cfg.SQ {
		fail("SQ over capacity: %d > %d", len(c.sqList), c.cfg.SQ)
	}
	for i := 1; i < len(c.sqList); i++ {
		if c.sqList[i].seq <= c.sqList[i-1].seq {
			fail("SQ age order violated at %d", i)
		}
	}

	// Register conservation: every physical register is exactly one of
	// {free, RAT-mapped, in-flight destination}. In-flight destinations
	// include ROB uops' prev mappings (still live until commit).
	total := c.regs.nInt + c.regs.nFp
	free := make([]int, total)
	owned := make([]int, total)
	mark := func(counts []int, p int16, what string) {
		if p < 0 {
			return
		}
		if int(p) >= total {
			fail("%s names register %d out of range", what, p)
		}
		counts[p]++
	}
	for _, p := range c.regs.freeInt {
		mark(free, p, "freeInt")
	}
	for _, p := range c.regs.freeFp {
		mark(free, p, "freeFp")
	}
	for a := isa.Reg(0); a < isa.NumRegs; a++ {
		mark(owned, c.regs.rat[a], "RAT")
	}
	for u := range inROB {
		mark(owned, u.prevDest, "ROB prevDest")
	}
	for _, u := range c.prdq {
		mark(owned, u.prevDest, "PRDQ prevDest")
	}
	// During runahead the entry checkpoint keeps the pre-runahead
	// architectural mappings live for the exit restore.
	chkOwned := make([]bool, total)
	if c.mode == modeRunahead {
		for a := isa.Reg(0); a < isa.NumRegs; a++ {
			if p := c.chk.rat[a]; p >= 0 && int(p) < total {
				chkOwned[p] = true
			}
		}
	}
	isDest := func(i int) bool {
		for u := range inROB {
			if int(u.dest) == i {
				return true
			}
		}
		for _, u := range c.prdq {
			if int(u.dest) == i {
				return true
			}
		}
		return false
	}
	for i := 0; i < total; i++ {
		if free[i] > 1 {
			fail("physical register %d double-freed", i)
		}
		if free[i] == 0 && owned[i] == 0 && !chkOwned[i] && !isDest(i) {
			fail("physical register %d leaked (not free, mapped, or in flight)", i)
		}
		// During runahead the PRDQ recycles registers the runahead RAT
		// may still name, and the checkpoint aliases current mappings —
		// both documented, benign hazards. Outside runahead, ownership
		// must be exclusive.
		if c.mode != modeRunahead {
			if owned[i] > 1 {
				fail("physical register %d multiply owned (%d owners)", i, owned[i])
			}
			if free[i] > 0 && owned[i] > 0 {
				fail("physical register %d both free and owned", i)
			}
		}
	}

	// Mode coherence.
	if c.mode == modeRunahead && c.blocking == nil {
		fail("runahead mode without a blocking load")
	}
	if c.mode == modeNormal && len(c.prdq) != 0 {
		fail("PRDQ non-empty in normal mode (%d entries)", len(c.prdq))
	}
}
