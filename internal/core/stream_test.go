package core

import (
	"testing"

	"rarsim/internal/trace"
)

func testGen() *trace.Generator {
	b, err := trace.ByName("libquantum")
	if err != nil {
		panic(err)
	}
	return trace.New(b, 99)
}

func TestStreamBufSequential(t *testing.T) {
	s := newStreamBuf(testGen())
	var pcs []uint64
	for i := uint64(0); i < 100; i++ {
		in, idx := s.next()
		if idx != i {
			t.Fatalf("index %d, want %d", idx, i)
		}
		pcs = append(pcs, in.PC)
	}
	if s.cursor() != 100 {
		t.Errorf("cursor = %d", s.cursor())
	}
	// Rewind and replay: identical instructions.
	s.rewind(40)
	for i := 40; i < 100; i++ {
		in, idx := s.next()
		if uint64(i) != idx || in.PC != pcs[i] {
			t.Fatalf("replay diverges at %d", i)
		}
	}
}

func TestStreamBufPeek(t *testing.T) {
	s := newStreamBuf(testGen())
	pc := s.peek().PC
	in, _ := s.next()
	if in.PC != pc {
		t.Error("peek must not consume")
	}
}

func TestStreamBufRelease(t *testing.T) {
	s := newStreamBuf(testGen())
	for i := 0; i < 3000; i++ {
		s.next()
	}
	s.release(2500) // compaction threshold crossed
	if s.base == 0 {
		t.Error("release never compacted")
	}
	// Rewinding to a still-retained index works.
	s.rewind(2600)
	in, idx := s.next()
	if idx != 2600 || in.PC == 0 {
		t.Errorf("post-release read: idx=%d", idx)
	}
}

func TestStreamBufPanics(t *testing.T) {
	s := newStreamBuf(testGen())
	for i := 0; i < 3000; i++ {
		s.next()
	}
	s.release(2500)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("rewind past release", func() { s.rewind(10) })
	mustPanic("rewind forward", func() { s.rewind(s.cursor() + 5) })
}
