package core

import (
	"sort"

	"rarsim/internal/ace"
)

// Fault-injection support: statistical soft-error injection as an
// independent check on the ACE-analysis ledger (the paper's footnote 1
// discusses fault injection as the alternative methodology).
//
// A sample names a (cycle, structure, slot). When simulation time reaches
// the cycle, the occupant of the slot — if any, and if the slot is inside
// its vulnerability window — is tagged. The outcome resolves with the
// occupant's fate: commit means the flipped bit would have corrupted
// architectural state (the bit was ACE); a squash of any kind means the
// error was benign. Injection is purely observational: it never perturbs
// timing, so hundreds of samples resolve in a single deterministic run.

// InjectOutcome classifies one injection sample.
type InjectOutcome uint8

const (
	// InjectPending: not yet reached or not yet resolved.
	InjectPending InjectOutcome = iota
	// InjectMasked: the slot was empty, architecturally protected, or
	// outside its vulnerability window (e.g. an issued IQ entry, a NOP).
	InjectMasked
	// InjectSquashed: the occupant was speculative and was squashed —
	// wrong path, runahead state, or a pipeline flush discarded it.
	InjectSquashed
	// InjectCorrupt: the occupant committed; the flipped bit reached
	// architectural state. The bit was ACE.
	InjectCorrupt
)

// String names the outcome.
func (o InjectOutcome) String() string {
	switch o {
	case InjectPending:
		return "pending"
	case InjectMasked:
		return "masked"
	case InjectSquashed:
		return "squashed"
	case InjectCorrupt:
		return "corrupt"
	}
	return "outcome?"
}

// InjectSample is one fault-injection trial.
type InjectSample struct {
	// Cycle is when the fault strikes.
	Cycle uint64
	// Structure is the target structure (ROB, IQ, LQ, SQ or RF; FU
	// occupancy is transient and not sampled).
	Structure ace.Structure
	// Slot is the physical entry index within the structure.
	Slot int
	// Outcome is filled in by the simulation.
	Outcome InjectOutcome //rarlint:quiescent injection outcome record: reported post-run; injection timing is covered via injNext
}

// InjectSamples arms the core with injection trials. Must be called
// before Run; the slice is sorted by cycle and updated in place.
func (c *Core) InjectSamples(samples []InjectSample) {
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Cycle < samples[j].Cycle })
	c.injSamples = samples
	c.injNext = 0
}

// processInjections fires every sample whose cycle has arrived.
func (c *Core) processInjections() {
	for c.injNext < len(c.injSamples) && c.injSamples[c.injNext].Cycle <= c.cycle {
		i := c.injNext
		c.injNext++
		s := &c.injSamples[i]
		u := c.injectOccupant(s.Structure, s.Slot)
		if u == nil {
			s.Outcome = InjectMasked
			continue
		}
		u.inj = append(u.inj, int32(i))
	}
}

// injectOccupant finds the uop whose vulnerable state occupies the slot at
// the current cycle, or nil when the slot holds no ACE-candidate state.
func (c *Core) injectOccupant(st ace.Structure, slot int) *uop {
	switch st {
	case ace.ROB:
		if slot < 0 || slot >= c.cfg.ROB {
			return nil
		}
		u := c.rob[slot]
		if u == nil || u.inst.IsNop() {
			return nil // empty, or un-ACE by definition
		}
		return u
	case ace.IQ:
		// The issue queue's live entries are exactly the waiting uops;
		// an entry is vulnerable from dispatch to issue. Slot positions
		// are architectural, so tombstones must be squeezed out first —
		// compaction reproduces exactly the dense layout a per-cycle-
		// compacting issue queue presents at this point in the cycle.
		c.compactIQ()
		if slot < 0 || slot >= len(c.iq) {
			return nil
		}
		return c.iq[slot].u
	case ace.LQ:
		// Address/data fields are vulnerable from execute to commit.
		n := 0
		for i := 0; i < c.robCount; i++ {
			u := c.rob[(c.robHead+i)%c.cfg.ROB]
			if u == nil || !u.inLQ || u.state == uopDispatched {
				continue
			}
			if n == slot {
				return u
			}
			n++
		}
		return nil
	case ace.SQ:
		n := 0
		for _, u := range c.sqList {
			if u.state == uopDispatched || u.state == uopDead {
				continue
			}
			if n == slot {
				return u
			}
			n++
		}
		return nil
	case ace.RF:
		// A physical register is vulnerable from writeback until its
		// producer commits. Architectural registers are ECC-protected
		// (§IV-A), so committed values are masked.
		for i := 0; i < c.robCount; i++ {
			u := c.rob[(c.robHead+i)%c.cfg.ROB]
			if u != nil && u.dest == int16(slot) && u.state == uopCompleted {
				return u
			}
		}
		return nil
	}
	return nil
}

// resolveInjections marks u's pending samples with the outcome and clears
// the tags.
func (c *Core) resolveInjections(u *uop, o InjectOutcome) {
	for _, i := range u.inj {
		if c.injSamples[i].Outcome == InjectPending {
			c.injSamples[i].Outcome = o
		}
	}
	u.inj = u.inj[:0]
}

// release resolves any pending injection tags as squashed and returns the
// uop to the pool. Every terminal path for a uop goes through here;
// commit resolves Corrupt explicitly beforehand.
func (c *Core) release(u *uop) {
	if len(u.inj) > 0 {
		c.resolveInjections(u, InjectSquashed)
	}
	if u.bpSnap >= 0 {
		c.bpSnapFree = append(c.bpSnapFree, u.bpSnap)
		u.bpSnap = -1
	}
	c.pool.put(u)
}
