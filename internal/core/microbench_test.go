package core

import (
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/trace"
)

// BenchmarkSynthesisWindow compares the batched front-end (the generator's
// BlockSource face feeding the stream buffer a refill block at a time)
// against the scalar one-Next-per-instruction path on an identical warmed
// core — the core-loop companion to internal/trace's
// BenchmarkGeneratorNext/NextBlock pair. The two runs are byte-identical
// by the BlockSource contract; only the wall clock may differ.
func BenchmarkSynthesisWindow(b *testing.B) {
	bench, err := trace.ByName("x264")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		src  func() trace.Source
	}{
		{"batched", func() trace.Source { return trace.New(bench, 42) }},
		{"scalar", func() trace.Source { return trace.ScalarOnly(trace.New(bench, 42)) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := NewFromSource(config.Baseline(), config.OoO, bench.Name, mode.src())
			if _, err := c.Run(60_000); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(10_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStageLoopWindow measures a warmed compute-bound window, where
// nearly every cycle runs the full stage set — the issue-wakeup ready
// list, the completion wheel's bucket drain and the commit loop dominate.
// It is the tracked microbenchmark for the seq-guarded stage-loop layout:
// regressions here (extra pointer chasing, lost bucket locality, a
// reintroduced per-cycle scan) show up directly as ns/op.
func BenchmarkStageLoopWindow(b *testing.B) {
	bench, err := trace.ByName("exchange2")
	if err != nil {
		b.Fatal(err)
	}
	c := New(config.Baseline(), config.OoO, bench, 42)
	if _, err := c.Run(60_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}
