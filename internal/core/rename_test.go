package core

import (
	"testing"
	"testing/quick"

	"rarsim/internal/isa"
)

func TestRegFileInit(t *testing.T) {
	r := newRegFile(168, 168)
	// Architectural registers map to the low physical registers, ready.
	for a := isa.Reg(0); a < isa.NumRegs; a++ {
		p := r.lookup(a)
		if p < 0 || !r.ready[p] {
			t.Fatalf("arch %v unmapped or not ready", a)
		}
	}
	ints, fps := r.freeRegs()
	if ints != 168-isa.NumIntRegs || fps != 168-isa.NumFpRegs {
		t.Errorf("free = %d/%d", ints, fps)
	}
	if r.lookup(isa.NoReg) != -1 {
		t.Error("NoReg must map to -1")
	}
}

func TestRenameAndFree(t *testing.T) {
	r := newRegFile(40, 40)
	old := r.lookup(3)
	p, prev := r.rename(3)
	if prev != old {
		t.Errorf("prev = %d, want %d", prev, old)
	}
	if r.lookup(3) != p || r.ready[p] {
		t.Error("rename must install a fresh not-ready register")
	}
	// FP registers come from the FP file.
	pf, _ := r.rename(isa.FirstFpReg + 2)
	if !r.isFp(pf) || r.isFp(p) {
		t.Error("register kind misallocated")
	}
	ints, fps := r.freeRegs()
	if ints != 40-32-1 || fps != 40-32-1 {
		t.Errorf("free after renames = %d/%d", ints, fps)
	}
	r.free(prev)
	ints, _ = r.freeRegs()
	if ints != 40-32 {
		t.Errorf("free after release = %d", ints)
	}
	r.free(-1) // must be a no-op
}

func TestAllocExhaustion(t *testing.T) {
	r := newRegFile(34, 34)
	if !r.canAlloc(false) {
		t.Fatal("should have 2 free int regs")
	}
	r.alloc(false)
	r.alloc(false)
	if r.canAlloc(false) {
		t.Error("int file must be exhausted")
	}
	if !r.canAlloc(true) {
		t.Error("fp file must be unaffected")
	}
}

func TestRATCheckpointRestore(t *testing.T) {
	r := newRegFile(64, 64)
	snap := r.snapshotRAT()
	r.rename(1)
	r.rename(2)
	r.rename(isa.FirstFpReg)
	r.restoreRAT(snap)
	for a := isa.Reg(0); a < isa.NumRegs; a++ {
		if r.lookup(a) != snap[a] {
			t.Fatalf("arch %v not restored", a)
		}
	}
}

// Property: any sequence of rename/rollback/commit operations conserves
// registers — mapped + free = total, with no double allocation.
func TestRenameConservation(t *testing.T) {
	type op struct {
		Arch   uint8
		Action uint8 // 0 = rename+commit (free prev), 1 = rename+rollback
	}
	f := func(ops []op) bool {
		r := newRegFile(64, 64)
		for _, o := range ops {
			a := isa.Reg(o.Arch % isa.NumRegs)
			if !r.canAlloc(a.IsFp()) {
				continue
			}
			p, prev := r.rename(a)
			if o.Action%2 == 0 {
				r.free(prev) // commit: previous mapping dies
			} else {
				r.rat[a] = prev // squash: rollback
				r.free(p)
			}
		}
		// Conservation: every physical register is either free or mapped
		// by exactly one architectural register.
		seen := make(map[int16]int)
		for a := isa.Reg(0); a < isa.NumRegs; a++ {
			seen[r.lookup(a)]++
		}
		for _, p := range append(append([]int16{}, r.freeInt...), r.freeFp...) {
			seen[p]++
		}
		if len(seen) != 128 {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
