package core

// sst is the Stalling Slice Table of Precise Runahead Execution: a small
// PC-indexed table of the instructions that belong to the backward slices
// of stall-causing loads. During lean runahead, only loads and SST hits
// are dispatched for execution — everything else passes through the
// front-end and is dropped.
//
// Training happens in normal mode: when a load's access misses the LLC,
// the core walks the load's producer chain (recorded at rename time) and
// inserts the slice PCs. The table is modelled as direct-mapped with full
// PC tags; with the paper's 128 entries and the small static footprints of
// the workloads, conflicts are rare, which matches the paper's
// fully-associative 128-entry SST.
type sst struct {
	entries []uint64 //rarlint:quiescent runahead training state: consulted only by stage-driven dispatch
	mask    uint64
	inserts uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	hits uint64 //rarlint:survives statistics counter; the SST itself trains across runahead intervals by design
}

func newSST(size int) *sst {
	// Round down to a power of two for cheap indexing.
	n := 1
	for n*2 <= size {
		n *= 2
	}
	return &sst{entries: make([]uint64, n), mask: uint64(n - 1)}
}

// sstIndex mixes high PC bits in so kernels at 1 MiB-aligned bases do not
// alias each other's slots.
func sstIndex(pc, mask uint64) uint64 { return ((pc >> 2) ^ (pc >> 9)) & mask }

func (s *sst) contains(pc uint64) bool {
	if s.entries[sstIndex(pc, s.mask)] == pc {
		s.hits++
		return true
	}
	return false
}

func (s *sst) insert(pc uint64) {
	if pc == 0 {
		return
	}
	s.entries[sstIndex(pc, s.mask)] = pc
	s.inserts++
}

// producers records, per static instruction, the PCs of the instructions
// that produced its sources — the dependence edges needed to extract
// backward slices. It is a direct-mapped structure updated at rename.
type producers struct {
	tags    []uint64    //rarlint:quiescent runahead training state: consulted only by stage-driven dispatch
	sources [][2]uint64 //rarlint:quiescent runahead training state: consulted only by stage-driven dispatch
	mask    uint64
}

func newProducers(logSize int) *producers {
	n := 1 << logSize
	return &producers{
		tags:    make([]uint64, n),
		sources: make([][2]uint64, n),
		mask:    uint64(n - 1),
	}
}

func (p *producers) record(pc, src1PC, src2PC uint64) {
	i := sstIndex(pc, p.mask)
	p.tags[i] = pc
	p.sources[i] = [2]uint64{src1PC, src2PC}
}

func (p *producers) lookup(pc uint64) ([2]uint64, bool) {
	i := sstIndex(pc, p.mask)
	if p.tags[i] != pc {
		return [2]uint64{}, false
	}
	return p.sources[i], true
}

// trainSlice walks the backward slice of the load at loadPC through the
// producer table, inserting up to maxSlice PCs into the SST, bounded by
// maxDepth dependence levels. Traversal state lives in fixed stack
// arrays: training fires on every LLC-missing load, far too often to
// build a fresh queue and visited map per call. Every enqueue pairs
// with an insert, so sliceScratch bounds both cursors; a maxSlice
// beyond the scratch is clamped (the single caller passes 16).
func trainSlice(s *sst, p *producers, loadPC uint64, maxDepth, maxSlice int) {
	type item struct {
		pc    uint64
		depth int
	}
	const sliceScratch = 32
	if maxSlice >= sliceScratch {
		maxSlice = sliceScratch - 1
	}
	var work [sliceScratch]item
	var seen [sliceScratch]uint64
	s.insert(loadPC)
	work[0] = item{loadPC, 0}
	wHead, wLen := 0, 1
	seen[0] = loadPC
	nSeen := 1
	inserted := 1
	for wHead < wLen && inserted < maxSlice {
		it := work[wHead]
		wHead++
		if it.depth >= maxDepth {
			continue
		}
		srcs, ok := p.lookup(it.pc)
		if !ok {
			continue
		}
	next:
		for _, spc := range srcs {
			if spc == 0 {
				continue
			}
			for i := 0; i < nSeen; i++ {
				if seen[i] == spc {
					continue next
				}
			}
			seen[nSeen] = spc
			nSeen++
			s.insert(spc)
			inserted++
			work[wLen] = item{spc, it.depth + 1}
			wLen++
		}
	}
}
