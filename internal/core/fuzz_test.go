package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"rarsim/internal/config"
	"rarsim/internal/isa"
	"rarsim/internal/trace"
)

// randomBenchmark builds a random but valid synthetic benchmark from fuzz
// inputs: arbitrary instruction mixes, dependence distances, stream
// patterns and branch placements within the spec's validation rules.
func randomBenchmark(raw []byte) trace.Benchmark {
	next := func(i int) int {
		if len(raw) == 0 {
			return 7
		}
		return int(raw[i%len(raw)])
	}
	bodyLen := 4 + next(0)%10
	var body []trace.Op
	for i := 0; i < bodyLen; i++ {
		r := next(i+1) % 100
		dep := next(i+2)%4 + 1
		switch {
		case r < 25:
			body = append(body, trace.Op{Class: isa.Load, Stream: next(i+3) % 2})
		case r < 35:
			body = append(body, trace.Op{Class: isa.Store, Stream: next(i+3) % 2, Dep1: dep})
		case r < 45 && i+2 < bodyLen:
			body = append(body, trace.Op{Class: isa.Branch,
				TakenProb: float64(next(i+4)%50) / 100, SkipLen: 1, DepLoad: r%2 == 0})
		case r < 60:
			body = append(body, trace.Op{Class: isa.FpAdd, Dep1: dep})
		case r < 70:
			body = append(body, trace.Op{Class: isa.IntDiv, Dep1: dep})
		default:
			body = append(body, trace.Op{Class: isa.IntAlu, Dep1: dep, Dep2: next(i+5) % 3})
		}
	}
	patterns := []trace.Pattern{trace.Seq, trace.Strided, trace.Chase, trace.Rand}
	return trace.Benchmark{
		Name: "fuzz",
		Kernels: []trace.Kernel{{
			Name:       "k",
			Iterations: 2 + next(6)%40,
			Streams: []trace.StreamSpec{
				{Pattern: patterns[next(7)%4], Region: 1 << (14 + next(8)%10), Stride: 8},
				{Pattern: patterns[next(9)%4], Region: 1 << (14 + next(10)%8), Stride: 16},
			},
			Body: body,
		}},
	}
}

// TestRandomProgramsRun drives arbitrary valid programs through the two
// extreme schemes with the invariant auditor armed: whatever the
// instruction mix, the pipeline must commit exactly the requested count
// without deadlocking or corrupting its bookkeeping.
func TestRandomProgramsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	f := func(raw []byte, seed uint64) bool {
		b := randomBenchmark(raw)
		for _, s := range []config.Scheme{config.OoO, config.RAR} {
			c := New(config.Baseline(), s, b, seed)
			c.EnableAudit(256)
			st, err := c.Run(4_000)
			if err != nil || st.Committed != 4_000 {
				t.Logf("scheme %s: err=%v committed=%d raw=%v", s.Name, err, st.Committed, raw)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRandomProgramsFFEquivalence fuzzes the stall fast-forward's
// correctness contract: for arbitrary valid programs, random seeds and
// every scheme family, a run with the quiescent-cycle skip enabled must be
// Stats-identical (reflect.DeepEqual, cycle count included) to the
// cycle-by-cycle run. This is the adversarial complement to the curated
// cells in TestFFEquivalence — random dependence structures, branch mixes
// and stream patterns hunt for event sources nextEventCycle might miss.
func TestRandomProgramsFFEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	schemes := []config.Scheme{config.OoO, config.FLUSH, config.TR, config.PREEarly, config.RAR}
	f := func(raw []byte, seed uint64) bool {
		b := randomBenchmark(raw)
		s := schemes[int(seed%uint64(len(schemes)))]
		run := func(ff bool) (Stats, uint64, error) {
			c := New(config.Baseline(), s, b, seed)
			c.SetStallFastForward(ff)
			st, err := c.RunWarm(1_000, 4_000)
			return st, c.CycleCount(), err
		}
		on, onCycles, errOn := run(true)
		off, offCycles, errOff := run(false)
		if errOn != nil || errOff != nil {
			t.Logf("scheme %s: errOn=%v errOff=%v raw=%v seed=%d", s.Name, errOn, errOff, raw, seed)
			return false
		}
		if !reflect.DeepEqual(on, off) || onCycles != offCycles {
			t.Logf("scheme %s seed=%d raw=%v:\n on: %+v (cycles %d)\noff: %+v (cycles %d)",
				s.Name, seed, raw, on, onCycles, off, offCycles)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
