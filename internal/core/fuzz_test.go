package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"rarsim/internal/config"
	"rarsim/internal/trace"
)

// TestRandomProgramsRun drives arbitrary valid programs through the two
// extreme schemes with the invariant auditor armed: whatever the
// instruction mix, the pipeline must commit exactly the requested count
// without deadlocking or corrupting its bookkeeping.
func TestRandomProgramsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	f := func(raw []byte, seed uint64) bool {
		b := trace.RandomBenchmark(raw)
		for _, s := range []config.Scheme{config.OoO, config.RAR} {
			c := New(config.Baseline(), s, b, seed)
			c.EnableAudit(256)
			st, err := c.Run(4_000)
			if err != nil || st.Committed != 4_000 {
				t.Logf("scheme %s: err=%v committed=%d raw=%v", s.Name, err, st.Committed, raw)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRandomProgramsFFEquivalence fuzzes the stall fast-forward's
// correctness contract: for arbitrary valid programs, random seeds and
// every scheme family, a run with the quiescent-cycle skip enabled must be
// Stats-identical (reflect.DeepEqual, cycle count included) to the
// cycle-by-cycle run. This is the adversarial complement to the curated
// cells in TestFFEquivalence — random dependence structures, branch mixes
// and stream patterns hunt for event sources nextEventCycle might miss.
func TestRandomProgramsFFEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	schemes := []config.Scheme{config.OoO, config.FLUSH, config.TR, config.PREEarly, config.RAR}
	f := func(raw []byte, seed uint64) bool {
		b := trace.RandomBenchmark(raw)
		s := schemes[int(seed%uint64(len(schemes)))]
		run := func(ff bool) (Stats, uint64, error) {
			c := New(config.Baseline(), s, b, seed)
			c.SetStallFastForward(ff)
			st, err := c.RunWarm(1_000, 4_000)
			return st, c.CycleCount(), err
		}
		on, onCycles, errOn := run(true)
		off, offCycles, errOff := run(false)
		if errOn != nil || errOff != nil {
			t.Logf("scheme %s: errOn=%v errOff=%v raw=%v seed=%d", s.Name, errOn, errOff, raw, seed)
			return false
		}
		if !reflect.DeepEqual(on, off) || onCycles != offCycles {
			t.Logf("scheme %s seed=%d raw=%v:\n on: %+v (cycles %d)\noff: %+v (cycles %d)",
				s.Name, seed, raw, on, onCycles, off, offCycles)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
