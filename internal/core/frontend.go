package core

import "rarsim/internal/isa"

// hammockSpan is the longest forward branch (in bytes) treated as a
// hammock whose wrong path reconverges with the correct path. Mispredicted
// hammocks fetch the other side of the diamond and then rejoin the real
// instruction stream — which is why wrong-path execution (and runahead
// past a mispredicted branch) still prefetches usefully on real machines.
// Backward branches (loop back-edges) and long jumps do not reconverge
// quickly; their wrong paths are synthesised.
const hammockSpan = 16 * isa.InstBytes

// fetchStage models the front-end: up to Width instructions per cycle from
// the correct-path stream (or the wrong path after a misprediction),
// branch prediction with speculative history, BTB re-steers, and the L1I.
// Fetched uops traverse the FrontEndDepth-stage pipe before becoming
// eligible for dispatch.
func (c *Core) fetchStage() {
	if c.cycle < c.fetchStallUntil {
		return
	}
	// The front-end pipe has finite capacity: when dispatch stalls, fetch
	// backs up rather than running arbitrarily far ahead.
	if len(c.frontQ) >= c.frontQCap() {
		return
	}
	offPath := c.offPath()

	// Model the L1I for on-path fetch. Synthetic kernels are tiny, so
	// this virtually always hits after warmup; a miss stalls fetch until
	// the line arrives.
	if !offPath {
		pc := c.stream.peek().PC
		if avail := c.hier.FetchAccess(pc, c.cycle); avail > c.cycle+c.cfg.Mem.L1ILat {
			c.fetchStallUntil = avail
			return
		}
	}

	for n := 0; n < c.cfg.Width; n++ {
		if c.offPath() {
			c.fetchWrongPath()
			continue
		}

		in, idx := c.stream.next()
		u := c.newUop()
		u.inst = in
		u.streamIdx = idx
		u.frontReadyAt = c.cycle + uint64(c.cfg.FrontEndDepth)
		c.s.TotalFetched++

		if !in.IsBranch() {
			c.frontQ = append(c.frontQ, u)
			continue
		}

		// Predict the branch; checkpoint history first so a squash can
		// rewind to exactly this point.
		u.bpSnap = c.bp.Snapshot()
		pred, info := c.bp.Predict(in.PC)
		u.predTaken, u.bpInfo = pred, info
		c.frontQ = append(c.frontQ, u)

		if pred != in.Taken {
			c.startWrongPath(&in, pred)
			break // redirect ends the fetch group
		}
		if pred {
			// Correctly predicted taken: a BTB miss costs a decode-time
			// re-steer bubble; either way the taken branch ends the group.
			if _, hit := c.btb.Lookup(in.PC); !hit {
				c.fetchStallUntil = c.cycle + 2
			}
			break
		}
	}
}

// frontQCap is the front-end pipe capacity at which fetch backs up. The
// stall fast-forward relies on the same bound to decide that fetch cannot
// act until dispatch drains the pipe.
//
//rarlint:pure
func (c *Core) frontQCap() int {
	return c.cfg.Width * (c.cfg.FrontEndDepth + 2)
}

// offPath reports whether fetch is currently down a mispredicted path.
func (c *Core) offPath() bool {
	return c.wrongPath || (c.mode == modeRunahead && c.raDiverged)
}

// startWrongPath steers fetch onto the predicted — wrong — path of the
// branch and decides how that path evolves:
//
//   - Forward hammock, predicted taken (actual not-taken): the wrong path
//     starts at the target, which the real stream reaches after the
//     hammock body — skip ahead in the stream and keep fetching real
//     future instructions, marked wrong-path.
//   - Forward hammock, predicted not-taken (actual taken): the wrong path
//     is the skipped hammock body — synthesise those few instructions,
//     then reconverge onto the stream.
//   - Anything else (back-edges, long jumps): the wrong path does not
//     reconverge; synthesise indefinitely until the branch resolves.
func (c *Core) startWrongPath(in *isa.Inst, predTaken bool) {
	if c.mode == modeRunahead {
		c.raDiverged = true
	} else {
		c.wrongPath = true
	}

	forward := in.Target > in.PC && in.Target-in.PC <= hammockSpan
	switch {
	case predTaken && forward:
		// Skip stream entries up to the reconvergence point (the
		// branch target). They are re-fetched after recovery rewinds.
		start := c.stream.cursor()
		found := false
		for k := 0; k < hammockSpan/isa.InstBytes+1; k++ {
			if c.stream.peek().PC == in.Target {
				found = true
				break
			}
			c.stream.next()
		}
		if found {
			c.wpSynthetic = 0
			return
		}
		c.stream.rewind(start)
		c.wpSynthetic = -1
		c.wpPC = in.Target
	case !predTaken && forward:
		// Fetch the hammock body the stream skipped, then reconverge.
		c.wpSynthetic = int((in.Target - in.FallThrough()) / isa.InstBytes)
		c.wpPC = in.FallThrough()
	default:
		c.wpSynthetic = -1
		c.wpPC = in.Target
		if !predTaken {
			c.wpPC = in.FallThrough()
		}
	}
}

// fetchWrongPath fetches one instruction while off-path: a synthesised
// instruction while the divergent stretch lasts, then — for reconvergent
// hammocks — real future instructions marked wrong-path, whose loads
// prefetch exactly like on a real machine.
func (c *Core) fetchWrongPath() {
	u := c.newUop()
	u.frontReadyAt = c.cycle + uint64(c.cfg.FrontEndDepth)
	if c.wpSynthetic != 0 {
		//rarlint:allow hotalloc generator dispatch is an interface call; the generators are allocation-free
		c.gen.WrongPath(&u.inst, c.wpPC)
		c.wpPC += isa.InstBytes
		if c.wpSynthetic > 0 {
			c.wpSynthetic--
		}
	} else {
		in, idx := c.stream.next()
		in.WrongPath = true
		u.inst = in
		u.streamIdx = idx
	}
	c.frontQ = append(c.frontQ, u)
	c.s.WrongPathFetched++
	c.s.TotalFetched++
}

// clearWrongPath resets all off-path fetch state (recovery, flush,
// runahead exit).
func (c *Core) clearWrongPath() {
	c.wrongPath = false
	c.wpSynthetic = 0
}

// newUop takes a fresh uop from the pool with operand fields initialised
// to "absent".
func (c *Core) newUop() *uop {
	u := c.pool.get()
	c.seq++
	u.seq = c.seq
	u.src = [2]int16{-1, -1}
	u.dest, u.prevDest = -1, -1
	u.robIdx = -1
	return u
}

// clearFrontQ squashes every instruction still in the front-end pipe.
func (c *Core) clearFrontQ() {
	for _, u := range c.frontQ {
		u.state = uopDead
		c.release(u)
	}
	c.frontQ = c.frontQ[:0]
}
