package core

import (
	"rarsim/internal/branch"
	"rarsim/internal/isa"
)

// hammockSpan is the longest forward branch (in bytes) treated as a
// hammock whose wrong path reconverges with the correct path. Mispredicted
// hammocks fetch the other side of the diamond and then rejoin the real
// instruction stream — which is why wrong-path execution (and runahead
// past a mispredicted branch) still prefetches usefully on real machines.
// Backward branches (loop back-edges) and long jumps do not reconverge
// quickly; their wrong paths are synthesised.
const hammockSpan = 16 * isa.InstBytes

// frontRing is the front-end pipe: a fixed-capacity FIFO of in-flight
// decoded uops between fetch and dispatch. It replaces an append/copy-down
// slice — the old dispatch pop copied the whole queue down every cycle the
// core dispatched, which on busy cycles was pure overhead. The ring is
// sized to a power of two at construction so indexing is a mask, and its
// capacity (frontQCap plus one full fetch group) is a hard bound: fetch
// checks the soft cap before a group, so occupancy never exceeds
// frontQCap-1+Width.
type frontRing struct {
	buf  []*uop
	head int
	n    int
}

func newFrontRing(capacity int) frontRing {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return frontRing{buf: make([]*uop, size)}
}

//rarlint:pure
func (r *frontRing) len() int { return r.n }

// at returns the i-th oldest entry (0 = dispatch head).
//
//rarlint:pure
//rarlint:hot
func (r *frontRing) at(i int) *uop { return r.buf[(r.head+i)&(len(r.buf)-1)] }

//rarlint:hot
func (r *frontRing) push(u *uop) {
	if r.n == len(r.buf) {
		panic("core: front-end ring overflow")
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = u
	r.n++
}

// popFront removes and returns the dispatch head.
//
//rarlint:hot
func (r *frontRing) popFront() *uop {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return u
}

// fetchStage models the front-end: up to Width instructions per cycle from
// the correct-path stream (or the wrong path after a misprediction),
// branch prediction with speculative history, BTB re-steers, and the L1I.
// Fetched uops traverse the FrontEndDepth-stage pipe before becoming
// eligible for dispatch.
func (c *Core) fetchStage() {
	if c.cycle < c.fetchStallUntil {
		return
	}
	// The front-end pipe has finite capacity: when dispatch stalls, fetch
	// backs up rather than running arbitrarily far ahead.
	if c.frontQ.len() >= c.frontQCap() {
		return
	}
	// Off-path status is constant across a fetch group: fetch only goes
	// off-path via startWrongPath, which ends the group, and only recovery
	// outside fetch brings it back — so the whole group takes one side.
	if c.offPath() {
		c.fetchWrongPathGroup()
		return
	}

	// Model the L1I for on-path fetch. Synthetic kernels are tiny, so
	// this virtually always hits after warmup; a miss stalls fetch until
	// the line arrives.
	pc := c.stream.peek().PC
	if avail := c.hier.FetchAccess(pc, c.cycle); avail > c.cycle+c.cfg.Mem.L1ILat {
		c.fetchStallUntil = avail
		return
	}

	c.progress++ // past the early-outs, the group always fetches
	for n := 0; n < c.cfg.Width; n++ {
		in, idx := c.stream.next()
		u := c.newUop()
		u.inst = in
		u.streamIdx = idx
		u.frontReadyAt = c.cycle + uint64(c.cfg.FrontEndDepth)
		c.s.TotalFetched++

		if !in.IsBranch() {
			c.frontQ.push(u)
			continue
		}

		// Predict the branch. Only a mispredicted branch is ever rewound
		// (recovery restores exactly its pre-shift history), and the
		// simulator knows the true outcome here — so the ~200-byte
		// Snapshot copy is taken just for mispredicts instead of every
		// branch. The snapshot state is identical either way: it is
		// captured before the predicted outcome shifts into the history.
		pred, info := c.bp.PredictNoShift(in.PC)
		u.predTaken, u.bpInfo = pred, info
		if pred != in.Taken {
			u.bpSnap = c.allocBpSnap()
			c.bpSnapArena[u.bpSnap] = c.bp.Snapshot()
		}
		c.bp.ShiftHistory(pred, in.PC)
		c.frontQ.push(u)

		if pred != in.Taken {
			c.startWrongPath(&in, pred)
			break // redirect ends the fetch group
		}
		if pred {
			// Correctly predicted taken: a BTB miss costs a decode-time
			// re-steer bubble; either way the taken branch ends the group.
			if _, hit := c.btb.Lookup(in.PC); !hit {
				c.fetchStallUntil = c.cycle + 2
			}
			break
		}
	}
}

// frontQCap is the front-end pipe capacity at which fetch backs up. The
// stall fast-forward relies on the same bound to decide that fetch cannot
// act until dispatch drains the pipe.
//
//rarlint:pure
func (c *Core) frontQCap() int {
	return c.cfg.Width * (c.cfg.FrontEndDepth + 2)
}

// offPath reports whether fetch is currently down a mispredicted path.
func (c *Core) offPath() bool {
	return c.wrongPath || (c.mode == modeRunahead && c.raDiverged)
}

// startWrongPath steers fetch onto the predicted — wrong — path of the
// branch and decides how that path evolves:
//
//   - Forward hammock, predicted taken (actual not-taken): the wrong path
//     starts at the target, which the real stream reaches after the
//     hammock body — skip ahead in the stream and keep fetching real
//     future instructions, marked wrong-path.
//   - Forward hammock, predicted not-taken (actual taken): the wrong path
//     is the skipped hammock body — synthesise those few instructions,
//     then reconverge onto the stream.
//   - Anything else (back-edges, long jumps): the wrong path does not
//     reconverge; synthesise indefinitely until the branch resolves.
func (c *Core) startWrongPath(in *isa.Inst, predTaken bool) {
	if c.mode == modeRunahead {
		c.raDiverged = true
	} else {
		c.wrongPath = true
	}

	forward := in.Target > in.PC && in.Target-in.PC <= hammockSpan
	switch {
	case predTaken && forward:
		// Skip stream entries up to the reconvergence point (the
		// branch target). They are re-fetched after recovery rewinds.
		start := c.stream.cursor()
		found := false
		for k := 0; k < hammockSpan/isa.InstBytes+1; k++ {
			if c.stream.peek().PC == in.Target {
				found = true
				break
			}
			c.stream.next()
		}
		if found {
			c.wpSynthetic = 0
			return
		}
		c.stream.rewind(start)
		c.wpSynthetic = -1
		c.wpPC = in.Target
	case !predTaken && forward:
		// Fetch the hammock body the stream skipped, then reconverge.
		c.wpSynthetic = int((in.Target - in.FallThrough()) / isa.InstBytes)
		c.wpPC = in.FallThrough()
	default:
		c.wpSynthetic = -1
		c.wpPC = in.Target
		if !predTaken {
			c.wpPC = in.FallThrough()
		}
	}
}

// fetchWrongPathGroup fetches one full group while off-path: synthesised
// instructions while the divergent stretch lasts, then — for reconvergent
// hammocks — real future instructions marked wrong-path, whose loads
// prefetch exactly like on a real machine.
//
// Synthesised stretches are generated in batches: the whole remaining
// run of synthetic slots in the group (clamped to a bounded hammock
// body's remaining length) goes through one WrongPathBlock call instead
// of one virtual dispatch each. The batch covers exactly the
// instructions actually fetched this cycle — never more — because the
// synthesiser's RNG is shared across wrong-path episodes, so
// over-generating would perturb later episodes relative to the scalar
// path.
//
//rarlint:hot
func (c *Core) fetchWrongPathGroup() {
	c.progress++
	w := c.cfg.Width
	for n := 0; n < w; {
		if c.wpSynthetic == 0 {
			// Reconverged onto the stream: fetch real future instructions
			// marked wrong-path.
			in, idx := c.stream.next()
			in.WrongPath = true
			u := c.newUop()
			u.inst = in
			u.streamIdx = idx
			u.frontReadyAt = c.cycle + uint64(c.cfg.FrontEndDepth)
			c.frontQ.push(u)
			c.s.WrongPathFetched++
			c.s.TotalFetched++
			n++
			continue
		}
		k := w - n
		if c.wpSynthetic > 0 && k > c.wpSynthetic {
			k = c.wpSynthetic
		}
		if c.genBlk != nil {
			//rarlint:allow hotalloc synthesiser dispatch is an interface call; the generators are allocation-free
			c.genBlk.WrongPathBlock(c.wpScratch[:k], c.wpPC)
		} else {
			for i := 0; i < k; i++ {
				//rarlint:allow hotalloc generator dispatch is an interface call; the generators are allocation-free
				c.gen.WrongPath(&c.wpScratch[i], c.wpPC+uint64(i)*isa.InstBytes)
			}
		}
		for i := 0; i < k; i++ {
			u := c.newUop()
			u.inst = c.wpScratch[i]
			u.frontReadyAt = c.cycle + uint64(c.cfg.FrontEndDepth)
			c.frontQ.push(u)
			c.s.WrongPathFetched++
			c.s.TotalFetched++
		}
		c.wpPC += uint64(k) * isa.InstBytes
		if c.wpSynthetic > 0 {
			c.wpSynthetic -= k
		}
		n += k
	}
}

// clearWrongPath resets all off-path fetch state (recovery, flush,
// runahead exit).
func (c *Core) clearWrongPath() {
	c.wrongPath = false
	c.wpSynthetic = 0
}

// newUop takes a fresh uop from the pool with operand fields initialised
// to "absent".
func (c *Core) newUop() *uop {
	u := c.pool.get()
	c.seq++
	u.seq = c.seq
	u.src = [2]int16{-1, -1}
	u.dest, u.prevDest = -1, -1
	u.robIdx = -1
	u.bpSnap = -1
	return u
}

// allocBpSnap reserves a snapshot-arena slot for a mispredicted branch.
//
//rarlint:hot
func (c *Core) allocBpSnap() int32 {
	if n := len(c.bpSnapFree); n > 0 {
		idx := c.bpSnapFree[n-1]
		c.bpSnapFree = c.bpSnapFree[:n-1]
		return idx
	}
	c.bpSnapArena = append(c.bpSnapArena, branch.Snapshot{})
	return int32(len(c.bpSnapArena) - 1)
}

// clearFrontQ squashes every instruction still in the front-end pipe.
func (c *Core) clearFrontQ() {
	for c.frontQ.len() > 0 {
		u := c.frontQ.popFront()
		u.state = uopDead
		c.release(u)
	}
}
