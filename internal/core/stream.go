package core

import (
	"rarsim/internal/isa"
	"rarsim/internal/trace"
)

// streamBuf buffers the correct-path dynamic instruction stream between the
// workload generator and the front-end, with rewind support.
//
// The front-end reads instructions at a cursor; squash recovery (branch
// misprediction repair, runahead exit, Flushing) rewinds the cursor to an
// earlier index so the same dynamic instructions are re-fetched — exactly
// the re-fetch that real hardware performs. Commit releases entries that
// can never be re-fetched again.
type streamBuf struct {
	gen  trace.Source
	buf  []isa.Inst
	base uint64 // global index of buf[0]
	cur  uint64 // global index of the next instruction to fetch
	// scratch receives each generated instruction: passing a local's
	// address through the trace.Source interface would force that local
	// to the heap on every generated instruction.
	scratch isa.Inst
}

func newStreamBuf(gen trace.Source) *streamBuf {
	return &streamBuf{gen: gen}
}

// next returns the instruction at the cursor along with its global index,
// and advances the cursor.
func (s *streamBuf) next() (isa.Inst, uint64) {
	idx := s.cur
	in := *s.at(idx)
	s.cur++
	return in, idx
}

// peek returns the instruction at the cursor without advancing.
func (s *streamBuf) peek() *isa.Inst { return s.at(s.cur) }

// at returns the instruction at global index idx, generating as needed.
// idx must be >= the release watermark.
func (s *streamBuf) at(idx uint64) *isa.Inst {
	if idx < s.base {
		panic("core: stream rewind past released instructions")
	}
	for idx >= s.base+uint64(len(s.buf)) {
		//rarlint:allow hotalloc generator dispatch is an interface call; the generators are allocation-free
		s.gen.Next(&s.scratch)
		s.buf = append(s.buf, s.scratch)
	}
	return &s.buf[idx-s.base]
}

// cursor returns the current fetch position.
func (s *streamBuf) cursor() uint64 { return s.cur }

// rewind moves the fetch position back to global index idx.
func (s *streamBuf) rewind(idx uint64) {
	if idx < s.base {
		panic("core: stream rewind past released instructions")
	}
	if idx > s.cur {
		panic("core: stream rewind forward")
	}
	s.cur = idx
}

// release discards instructions with global index < idx; they have
// committed and can never be re-fetched.
func (s *streamBuf) release(idx uint64) {
	if idx <= s.base {
		return
	}
	drop := idx - s.base
	if drop > uint64(len(s.buf)) {
		drop = uint64(len(s.buf))
	}
	// Compact occasionally rather than on every commit.
	if drop >= 1024 {
		n := copy(s.buf, s.buf[drop:])
		s.buf = s.buf[:n]
		s.base += drop
	}
}
