package core

import (
	"rarsim/internal/isa"
	"rarsim/internal/trace"
)

// streamBuf buffers the correct-path dynamic instruction stream between the
// workload generator and the front-end, with rewind support.
//
// The front-end reads instructions at a cursor; squash recovery (branch
// misprediction repair, runahead exit, Flushing) rewinds the cursor to an
// earlier index so the same dynamic instructions are re-fetched — exactly
// the re-fetch that real hardware performs. Commit releases entries that
// can never be re-fetched again.
type streamBuf struct {
	gen trace.Source
	// blk is gen's batch face when it has one (see trace.BlockSource):
	// refills then synthesise a whole block of instructions straight into
	// buf with one call instead of one virtual dispatch per instruction.
	blk trace.BlockSource
	buf []isa.Inst //rarlint:quiescent fetch stream window: refilled by stage-driven fetch, idle across a skip
	//rarlint:quiescent fetch stream window: refilled by stage-driven fetch, idle across a skip
	base uint64 // global index of buf[0]
	//rarlint:quiescent fetch stream cursor: advances only when stage-driven fetch consumes
	cur uint64 // global index of the next instruction to fetch
	// refill is the block size per batched refill. Generating ahead of the
	// cursor is safe: the correct-path stream is a pure deterministic
	// sequence, so *when* an instruction is synthesised can never change
	// *what* it is — the buffer contents are byte-identical to scalar,
	// one-at-a-time generation.
	refill int
	// scratch receives each generated instruction on the scalar fallback
	// path: passing a local's address through the trace.Source interface
	// would force that local to the heap on every generated instruction.
	scratch isa.Inst
}

// streamRefillBlock is the default batched-refill block size.
const streamRefillBlock = 64

func newStreamBuf(gen trace.Source) *streamBuf {
	s := &streamBuf{gen: gen, refill: streamRefillBlock}
	if b, ok := gen.(trace.BlockSource); ok {
		s.blk = b
	}
	return s
}

// next returns the instruction at the cursor along with its global index,
// and advances the cursor.
func (s *streamBuf) next() (isa.Inst, uint64) {
	idx := s.cur
	in := *s.at(idx)
	s.cur++
	return in, idx
}

// peek returns the instruction at the cursor without advancing.
func (s *streamBuf) peek() *isa.Inst { return s.at(s.cur) }

// at returns the instruction at global index idx, generating as needed.
// idx must be >= the release watermark.
//
//rarlint:hot
func (s *streamBuf) at(idx uint64) *isa.Inst {
	if idx < s.base {
		panic("core: stream rewind past released instructions")
	}
	for idx >= s.base+uint64(len(s.buf)) {
		s.fill()
	}
	return &s.buf[idx-s.base]
}

// fill extends buf by one refill block when the generator has a batch face,
// or by a single instruction on the scalar fallback path. The buffer's
// capacity quickly reaches a steady-state high-water mark (release keeps
// the live window bounded by in-flight instructions plus one refill block),
// after which refills run allocation-free.
//
//rarlint:hot
func (s *streamBuf) fill() {
	if s.blk == nil {
		//rarlint:allow hotalloc generator dispatch is an interface call; the generators are allocation-free
		s.gen.Next(&s.scratch)
		s.buf = append(s.buf, s.scratch)
		return
	}
	n := len(s.buf)
	if cap(s.buf)-n < s.refill {
		//rarlint:allow hotalloc high-water capacity growth only; steady state appends in place
		grown := make([]isa.Inst, n, 2*cap(s.buf)+s.refill)
		copy(grown, s.buf)
		s.buf = grown
	}
	s.buf = s.buf[:n+s.refill]
	//rarlint:allow hotalloc block-source dispatch is an interface call; the generators are allocation-free
	s.blk.NextBlock(s.buf[n : n+s.refill])
}

// cursor returns the current fetch position.
func (s *streamBuf) cursor() uint64 { return s.cur }

// rewind moves the fetch position back to global index idx.
func (s *streamBuf) rewind(idx uint64) {
	if idx < s.base {
		panic("core: stream rewind past released instructions")
	}
	if idx > s.cur {
		panic("core: stream rewind forward")
	}
	s.cur = idx
}

// release discards instructions with global index < idx; they have
// committed and can never be re-fetched.
func (s *streamBuf) release(idx uint64) {
	if idx <= s.base {
		return
	}
	drop := idx - s.base
	if drop > uint64(len(s.buf)) {
		drop = uint64(len(s.buf))
	}
	// Compact occasionally rather than on every commit.
	if drop >= 1024 {
		n := copy(s.buf, s.buf[drop:])
		s.buf = s.buf[:n]
		s.base += drop
	}
}
