package core

import (
	"fmt"

	"rarsim/internal/ace"
	"rarsim/internal/branch"
	"rarsim/internal/config"
	"rarsim/internal/isa"
	"rarsim/internal/mem"
	"rarsim/internal/trace"
)

// mode is the core's execution mode.
type mode uint8

const (
	modeNormal mode = iota
	modeRunahead
)

// fuPool indices.
const (
	fuIntAdd = iota
	fuIntMult
	fuIntDiv
	fuFpAdd
	fuFpMult
	fuFpDiv
	numFuPools
)

// Core is one simulated out-of-order processor running one workload under
// one scheme. Create with New, run with Run. A Core is single-use.
type Core struct {
	cfg    config.Core
	scheme config.Scheme
	bits   ace.Bits

	gen trace.Source
	// genBlk is gen's batch face when it has one (trace.BlockSource);
	// nil forces the scalar per-instruction path (A/B equivalence runs
	// wrap the source in trace.ScalarOnly to get exactly that).
	genBlk trace.BlockSource
	stream *streamBuf
	bp     *branch.Predictor
	btb    *branch.BTB
	hier   *mem.Hierarchy
	ledger *ace.Ledger
	regs   *regFile
	pool   uopPool

	//rarlint:nscaled the skip target itself: bulkAdvance jumps it to the bounded next-event cycle
	cycle uint64 //rarlint:unit cycles
	seq   uint64 //rarlint:quiescent uop numbering source: advances only when stage-driven fetch creates uops

	// Front-end.
	frontQ          frontRing
	fetchStallUntil uint64 //rarlint:unit cycles
	wrongPath       bool   //rarlint:quiescent wrong-path fetch latch: only stage-driven fetch consults it
	wpPC            uint64 //rarlint:quiescent wrong-path fetch cursor: only stage-driven fetch consults it
	// wpScratch receives one fetch group's batch of synthesised
	// wrong-path instructions (fetchWrongPathGroup); sized Width.
	wpScratch []isa.Inst
	// wpSynthetic counts synthesised wrong-path instructions still to
	// fetch: >0 for a bounded hammock body, -1 for a non-reconvergent
	// path, 0 while off-path means fetch reconverged onto the stream.
	wpSynthetic int //rarlint:quiescent wrong-path fetch cursor: only stage-driven fetch consults it

	// Back-end.
	rob      []*uop
	robHead  int
	robCount int
	// iq is the issue queue in dispatch (seq) order. Issued entries are
	// left behind as seq-guarded tombstones rather than compacted out
	// every cycle — an issued uop can commit and be pool-recycled while
	// its slot lingers, and uopDispatched is the uop zero state, so only
	// the seq guard distinguishes a waiting entry from a stale one.
	// iqLive counts the live waiting entries (the architectural IQ
	// occupancy — capacity checks use it) and iqTomb the tombstones.
	// compactIQ restores the fully compacted layout — exactly the slice a
	// per-cycle-compacting implementation maintains — before any observer
	// (audit, fault injection) looks at slot positions.
	iq     []waiter //rarlint:quiescent queue membership only: issueability is covered via readyList, fill and FU events
	iqLive int
	iqTomb int //rarlint:quiescent issue-queue compaction bookkeeping: consumed by the next stage-driven sweep
	// readyList holds the issue candidates in seq order: every live
	// dispatched uop whose notReady filter has hit zero. Entries are
	// seq-guarded like waiter registrations — issued, squashed or recycled
	// uops go stale and are dropped lazily as issueStage walks the list —
	// so issueStage and the next-event probe scan a handful of candidates
	// instead of the whole queue.
	//rarlint:survives seq-guarded: entries registered in runahead are inert after the squash recycles their uops
	readyList []waiter
	lqCount   int
	sqList    []*uop // in-flight stores, age order, for forwarding
	// Completion wheel: in-flight executions bucketed by completion cycle
	// (a calendar queue), so completeStage touches exactly the uops due
	// this cycle instead of scanning and compacting the whole in-flight
	// set every cycle. Bucket i at cycle t holds entries due at the unique
	// cycle ≡ i (mod cwSize) within (t, t+cwSize]; completions further out
	// (DRAM fills) wait in cwOverflow and migrate into buckets when the
	// clock comes within a window of them. Entries are seq-guarded like
	// waiter registrations — squashed or recycled uops go stale in place
	// and are dropped when their bucket drains, which is why none of this
	// needs rewinding at a flush or runahead exit.
	cwBuckets  [cwSize][]waiter
	cwOverflow []cwEntry //rarlint:quiescent completion-wheel spill: its earliest deadline is covered separately via cwOvMin
	// cwOvMin is the earliest doneAt in cwOverflow (NoEventCycle when
	// empty); it may go stale-low via squashed entries, which costs a
	// redundant migration scan, never a missed completion.
	cwOvMin uint64 //rarlint:unit cycles
	// cwCount is the number of wheel entries, live or stale; zero means
	// completeStage has nothing to do at all.
	cwCount int

	// waiters holds, per physical register, the issue-queue uops waiting
	// for it to become ready (see backend.go: enqueueIQ/markReady). Each
	// entry is seq-guarded: uop records are pooled, so an entry only acts
	// on the incarnation that registered it.
	//rarlint:survives seq-guarded: entries registered in runahead are inert after the squash recycles their uops
	waiters [][]waiter //rarlint:quiescent wakeup lists: drained by stage-driven completion, whose timing fill and FU events cover

	// bpSnapArena backs the history snapshots of in-flight mispredicted
	// branches, indexed by uop.bpSnap. Only mispredicts allocate a slot
	// (a handful live at once), so the ~200-byte Snapshot stays out of
	// the uop record. Slots recycle through bpSnapFree when the owning
	// uop is released; a freed slot's content is dead, so neither list
	// needs restoring at runahead exit.
	bpSnapArena []branch.Snapshot //rarlint:quiescent snapshot allocator arena: allocation scratch with no timing content
	bpSnapFree  []int32           //rarlint:quiescent snapshot allocator free list: allocation scratch with no timing content

	// doneScratch is completeStage's reusable completion buffer.
	doneScratch []*uop //rarlint:quiescent per-cycle scratch buffer: dead between cycles
	// squashScratch is the squash paths' reusable victim buffer: squashes
	// happen on every mispredict, far too often to allocate a fresh slice.
	squashScratch []*uop //rarlint:quiescent per-cycle scratch buffer: dead between cycles

	fuPools [numFuPools]config.FUPool
	//rarlint:quiescent per-cycle FU issue tally: recomputed from zero each busy cycle
	fuIssued   [numFuPools]int    // pipelined pools: ops issued this cycle
	fuBusyTill [numFuPools]uint64 //rarlint:unit cycles -- unpipelined pools: next free cycle

	storeBuf []uint64 // post-commit store addresses awaiting L1D write

	// ROB-head blocking tracking.
	headSeq uint64 //rarlint:nscaled watchdog bookkeeping: refreshed to the value n blocked ticks would leave
	//rarlint:nscaled watchdog bookkeeping: refreshed to the value n blocked ticks would leave
	headSince uint64 //rarlint:unit cycles

	// Runahead machinery.
	mode       mode
	blocking   *uop // the load that triggered runahead
	prdq       []*uop
	sstT       *sst
	prod       *producers
	lastWriter [isa.NumRegs]uint64 //rarlint:quiescent store-set training bookkeeping: consulted only during stage-driven dispatch
	raDiverged bool                //rarlint:quiescent divergence latch: read only on stage-driven runahead paths
	chk        checkpoint

	// SST training dedup: last PC trained, to avoid rewalking hot loads.
	lastTrainedPC uint64 //rarlint:quiescent trainer dedup latch: no timing content

	// lastFlushSeq prevents the FLUSH scheme from re-flushing for the
	// same blocking load every cycle.
	lastFlushSeq uint64

	// commitBarrier caps commits so the run stops exactly at the warmup
	// boundary and at the requested instruction count (commit is up to
	// Width wide per cycle).
	commitBarrier uint64

	// Fault-injection campaign state (inject.go).
	injSamples []InjectSample
	injNext    int

	// auditEvery enables the invariant checker (audit.go) every N cycles.
	auditEvery uint64

	// draining disables fetch while the pipeline empties between
	// detailed samples (sample.go).
	draining bool

	// ffInstructions counts instructions skipped functionally.
	ffInstructions uint64

	// progress increments whenever a stage moves machine state forward
	// (fetch, dispatch, issue, complete, commit, store drain, mode
	// transitions). RunWarm consults it to skip the next-event probe on
	// busy cycles: a cycle that made progress is near-certainly followed
	// by a busy cycle, so probing it is pure overhead. The guard is a
	// heuristic with a one-sided failure mode — a missed bump just runs
	// the probe (status quo), an over-bump costs at most one extra ticked
	// cycle per stall window — so it can never change results.
	progress uint64 //rarlint:quiescent watchdog progress latch: consulted by the run loop, never by skip bounds

	// Stall fast-forward (ff.go): noFF disables the quiescent-cycle skip
	// (its zero value keeps the skip on); ffSkipped counts cycles advanced
	// in bulk. Both are diagnostics outside Stats — results are identical
	// either way, by the equivalence contract.
	noFF      bool
	ffSkipped uint64 //rarlint:nscaled fast-forward telemetry: counts exactly the cycles the skip replaced

	s Stats
}

// checkpoint is the state saved at runahead (or flush) entry. Exit
// *consumes* the checkpoint (restoreRAT, bp.Restore, stream.rewind read
// from it) rather than clearing it; the stale copy left behind is
// architecturally dead until the next enterRunahead overwrites it.
type checkpoint struct {
	//rarlint:quiescent checkpoint payload: consumed at runahead exit, which modeNextEvent bounds via the mode-transition events
	rat [isa.NumRegs]int16 //rarlint:survives consumed at exit, overwritten by the next entry
	//rarlint:quiescent checkpoint payload: consumed at runahead exit, which modeNextEvent bounds via the mode-transition events
	bpSnap branch.Snapshot //rarlint:survives consumed at exit, overwritten by the next entry
	//rarlint:survives consumed at exit, overwritten by the next entry
	//rarlint:quiescent checkpoint payload: consumed at runahead exit, which modeNextEvent bounds via the mode-transition events
	resumeCursor uint64 // fetch cursor to restore on a PRE-style exit
	//rarlint:quiescent checkpoint payload: consumed at runahead exit, which modeNextEvent bounds via the mode-transition events
	wrongPath bool //rarlint:survives consumed at exit, overwritten by the next entry
	//rarlint:quiescent checkpoint payload: consumed at runahead exit, which modeNextEvent bounds via the mode-transition events
	wpPC uint64 //rarlint:survives consumed at exit, overwritten by the next entry
	//rarlint:quiescent checkpoint payload: consumed at runahead exit, which modeNextEvent bounds via the mode-transition events
	wpSynthetic int //rarlint:survives consumed at exit, overwritten by the next entry
}

// Stats is the result of one simulation run.
type Stats struct {
	Benchmark string
	Scheme    string
	CoreName  string

	Cycles uint64 //rarlint:unit cycles
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	Committed uint64 //rarlint:unit insts

	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	CommittedLoads uint64 //rarlint:unit insts
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	CommittedStores uint64 //rarlint:unit insts
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	CommittedBranches uint64 //rarlint:unit insts
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	Mispredicts      uint64 //rarlint:unit insts
	WrongPathFetched uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions

	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	RunaheadEntries uint64 //rarlint:survives statistics counter: runahead activity is metered, not squashed
	//rarlint:nscaled mode-cycle counter: scales linearly with the skipped span
	RunaheadCycles uint64 //rarlint:unit cycles
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	RunaheadExecuted uint64 //rarlint:unit uops -- executed in runahead mode
	//rarlint:survives statistics counter: runahead activity is metered, not squashed
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	RunaheadDropped uint64 //rarlint:unit uops -- filtered or INV-dropped in runahead
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	Flushes uint64 // FLUSH-scheme pipeline flushes

	// Activity counters for energy accounting: everything that consumed
	// pipeline bandwidth, including wrong-path, runahead and re-fetched
	// work that never (or repeatedly) committed.
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	TotalFetched uint64 //rarlint:unit uops
	//rarlint:survives statistics counter: energy accounting meters runahead dispatches by design
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	TotalDispatched uint64 //rarlint:unit uops
	//rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	TotalIssued uint64 //rarlint:unit uops

	//rarlint:nscaled blocked-cycle counter: advances by n, matching n per-cycle ticks
	HeadBlockedCycles uint64 //rarlint:unit cycles
	//rarlint:nscaled blocked-cycle counter: advances by n, matching n per-cycle ticks
	FullStallCycles uint64 //rarlint:unit cycles

	// CommitHash is an FNV-1a hash over the committed instruction
	// sequence (PC and class, in commit order) for the whole run,
	// including warmup. Every scheme must commit the identical dynamic
	// stream — speculation of any kind never changes architectural
	// execution — so the hash must agree across schemes for the same
	// (benchmark, seed, instruction count).
	CommitHash uint64 //rarlint:quiescent commit-order digest: accumulated at commit, consulted only by the A/B equivalence check

	ABC            [ace.NumStructures]uint64 //rarlint:unit bitcycles
	TotalABC       uint64                    //rarlint:unit bitcycles
	HeadBlockedABC uint64                    //rarlint:unit bitcycles
	FullStallABC   uint64                    //rarlint:unit bitcycles
	TotalBits      uint64                    //rarlint:unit bits

	Mem mem.Stats
}

// IPC returns committed instructions per cycle.
//
//rarlint:pure
//rarlint:unit insts/cycles
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MPKI returns demand-load LLC misses per thousand committed instructions.
//
//rarlint:pure
//rarlint:unit uops/insts
func (s Stats) MPKI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return 1000 * float64(s.Mem.DemandLLCMisses) / float64(s.Committed)
}

// AVF returns the run's architectural vulnerability factor (Equation 2).
//
//rarlint:pure
//rarlint:unit 1
func (s Stats) AVF() float64 {
	return ace.AVF(s.TotalABC, s.TotalBits, s.Cycles)
}

// MispredictRate returns mispredictions per committed branch.
//
//rarlint:pure
//rarlint:unit 1
func (s Stats) MispredictRate() float64 {
	if s.CommittedBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CommittedBranches)
}

// New builds a core for the given configuration, scheme and synthetic
// workload.
func New(cfg config.Core, scheme config.Scheme, bench trace.Benchmark, seed uint64) *Core {
	return NewFromSource(cfg, scheme, bench.Name, trace.New(bench, seed))
}

// NewFromSource builds a core running an arbitrary instruction source —
// a recorded trace file, or any other Source implementation.
func NewFromSource(cfg config.Core, scheme config.Scheme, name string, gen trace.Source) *Core {
	return NewWithHierarchy(cfg, scheme, name, gen, mem.NewHierarchy(cfg.Mem))
}

// NewWithHierarchy builds a core on an existing memory hierarchy — the
// multicore driver passes per-core hierarchies that share an LLC and DRAM
// (mem.NewHierarchyWithShared).
func NewWithHierarchy(cfg config.Core, scheme config.Scheme, name string, gen trace.Source, h *mem.Hierarchy) *Core {
	c := &Core{
		cfg:     cfg,
		scheme:  scheme,
		bits:    ace.DefaultBits(),
		gen:     gen,
		stream:  newStreamBuf(gen),
		bp:      branch.NewPredictor(),
		btb:     branch.NewBTB(12),
		hier:    h,
		ledger:  ace.NewLedger(),
		regs:    newRegFile(cfg.IntRegs, cfg.FpRegs),
		rob:     make([]*uop, cfg.ROB),
		waiters: make([][]waiter, cfg.IntRegs+cfg.FpRegs),
		sstT:    newSST(cfg.SST),
		prod:    newProducers(12),
	}
	if b, ok := gen.(trace.BlockSource); ok {
		c.genBlk = b
	}
	c.cwOvMin = NoEventCycle
	// Pre-size the completion-wheel buckets out of one contiguous backing
	// array. Unlike a single flat list, 256 independent slices each chase
	// their own high-water mark — without preallocation, rare
	// (bucket, depth) combinations keep allocating far into steady state.
	cwBacking := make([]waiter, cwSize*cwBucketCap)
	for i := range c.cwBuckets {
		c.cwBuckets[i] = cwBacking[i*cwBucketCap : i*cwBucketCap : (i+1)*cwBucketCap]
	}
	c.cwOverflow = make([]cwEntry, 0, cfg.ROB)
	// Fetch checks the soft cap before a group and then pushes up to one
	// full group, so frontQCap()+Width bounds occupancy.
	c.frontQ = newFrontRing(c.frontQCap() + cfg.Width)
	c.wpScratch = make([]isa.Inst, cfg.Width)
	// Pre-size every per-register waiter list out of one contiguous
	// backing array, so the lists stop allocating on the hot path as rare
	// combinations set new high-water marks. The per-register capacity is
	// deliberately small: sizing every list for the 2*IQ worst case put
	// registers ~3KB apart — a megabyte of backing whose appends missed
	// cache on nearly every registration. Sixteen entries cover the
	// common case with the whole backing L2-resident; the rare register
	// that collects more waiters grows its own slice once and keeps it.
	nRegs := cfg.IntRegs + cfg.FpRegs
	const wcap = 16
	backing := make([]waiter, nRegs*wcap)
	for i := range c.waiters {
		c.waiters[i] = backing[i*wcap : i*wcap : (i+1)*wcap]
	}
	c.fuPools[fuIntAdd] = cfg.IntAdd
	c.fuPools[fuIntMult] = cfg.IntMult
	c.fuPools[fuIntDiv] = cfg.IntDiv
	c.fuPools[fuFpAdd] = cfg.FpAdd
	c.fuPools[fuFpMult] = cfg.FpMult
	c.fuPools[fuFpDiv] = cfg.FpDiv

	c.s.Benchmark = name
	c.s.Scheme = scheme.Name
	c.s.CoreName = cfg.Name
	c.s.TotalBits = ace.TotalBits(c.bits, ace.Sizes{
		ROB: cfg.ROB, IQ: cfg.IQ, LQ: cfg.LQ, SQ: cfg.SQ,
		IntRegs: cfg.IntRegs, FpRegs: cfg.FpRegs,
		IntFUs: cfg.IntFUCount(), FpFUs: cfg.FpFUCount(),
	})
	return c
}

// watchdogWindow is the commit-progress deadline: if no instruction commits
// for this many *ticked* cycles — loop iterations actually simulated, not
// cycles skipped in bulk by the stall fast-forward — the simulation reports
// a deadlock. Counting ticks rather than wall cycles keeps the two watchdog
// properties independent of fast-forward: a legitimate stall longer than
// the window (e.g. a pathologically slow DRAM) collapses into a handful of
// ticks and survives, while a genuine deadlock generates no events, is
// never skipped, and accumulates ticks until the watchdog fires.
const watchdogWindow = 500_000

// Run simulates until instructions have committed and returns the run's
// statistics. It returns an error if the pipeline deadlocks (a model bug,
// not an expected outcome).
//
//rarlint:hot
func (c *Core) Run(instructions uint64) (Stats, error) {
	return c.RunWarm(0, instructions)
}

// RunWarm simulates warmup+measured further committed instructions and
// returns statistics covering only the measured portion — the equivalent
// of the paper's warmed-up SimPoint measurement. Caches, predictors and
// the SST stay trained across the boundary; only the counters reset.
// Targets are relative to instructions already committed, so RunWarm can
// be called repeatedly (see RunSampled).
//
//rarlint:hot
func (c *Core) RunWarm(warmup, measured uint64) (Stats, error) {
	base := c.s.Committed
	warmTarget := base + warmup
	total := base + warmup + measured
	c.commitBarrier = total
	if warmup > 0 {
		c.commitBarrier = warmTarget
	}
	var warm Stats
	warmTaken := false
	if warmup == 0 {
		c.finalizeStats()
		warm = c.s
		warmTaken = true
	}
	lastCommit := base
	var ticked, lastCommitTick uint64
	// progMark trails c.progress by one cycle: when a cycle moved machine
	// state, the next cycle is near-certainly busy and the next-event probe
	// is skipped outright. Compute-bound runs make progress almost every
	// cycle, so they stop paying for the fast-forward they never use; the
	// first quiescent cycle re-arms the probe. Starting unequal to
	// c.progress makes the first iteration skip the probe (it cannot know
	// quiescence yet anyway).
	progMark := c.progress - 1
	for c.s.Committed < total {
		c.cycle++
		c.ledger.SetCycle(c.cycle)
		if c.injNext < len(c.injSamples) {
			c.processInjections()
		}
		c.tickBlocked()
		c.completeStage()
		c.commitStage()
		c.modeStage()
		c.issueStage()
		c.dispatchStage()
		c.fetchStage()
		c.drainStores()

		if c.auditEvery > 0 && c.cycle%c.auditEvery == 0 {
			c.audit() //rarlint:allow hotalloc audits are opt-in debugging, off in production sweeps
		}
		if !warmTaken && c.s.Committed >= warmTarget {
			c.finalizeStats()
			warm = c.s
			warmTaken = true
			c.commitBarrier = total
		}
		ticked++
		if c.s.Committed != lastCommit {
			lastCommit = c.s.Committed
			lastCommitTick = ticked
		} else if ticked-lastCommitTick > watchdogWindow {
			//rarlint:allow hotalloc fatal deadlock exit, never taken on a healthy run
			return c.s, fmt.Errorf(
				"core: deadlock: no commit for %d ticked cycles at cycle %d (core=%s bench=%s scheme=%s rob=%d iq=%d frontQ=%d mode=%d ffSkipped=%d)",
				watchdogWindow, c.cycle, c.s.CoreName, c.s.Benchmark, c.s.Scheme,
				c.robCount, c.iqLive, c.frontQ.len(), c.mode, c.ffSkipped)
		}
		if !c.noFF && c.s.Committed < total {
			if c.progress == progMark {
				c.skipStall()
			} else {
				progMark = c.progress
			}
		}
	}
	c.finalizeStats()
	return c.s.sub(warm), nil
}

// Step advances the core by exactly one cycle. Run/RunWarm drive it
// internally; multicore systems interleave Step calls across cores so
// shared-LLC and DRAM contention resolves in lockstep.
func (c *Core) Step() {
	c.cycle++
	c.ledger.SetCycle(c.cycle)
	if c.injNext < len(c.injSamples) {
		c.processInjections()
	}
	if c.auditEvery > 0 && c.cycle%c.auditEvery == 0 {
		c.audit()
	}
	c.tickBlocked()
	c.completeStage()
	c.commitStage()
	c.modeStage()
	c.issueStage()
	c.dispatchStage()
	if !c.draining {
		c.fetchStage()
	}
	c.drainStores()
}

// Committed returns the number of instructions committed so far.
func (c *Core) Committed() uint64 { return c.s.Committed }

// Progress returns a counter that advances whenever any pipeline stage
// moves machine state forward. A chip-level driver can compare successive
// values to tell a busy core (progress moved — certainly steppable next
// cycle) from a quiescent one worth probing with NextEventCycle.
func (c *Core) Progress() uint64 { return c.progress }

// Snapshot finalises and returns the current statistics without ending
// the simulation.
func (c *Core) Snapshot() Stats {
	c.finalizeStats()
	return c.s
}

// SetCommitLimit caps further commits at n total committed instructions
// (0 = unlimited). Multicore drivers use it to stop finished cores.
func (c *Core) SetCommitLimit(n uint64) { c.commitBarrier = n }

// wholeRunStatsFields lists the numeric Stats fields that describe the
// whole run (or its static configuration) rather than accumulating
// cycle-by-cycle, and that sub therefore deliberately does NOT subtract:
//
//   - CommitHash: the architectural commit-stream fingerprint. A hash is
//     not a counter — "measured minus warmup" has no meaning for it, and
//     cross-scheme determinism checks want the whole-run value.
//   - TotalBits: the bit capacity of the tracked structures, fixed at
//     construction. Subtracting it would zero the AVF denominator.
//
// TestStatsSubCoversAllFields walks Stats by reflection and fails if any
// numeric field is neither subtracted by sub nor listed here — so adding a
// counter to Stats (or mem.Stats) without updating sub cannot silently
// leak warmup into measured results again.
var wholeRunStatsFields = map[string]bool{
	"CommitHash": true,
	"TotalBits":  true,
}

// sub returns the counter-wise difference s-w, for warmup exclusion.
// Fields in wholeRunStatsFields are deliberately not subtracted.
func (s Stats) sub(w Stats) Stats {
	out := s
	out.Cycles -= w.Cycles
	out.Committed -= w.Committed
	out.CommittedLoads -= w.CommittedLoads
	out.CommittedStores -= w.CommittedStores
	out.CommittedBranches -= w.CommittedBranches
	out.Mispredicts -= w.Mispredicts
	out.WrongPathFetched -= w.WrongPathFetched
	out.RunaheadEntries -= w.RunaheadEntries
	out.RunaheadCycles -= w.RunaheadCycles
	out.RunaheadExecuted -= w.RunaheadExecuted
	out.RunaheadDropped -= w.RunaheadDropped
	out.Flushes -= w.Flushes
	out.TotalFetched -= w.TotalFetched
	out.TotalDispatched -= w.TotalDispatched
	out.TotalIssued -= w.TotalIssued
	out.HeadBlockedCycles -= w.HeadBlockedCycles
	out.FullStallCycles -= w.FullStallCycles
	for i := range out.ABC {
		out.ABC[i] -= w.ABC[i]
	}
	out.TotalABC -= w.TotalABC
	out.HeadBlockedABC -= w.HeadBlockedABC
	out.FullStallABC -= w.FullStallABC
	out.Mem.DemandLoads -= w.Mem.DemandLoads
	out.Mem.DemandLLCMisses -= w.Mem.DemandLLCMisses
	out.Mem.LLCMissCycles -= w.Mem.LLCMissCycles
	out.Mem.LLCBusyCycles -= w.Mem.LLCBusyCycles
	out.Mem.DRAMReads -= w.Mem.DRAMReads
	out.Mem.DRAMWrites -= w.Mem.DRAMWrites
	out.Mem.PrefetchIssued -= w.Mem.PrefetchIssued
	out.Mem.MSHRFullStalls -= w.Mem.MSHRFullStalls
	return out
}

// tickBlocked advances the Figure 5 attribution counters and the ROB-head
// countdown timer state.
func (c *Core) tickBlocked() {
	head := c.robHeadUop()
	headBlocked := head != nil && head.isLoad() && head.state == uopIssued && head.longLat
	fullStall := headBlocked && c.robCount == c.cfg.ROB
	c.ledger.TickBlocked(headBlocked, fullStall)
	if headBlocked {
		c.s.HeadBlockedCycles++
	}
	if fullStall {
		c.s.FullStallCycles++
	}
	if c.mode == modeRunahead {
		c.s.RunaheadCycles++
	}

	if head == nil {
		c.headSeq, c.headSince = 0, c.cycle
		return
	}
	if head.seq != c.headSeq {
		c.headSeq = head.seq
		c.headSince = c.cycle
	}
}

//rarlint:pure
func (c *Core) robHeadUop() *uop {
	if c.robCount == 0 {
		return nil
	}
	return c.rob[c.robHead]
}

func (c *Core) robTailIdx() int {
	// Both operands are < ROB, so one conditional subtraction replaces the
	// integer division the compiler would emit for % (ROB is not a power
	// of two, and this runs for every dispatched uop).
	if t := c.robHead + c.robCount; t < c.cfg.ROB {
		return t
	} else {
		return t - c.cfg.ROB
	}
}

func (c *Core) finalizeStats() {
	c.s.Cycles = c.cycle
	c.s.ABC = c.ledger.ABC()
	c.s.TotalABC = c.ledger.TotalABC()
	c.s.HeadBlockedABC = c.ledger.HeadBlockedABC()
	c.s.FullStallABC = c.ledger.FullStallABC()
	c.s.Mem = c.hier.Snapshot()
}

// CycleCount returns the total cycles simulated so far (including any
// warmup portion excluded from Stats).
func (c *Core) CycleCount() uint64 { return c.cycle }

// EnableTimeline turns on windowed ACE accounting: the ledger buckets
// committed ACE bit-cycles into windowCycles-wide windows, for AVF
// phase-behaviour analysis. Call before Run; read with Timeline.
func (c *Core) EnableTimeline(windowCycles uint64) {
	c.ledger.EnableTimeline(windowCycles)
}

// Timeline returns the windowed ABC series (nil unless EnableTimeline was
// called).
func (c *Core) Timeline() []ace.Window { return c.ledger.Timeline() }

// Hierarchy exposes the memory system (tests and tools).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Predictor exposes the branch predictor (tests and tools).
func (c *Core) Predictor() *branch.Predictor { return c.bp }
