// Package core implements the simulated out-of-order processor: a
// cycle-level structural model of the paper's baseline core (Table II) —
// fetch through commit, with wrong-path execution, a TAGE front-end, and a
// full memory hierarchy behind the load/store unit — plus every evaluated
// mechanism: Weaver-style Flushing, traditional runahead (TR), Precise
// Runahead Execution (PRE), and the paper's Reliability-Aware Runahead
// (RAR) with its flush-at-exit and early-start optimisations.
//
// ACE-bit accounting (package ace) is woven through the pipeline: every
// structure entry tentatively accumulates a vulnerability window per the
// paper's Figure 2 and the window is reported to the ledger only if the
// instruction commits. Squashes of any kind — wrong-path repair, runahead
// exit flush, Flushing — discard the windows, making that state un-ACE.
package core

import (
	"rarsim/internal/branch"
	"rarsim/internal/isa"
)

// uopState tracks a micro-op's progress through the back-end.
type uopState uint8

const (
	uopDispatched uopState = iota // in IQ (or waiting), not yet issued
	uopIssued                     // executing on an FU / memory access in flight
	uopCompleted                  // result produced, awaiting commit
	uopDead                       // squashed; awaiting lazy removal
)

// uop is one in-flight micro-op. The same record flows through normal and
// runahead mode; runahead uops simply have no ROB entry.
type uop struct {
	inst isa.Inst
	seq  uint64 // global age

	state uopState
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	runahead bool // dispatched during runahead mode
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	inv bool // poisoned: depends on the blocking load's unavailable value

	// Register renaming.
	src [2]int16 // physical sources (-1 = none/ready immediate)
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	dest int16 // physical destination (-1 = none)
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	prevDest int16 // previous mapping of the architectural dest, for rollback
	// notReady counts source registers still awaiting their producer.
	// Maintained event-driven (Core.markReady decrements it when a producer
	// publishes) so the issue stage tests one field instead of re-polling
	// the register file for every queued uop every cycle.
	notReady int8 //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window

	// Position bookkeeping.
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	streamIdx uint64 // index into the correct-path stream (for rewind)
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	robIdx int  // slot in the ROB ring; -1 for runahead uops
	inLQ   bool //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	inSQ   bool //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window

	// Timing.
	frontReadyAt uint64 //rarlint:unit cycles -- the cycle the uop clears the front-end pipe
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	dispatchedAt uint64 //rarlint:unit cycles
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	issuedAt uint64 //rarlint:unit cycles
	doneAt   uint64 //rarlint:unit cycles
	retryAt  uint64 //rarlint:unit cycles -- earliest re-issue attempt after an MSHR stall
	//rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	fuLatency uint64 //rarlint:unit cycles

	// Memory.
	llcMiss   bool // the access missed the LLC
	longLat   bool // LLC miss or a long wait on an in-flight fill
	memIssued bool

	// Branch prediction state. bpSnap indexes the core's snapshot arena
	// (-1 = none): only mispredicted branches carry a history snapshot,
	// and keeping the ~200-byte Snapshot out of line shrinks every uop by
	// ~40% — the pool, the ROB ring and every stage walk touch that much
	// less cache.
	predTaken bool  //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	bpSnap    int32 //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window

	// ACE attribution snapshots (cumulative blocked-cycle counters at
	// window-start events; see ace.Ledger).
	hbAtDispatch, fsAtDispatch uint64 //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	hbAtIssue, fsAtIssue       uint64 //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	hbAtDone, fsAtDone         uint64 //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
	issueValid                 bool   //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window

	// inj holds indices of fault-injection samples tagged onto this uop
	// (see inject.go); resolved at commit or squash.
	inj []int32 //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window

	// bpInfo sits last deliberately: at ~90 bytes it is the fattest field,
	// and only branch uops (a minority) ever touch it — every field the
	// non-branch stage walks read now fits in the first four cache lines
	// instead of straddling the Info blob.
	bpInfo branch.Info //rarlint:quiescent uop-local record: only stage work on the uop consults it, and stages are idle across a skip window
}

func (u *uop) isLoad() bool   { return u.inst.IsLoad() }
func (u *uop) isStore() bool  { return u.inst.IsStore() }
func (u *uop) isBranch() bool { return u.inst.IsBranch() }

// uopPool recycles uop records to keep allocation off the hot path.
type uopPool struct {
	free []*uop //rarlint:quiescent uop allocator free list: allocation scratch with no timing content
}

func (p *uopPool) get() *uop {
	if n := len(p.free); n > 0 {
		u := p.free[n-1]
		p.free = p.free[:n-1]
		u.reset()
		return u
	}
	//rarlint:allow hotalloc pool warm-up only; steady state recycles from free
	return &uop{}
}

// reset clears a recycled uop field by field instead of `*u = uop{}`: the
// full duffzero was a measurable slice of fetch. Two fields may keep
// stale contents because every reader writes them first in the same
// incarnation:
//
//   - inst: assigned at every fetch site before the uop is enqueued;
//   - bpInfo: written by fetch's Predict for every on-path branch, and
//     only ever read for on-path branches (commit-time Update) —
//     wrong-path uops never reach it.
//
// predTaken is NOT exempt: completeUop compares it against the actual
// outcome for every on-path branch, so it must not leak from a previous
// incarnation even transiently. bpSnap (the snapshot-arena index) is
// reset by release when the slot is returned, and newUop re-arms it to
// -1 for the never-pooled path. inj keeps its backing array (length 0 —
// release drains it) so tagged uops stop reallocating.
func (u *uop) reset() {
	u.seq = 0
	u.state = uopDispatched
	u.runahead, u.inv = false, false
	u.src = [2]int16{}
	u.dest, u.prevDest = 0, 0
	u.notReady = 0
	u.streamIdx = 0
	u.robIdx = 0
	u.inLQ, u.inSQ = false, false
	u.frontReadyAt, u.dispatchedAt, u.issuedAt = 0, 0, 0
	u.doneAt, u.retryAt, u.fuLatency = 0, 0, 0
	u.llcMiss, u.longLat, u.memIssued = false, false, false
	u.predTaken = false
	u.hbAtDispatch, u.fsAtDispatch = 0, 0
	u.hbAtIssue, u.fsAtIssue = 0, 0
	u.hbAtDone, u.fsAtDone = 0, 0
	u.issueValid = false
	u.inj = u.inj[:0]
}

func (p *uopPool) put(u *uop) {
	if len(p.free) < 4096 {
		p.free = append(p.free, u)
	}
}
