package core

import "fmt"

// Stall fast-forward: when the core is quiescent — no stage can fetch,
// dispatch, issue, complete, commit or drain a store, and every pending
// event lies strictly in the future — the simulation clock may jump to the
// next event in one step instead of ticking seven no-op stages through
// every dead cycle. On memory-intensive workloads almost all cycles are
// spent inside such windows (the premise of the RAR paper itself), so the
// skip is where the simulator's wall-clock time goes from O(cycles) to
// O(events).
//
// Correctness contract: a run with fast-forward on is *byte-identical* to
// the same run with it off — every Stats field, every CommitHash, every
// figure CSV. The argument (see DESIGN.md §7):
//
//  1. Completeness of the event set. Every state transition the per-cycle
//     stages can make is gated either on current machine state (which, by
//     induction, does not change during a skipped window) or on a cycle
//     comparison against a timestamp that is already fixed when the skip
//     is computed: uop.doneAt (FU latency or the memory hierarchy's
//     DRAM/LLC return time), uop.retryAt (MSHR retry), uop.frontReadyAt
//     (front-end pipe exit), fetchStallUntil (L1I miss, flush or re-steer
//     penalty), fuBusyTill (unpipelined units), headSince+RunaheadTimer
//     (the runahead/FLUSH countdown timer) and blocking.doneAt (runahead
//     exit). nextEventCycle collects the minimum over exactly these, plus
//     a defensive bound from the MSHR file's earliest outstanding fill —
//     every DRAM return time is registered there, so no data arrival can
//     land inside a skipped window unnoticed.
//  2. Per-cycle accounting is a pure integral of constant state. The only
//     work a quiescent cycle performs is tickBlocked: the Figure 5
//     attribution counters and the ACE ledger's cumulative blocked-cycle
//     counters advance by a per-cycle amount fully determined by the
//     (frozen) blocking state, so n cycles collapse into one bulk
//     ledger.Advance plus n-scaled counter additions. Ledger residency
//     windows (ace.Ledger.Add) and timeline buckets are only written at
//     commit, and nothing commits inside a skipped window.
//  3. Exact-cycle obligations clamp the skip. Invariant audits fire every
//     auditEvery cycles and fault-injection samples strike at a precise
//     cycle; the skip never jumps past either — it lands one cycle short
//     so the normal loop executes them on their exact cycle.
//
// The skip runs inside Run/RunWarm; Step itself is never fast-forwarded: a
// single Step call cannot know whether skipping is safe for its caller.
// Instead the multicore driver lifts the same machinery to chip level
// through the exported NextEventCycle/SkipTo pair: a core whose next event
// lies in the future makes no shared-LLC/DRAM access until then, so the
// chip loop defers it — not stepping it at all while quiescent and
// integrating the deferred stretch in one SkipTo when its event comes due,
// while busy co-runners keep stepping at real chip cycles (see
// internal/multicore and DESIGN.md §7).

// noEvent marks "no pending event" in next-event computations.
const noEvent = ^uint64(0)

// NoEventCycle is the exported sentinel NextEventCycle returns when the
// core has no pending event at all — the machine can never make progress
// again. Callers must not skip toward it: leaving the plain loop ticking
// lets the deadlock watchdog report meaningful cycle numbers.
const NoEventCycle = noEvent

// SetStallFastForward enables or disables the stall fast-forward
// (default: enabled). Disabling forces the classic cycle-by-cycle loop —
// the -no-ff escape hatch used by the A/B equivalence tests and for
// debugging; by the equivalence contract it changes wall-clock time only.
func (c *Core) SetStallFastForward(enabled bool) { c.noFF = !enabled }

// FFSkippedCycles returns the number of cycles the stall fast-forward has
// skipped in bulk so far (diagnostics; not part of Stats, which must stay
// identical with fast-forward on and off).
func (c *Core) FFSkippedCycles() uint64 { return c.ffSkipped }

// nextEventCycle returns the earliest cycle > c.cycle at which any
// pipeline stage can change machine state, assuming no state changes until
// then. A return of c.cycle+1 means the core is busy (something can act on
// the very next cycle) and nothing can be skipped. Called at the bottom of
// a simulated cycle, after every stage has run.
//
// This runs every non-skipped cycle, so its own cost decides whether the
// fast-forward is a net win: the O(1) sources run first and every source
// short-circuits the moment the core is proven busy, so busy cycles pay a
// few comparisons and only genuinely stalled cycles reach the IQ/exec
// scans — whose cost is then amortised over the whole skipped window.
//
//rarlint:pure
//rarlint:hot
func (c *Core) nextEventCycle() uint64 {
	busy := c.cycle + 1

	// Post-commit stores drain one per cycle; a non-empty buffer acts
	// every cycle.
	if len(c.storeBuf) > 0 {
		return busy
	}

	head := c.robHeadUop()
	// A completed ROB head commits next cycle (commit is architecturally
	// blocked during runahead; the runahead exit is handled below).
	if c.mode == modeNormal && head != nil && head.state == uopCompleted {
		return busy
	}

	// Fetch: acts when its stall expires, unless the front-end pipe is at
	// capacity (then only dispatch progress — an event below — unblocks it).
	t := noEvent
	if c.frontQ.len() < c.frontQCap() {
		if c.fetchStallUntil <= busy {
			return busy
		}
		t = c.fetchStallUntil
	}

	// Dispatch: in-order, so only the pipe head matters. A structurally
	// stalled head waits for a commit/completion/squash — all events in
	// their own right. In runahead mode dispatch consumes (or drops) every
	// instruction as long as the PRDQ has room.
	if c.frontQ.len() > 0 {
		u := c.frontQ.at(0)
		stalled := false
		if c.mode == modeRunahead {
			stalled = len(c.prdq) >= c.cfg.PRDQ
		} else {
			stalled = c.dispatchStalled(u)
		}
		if !stalled {
			if u.frontReadyAt <= busy {
				return busy
			}
			if u.frontReadyAt < t {
				t = u.frontReadyAt
			}
		}
	}

	// Mode transitions: runahead exit, PRDQ drain, countdown timers.
	if ev := c.modeNextEvent(head); ev <= busy {
		return busy
	} else if ev < t {
		t = ev
	}

	// Execution completions: FU latencies and memory return times
	// (uop.doneAt carries the hierarchy's DRAM/LLC fill cycle). The wheel
	// is probed by bucket occupancy alone — no uop is dereferenced. Every
	// occupied bucket lies strictly ahead of the current cycle (past
	// buckets were drained when their cycle ticked), so the first
	// non-empty bucket from busy onward is the earliest in-window
	// completion; cwOvMin bounds the out-of-window ones. A bucket kept
	// non-empty only by stale (squashed) entries merely wakes the core
	// early — by the equivalence contract, ticking an extra idle cycle
	// changes nothing.
	if c.cwCount > 0 {
		for k := uint64(1); k < cwSize; k++ {
			if len(c.cwBuckets[(c.cycle+k)&(cwSize-1)]) == 0 {
				continue
			}
			if ev := c.cycle + k; ev <= busy {
				return busy
			} else if ev < t {
				t = ev
			}
			break
		}
		if c.cwOvMin <= busy {
			return busy
		}
		if c.cwOvMin < t {
			t = c.cwOvMin
		}
	}

	// Issue: a waiting uop with ready sources retries as soon as its MSHR
	// backoff expires and (for unpipelined pools) its unit frees up. Uops
	// with unready sources wake only via a producer's completion, which is
	// itself an execution event above — so only the ready list (the exact
	// candidate set issueStage scans) needs walking, not the whole queue.
	for _, w := range c.readyList {
		u := w.u
		if u.seq != w.seq || u.state != uopDispatched || !c.srcsReady(u) {
			continue
		}
		ev := max(busy, u.retryAt)
		if pool := poolOf(u.inst.Class); !c.fuPools[pool].Pipelined {
			ev = max(ev, c.fuBusyTill[pool])
		}
		if ev <= busy {
			return busy
		}
		if ev < t {
			t = ev
		}
	}

	// Defensive bound from the memory system: never skip past the next
	// outstanding L1D miss fill. Fills change nothing until a uop consumes
	// them — every consumer is already an event above — but clamping here
	// keeps any overlooked coupling through the MSHR file (occupancy,
	// merges) from ever spanning a skipped window.
	if fill, ok := c.hier.NextFillAt(c.cycle); ok {
		if fill <= busy {
			return busy
		}
		if fill < t {
			t = fill
		}
	}

	return t
}

// clampObligations lowers a next-event target to the nearest exact-cycle
// obligation: invariant audits fire every auditEvery cycles and
// fault-injection samples strike at a precise cycle, so any skip must stop
// short of the nearest one and let the normal loop land on it.
//
//rarlint:pure
//rarlint:hot
func (c *Core) clampObligations(target uint64) uint64 {
	if c.auditEvery > 0 {
		if next := (c.cycle/c.auditEvery + 1) * c.auditEvery; next < target {
			target = next
		}
	}
	if c.injNext < len(c.injSamples) {
		if ic := c.injSamples[c.injNext].Cycle; ic < target {
			target = ic
		}
	}
	return target
}

// NextEventCycle returns the earliest future cycle at which this core must
// execute a normal simulated cycle: the earliest cycle any pipeline stage
// can change machine state (nextEventCycle), lowered to the core's
// exact-cycle obligations (audit multiples, pending fault-injection
// strikes). A return of CycleCount()+1 means the core is busy — something
// acts on the very next cycle and nothing can be skipped; NoEventCycle
// means no event is pending at all. Like nextEventCycle it is only
// meaningful at the bottom of a simulated cycle, after every stage has
// run — which is exactly when the multicore epoch driver calls it.
//
//rarlint:pure
//rarlint:hot
func (c *Core) NextEventCycle() uint64 {
	target := c.nextEventCycle()
	if target == noEvent {
		return NoEventCycle
	}
	return c.clampObligations(target)
}

// SkipTo bulk-advances a quiescent core to cycle target without simulating
// the intervening cycles, scaling the per-cycle accounting (the Figure 5
// attribution counters, the RunaheadCycles meter and the ACE ledger's
// blocked-cycle integrals) by the width of the window. The contract is the
// fast-forward equivalence contract: target must lie strictly before the
// core's next event — SkipTo re-derives NextEventCycle and panics on a
// violation rather than silently corrupting the run, which is what makes
// the exported surface safe for an external driver that computed its skip
// window from many cores at once. Skipping to the current cycle is a no-op;
// skipping backwards is always a bug.
//
//rarlint:hot
func (c *Core) SkipTo(target uint64) {
	if target <= c.cycle {
		if target < c.cycle {
			//rarlint:allow hotalloc contract-violation panic, never taken on a healthy run
			panic(fmt.Sprintf("core: SkipTo(%d) would move cycle %d backwards", target, c.cycle))
		}
		return
	}
	if ev := c.NextEventCycle(); target >= ev {
		//rarlint:allow hotalloc contract-violation panic, never taken on a healthy run
		panic(fmt.Sprintf("core: SkipTo(%d) would jump past the next event at %d (cycle %d)", target, ev, c.cycle))
	}
	c.bulkAdvance(target - c.cycle)
}

// skipStall bulk-advances the clock to just before the next event when the
// core is quiescent. It must run at the bottom of a Run/RunWarm iteration,
// after every stage of the current cycle has executed.
func (c *Core) skipStall() {
	target := c.nextEventCycle()
	if target <= c.cycle+1 {
		return // busy, or the next event is due anyway
	}
	if target == noEvent {
		// No pending event at all: the machine cannot make progress ever
		// again. Do not skip — let the plain loop tick so the watchdog
		// reports the deadlock with meaningful cycle numbers.
		return
	}
	target = c.clampObligations(target)
	if target <= c.cycle+1 {
		return
	}
	// Advance to target-1; the loop's c.cycle++ then executes the event
	// cycle itself through the normal stages.
	c.bulkAdvance(target - 1 - c.cycle)
}

// bulkAdvance moves the clock n cycles forward in one step. The skipped
// cycles would each have run tickBlocked with exactly the current (frozen)
// blocking state, so the attribution counters and the ACE ledger integrate
// in bulk. Callers guarantee quiescence over the whole window.
//
//rarlint:hot
func (c *Core) bulkAdvance(n uint64) {
	first := c.cycle + 1
	head := c.robHeadUop()
	headBlocked := head != nil && head.isLoad() && head.state == uopIssued && head.longLat
	fullStall := headBlocked && c.robCount == c.cfg.ROB
	c.ledger.Advance(headBlocked, fullStall, n)
	if headBlocked {
		c.s.HeadBlockedCycles += n
	}
	if fullStall {
		c.s.FullStallCycles += n
	}
	if c.mode == modeRunahead {
		c.s.RunaheadCycles += n
	}
	// Replicate tickBlocked's head-tracking for the skipped window: if the
	// head changed during the current cycle, the first skipped tick would
	// have restarted the countdown timer (modeNextEvent already used that
	// restarted base when it computed the skip target).
	if head == nil {
		c.headSeq, c.headSince = 0, c.cycle+n
	} else if head.seq != c.headSeq {
		c.headSeq, c.headSince = head.seq, first
	}
	c.cycle += n
	c.ledger.SetCycle(c.cycle)
	c.ffSkipped += n
}
