package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"rarsim/internal/ace"
	"rarsim/internal/config"
	"rarsim/internal/trace"
)

// The batched-synthesis A/B harness: every test here runs the same
// workload twice — once with the generator's batch face visible (the
// stream buffer refills in blocks, wrong-path groups synthesise through
// WrongPathBlock) and once through trace.ScalarOnly, which hides it and
// forces the seed's one-instruction-at-a-time path — and requires the
// resulting Stats to be byte-identical. Together with TestFFEquivalence
// this pins the full equivalence square: batched==scalar and FF on==off.

// runBlockAB runs (scheme, bench) batched and scalar and returns both
// measured Stats.
func runBlockAB(t *testing.T, scheme config.Scheme, benchName string,
	warmup, measured uint64) (batched, scalar Stats) {
	t.Helper()
	run := func(blockFace bool) Stats {
		b, err := trace.ByName(benchName)
		if err != nil {
			t.Fatal(err)
		}
		var src trace.Source = trace.New(b, 42)
		if !blockFace {
			src = trace.ScalarOnly(src)
		}
		c := NewFromSource(config.Baseline(), scheme, b.Name, src)
		st, err := c.RunWarm(warmup, measured)
		if err != nil {
			t.Fatalf("%s/%s block=%v: %v", scheme.Name, benchName, blockFace, err)
		}
		return st
	}
	return run(true), run(false)
}

// TestBatchedSynthesisEquivalence: for every scheme, on a memory-bound and
// a compute-bound benchmark, block-refilled synthesis must produce Stats
// byte-identical to scalar synthesis. The runahead schemes exercise
// mid-block squash/refill: runahead entry and exit rewind the stream
// cursor into the middle of refilled blocks, and mispredicted hammocks
// fetch wrong-path groups straddling refill boundaries.
func TestBatchedSynthesisEquivalence(t *testing.T) {
	schemes := append(config.Schemes(), config.RunaheadVariants()...)
	for _, bn := range []string{"libquantum", "mcf", "exchange2"} {
		for _, s := range schemes {
			s, bn := s, bn
			t.Run(bn+"/"+s.Name, func(t *testing.T) {
				t.Parallel()
				batched, scalar := runBlockAB(t, s, bn, 5_000, 30_000)
				if !reflect.DeepEqual(batched, scalar) {
					t.Errorf("stats diverge with batched synthesis:\nbatched: %+v\n scalar: %+v",
						batched, scalar)
				}
			})
		}
	}
}

// TestBatchedSynthesisEquivalenceWithAudit: the invariant auditor walks
// live pipeline state every N cycles; an audited batched run must match an
// audited scalar run (and the audits themselves must pass over state built
// from block-refilled uops).
func TestBatchedSynthesisEquivalenceWithAudit(t *testing.T) {
	run := func(blockFace bool) Stats {
		b, err := trace.ByName("mcf")
		if err != nil {
			t.Fatal(err)
		}
		var src trace.Source = trace.New(b, 42)
		if !blockFace {
			src = trace.ScalarOnly(src)
		}
		c := NewFromSource(config.Baseline(), config.RAR, b.Name, src)
		c.EnableAudit(1_000)
		st, err := c.RunWarm(5_000, 30_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	batched, scalar := run(true), run(false)
	if !reflect.DeepEqual(batched, scalar) {
		t.Errorf("audited stats diverge with batched synthesis:\nbatched: %+v\n scalar: %+v",
			batched, scalar)
	}
}

// TestBatchedSynthesisEquivalenceWithInjection: fault-injection outcomes
// depend on the exact machine state at exact cycles, so they are the
// sharpest detector of any batched-path divergence.
func TestBatchedSynthesisEquivalenceWithInjection(t *testing.T) {
	run := func(blockFace bool) ([]InjectSample, Stats) {
		b, err := trace.ByName("libquantum")
		if err != nil {
			t.Fatal(err)
		}
		var src trace.Source = trace.New(b, 42)
		if !blockFace {
			src = trace.ScalarOnly(src)
		}
		c := NewFromSource(config.Baseline(), config.RAR, b.Name, src)
		var samples []InjectSample
		for cyc := uint64(7_001); cyc < 120_000; cyc += 7_919 {
			samples = append(samples,
				InjectSample{Cycle: cyc, Structure: ace.ROB, Slot: int(cyc % 192)},
				InjectSample{Cycle: cyc + 13, Structure: ace.IQ, Slot: int(cyc % 92)},
				InjectSample{Cycle: cyc + 29, Structure: ace.LQ, Slot: int(cyc % 64)},
			)
		}
		c.InjectSamples(samples)
		st, err := c.RunWarm(5_000, 30_000)
		if err != nil {
			t.Fatal(err)
		}
		return samples, st
	}
	batchedS, batched := run(true)
	scalarS, scalar := run(false)
	if !reflect.DeepEqual(batched, scalar) {
		t.Errorf("injected stats diverge with batched synthesis:\nbatched: %+v\n scalar: %+v",
			batched, scalar)
	}
	if !reflect.DeepEqual(batchedS, scalarS) {
		for i := range batchedS {
			if batchedS[i] != scalarS[i] {
				t.Errorf("sample %d diverges: batched=%+v scalar=%+v", i, batchedS[i], scalarS[i])
			}
		}
	}
}

// TestBatchedSynthesisHostileRefillSizes drives the stream buffer with
// degenerate refill block sizes — 1 (block face used scalar) and a block
// far larger than the front-end ring — and requires byte-identical Stats.
// Zero-length blocks cannot refill anything (they would never make
// progress), so the hostile-zero case lives in the trace package's block
// tests, where NextBlock(nil) is pinned as a state-preserving no-op.
func TestBatchedSynthesisHostileRefillSizes(t *testing.T) {
	b, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	run := func(refill int) Stats {
		c := NewFromSource(config.Baseline(), config.RAR, b.Name, trace.New(b, 42))
		if refill > 0 {
			c.stream.refill = refill
		}
		st, err := c.RunWarm(2_000, 10_000)
		if err != nil {
			t.Fatalf("refill=%d: %v", refill, err)
		}
		return st
	}
	want := run(0) // default streamRefillBlock
	for _, refill := range []int{1, 3, 4096} {
		if got := run(refill); !reflect.DeepEqual(got, want) {
			t.Errorf("refill=%d stats diverge from default:\n got: %+v\nwant: %+v",
				refill, got, want)
		}
	}
}

// TestRandomProgramsBatchedEquivalence fuzzes the square's batched edge:
// arbitrary valid benchmarks under the runahead schemes must produce
// byte-identical Stats batched and scalar. Mirrors
// TestRandomProgramsFFEquivalence.
func TestRandomProgramsBatchedEquivalence(t *testing.T) {
	schemes := append(config.Schemes(), config.RunaheadVariants()...)
	f := func(raw []byte, pick uint8) bool {
		b := trace.RandomBenchmark(raw)
		s := schemes[int(pick)%len(schemes)]
		run := func(blockFace bool) (Stats, error) {
			var src trace.Source = trace.New(b, 7)
			if !blockFace {
				src = trace.ScalarOnly(src)
			}
			c := NewFromSource(config.Baseline(), s, b.Name, src)
			return c.RunWarm(1_000, 4_000)
		}
		batched, errB := run(true)
		scalar, errS := run(false)
		if (errB == nil) != (errS == nil) {
			t.Logf("%s raw=%v: error divergence: batched=%v scalar=%v", s.Name, raw, errB, errS)
			return false
		}
		if errB != nil {
			return true // both deadlocked identically; nothing to compare
		}
		if !reflect.DeepEqual(batched, scalar) {
			t.Logf("%s raw=%v: stats diverge:\nbatched: %+v\n scalar: %+v", s.Name, raw, batched, scalar)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
