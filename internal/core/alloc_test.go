package core

import (
	"fmt"
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/trace"
)

// TestZeroAllocSteadyState is the runtime half of the //rarlint:hot
// contract: after a warmup long enough to size every pool, queue and
// scratch buffer, a measured simulation window must perform zero heap
// allocations per cycle — in fact zero allocations total. hotalloc proves
// the property statically for the constructs it can see; this test catches
// what static analysis cannot (map growth, append capacity churn,
// escape-analysis regressions from compiler or refactor).
//
// Schemes and benchmarks are chosen to exercise every hot path: OoO for
// the plain pipeline, RAR for the runahead enter/exit/squash machinery,
// libquantum as the memory-heavy stream (deep MSHR/prefetch activity) and
// exchange2 as the compute-heavy control-flow stress (mispredict squash).
func TestZeroAllocSteadyState(t *testing.T) {
	cases := []struct {
		scheme config.Scheme
		bench  string
	}{
		{config.OoO, "libquantum"},
		{config.OoO, "exchange2"},
		{config.RAR, "libquantum"},
		{config.RAR, "exchange2"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/%s", tc.scheme.Name, tc.bench), func(t *testing.T) {
			b, err := trace.ByName(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			c := New(config.Baseline(), tc.scheme, b, 42)
			// Steady state: one long window sizes the uop pool, the
			// stream buffer, the front-end queue and every scratch
			// slice to their high-water marks.
			if _, err := c.Run(100_000); err != nil {
				t.Fatal(err)
			}
			// High-water growth decays rather than stopping at a sharp
			// boundary (a rare deep-runahead episode can still grow a
			// waiter list once). Each probe is itself more warmup, so
			// retry a few times: a genuine per-cycle allocation never
			// converges and still fails every probe.
			var allocs float64
			for attempt := 0; attempt < 6; attempt++ {
				allocs = testing.AllocsPerRun(5, func() {
					if _, err := c.Run(10_000); err != nil {
						t.Fatal(err)
					}
				})
				if allocs == 0 {
					break
				}
			}
			if allocs != 0 {
				t.Errorf("%s/%s: %.1f allocs per 10k-instruction window in steady state, want 0",
					tc.scheme.Name, tc.bench, allocs)
			}
		})
	}
}

// BenchmarkSteadyStateWindow measures a warmed 10k-instruction window —
// the companion benchmark for the zero-alloc assertion above (run with
// -benchmem to see the alloc rate directly).
func BenchmarkSteadyStateWindow(b *testing.B) {
	bench, err := trace.ByName("libquantum")
	if err != nil {
		b.Fatal(err)
	}
	c := New(config.Baseline(), config.RAR, bench, 42)
	if _, err := c.Run(60_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}
