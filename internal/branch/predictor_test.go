package branch

import (
	"testing"
	"testing/quick"
)

// train runs a predict/repair/update loop over outcomes, restoring the
// speculative history on each misprediction exactly as the core's
// recovery does, and returns the accuracy.
func train(p *Predictor, pc uint64, outcomes []bool) float64 {
	correct := 0
	for _, taken := range outcomes {
		snap := p.Snapshot()
		pred, info := p.Predict(pc)
		if pred == taken {
			correct++
		} else {
			p.Restore(snap, true, pc, taken)
		}
		p.Update(pc, taken, info)
	}
	return float64(correct) / float64(len(outcomes))
}

func TestAlwaysTaken(t *testing.T) {
	p := NewPredictor()
	outcomes := make([]bool, 2000)
	for i := range outcomes {
		outcomes[i] = true
	}
	if acc := train(p, 0x400, outcomes); acc < 0.99 {
		t.Errorf("always-taken accuracy = %v", acc)
	}
}

func TestAlternating(t *testing.T) {
	p := NewPredictor()
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	// A strict T/N/T/N pattern is trivially captured by short history.
	if acc := train(p, 0x800, outcomes); acc < 0.95 {
		t.Errorf("alternating accuracy = %v", acc)
	}
}

func TestShortPeriodicPattern(t *testing.T) {
	p := NewPredictor()
	pattern := []bool{true, true, false, true, false, false}
	outcomes := make([]bool, 6000)
	for i := range outcomes {
		outcomes[i] = pattern[i%len(pattern)]
	}
	if acc := train(p, 0xc00, outcomes); acc < 0.90 {
		t.Errorf("periodic accuracy = %v", acc)
	}
}

func TestLoopExitPrediction(t *testing.T) {
	// Fixed trip count of 17: taken 16 times then not-taken, repeatedly.
	// The loop predictor should capture the exit after a few confirmations.
	p := NewPredictor()
	var outcomes []bool
	for rep := 0; rep < 120; rep++ {
		for i := 0; i < 16; i++ {
			outcomes = append(outcomes, true)
		}
		outcomes = append(outcomes, false)
	}
	acc := train(p, 0x1000, outcomes)
	// Without a loop predictor the exit (1/17 of outcomes) is always
	// missed: accuracy caps at ~94%. With it, near-perfect.
	if acc < 0.97 {
		t.Errorf("loop accuracy = %v, loop predictor not engaging", acc)
	}
}

func TestRandomIsHard(t *testing.T) {
	// Pseudo-random outcomes must not be predictable: accuracy well below
	// the biased benchmarks but at least the majority class.
	p := NewPredictor()
	rnd := uint64(12345)
	outcomes := make([]bool, 5000)
	ones := 0
	for i := range outcomes {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		outcomes[i] = rnd&1 == 1
		if outcomes[i] {
			ones++
		}
	}
	acc := train(p, 0x2000, outcomes)
	if acc > 0.65 {
		t.Errorf("random accuracy = %v, suspiciously high", acc)
	}
}

func TestSnapshotRestore(t *testing.T) {
	p := NewPredictor()
	// Warm up with a history-dependent pattern.
	for i := 0; i < 1000; i++ {
		pc := uint64(0x100 + (i%4)*8)
		pred, info := p.Predict(pc)
		_ = pred
		p.Update(pc, i%3 == 0, info)
	}
	snap := p.Snapshot()
	seq := func() []bool {
		var out []bool
		for i := 0; i < 64; i++ {
			pred, _ := p.Predict(uint64(0x100 + (i%4)*8))
			out = append(out, pred)
		}
		return out
	}
	first := seq()
	p.Restore(snap, false, 0, false)
	second := seq()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("prediction %d differs after restore", i)
		}
	}
}

func TestRestoreWithOutcome(t *testing.T) {
	p := NewPredictor()
	snap := p.Snapshot()
	pred, _ := p.Predict(0x40) // speculatively shifts the predicted bit
	p.Restore(snap, true, 0x40, !pred)
	// After repair, history holds the corrected outcome; just check the
	// predictor still works.
	if _, info := p.Predict(0x44); info.PredTaken != info.PredTaken {
		t.Fatal("unreachable")
	}
	if p.Predictions() != 2 {
		t.Errorf("prediction count = %d", p.Predictions())
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(6)
	if _, hit := b.Lookup(0x1234); hit {
		t.Error("cold BTB must miss")
	}
	b.Insert(0x1234, 0xBEEF)
	if target, hit := b.Lookup(0x1234); !hit || target != 0xBEEF {
		t.Errorf("BTB lookup = %#x,%v", target, hit)
	}
	// A conflicting PC (same index, different tag) evicts.
	conflict := uint64(0x1234 + (1 << (6 + 2)))
	b.Insert(conflict, 0xF00D)
	if _, hit := b.Lookup(0x1234); hit {
		t.Error("conflicting insert must evict")
	}
	if b.MissRate() <= 0 || b.MissRate() > 1 {
		t.Errorf("miss rate = %v", b.MissRate())
	}
}

// Property: the folded history register always fits in compLen bits.
func TestFoldedBounds(t *testing.T) {
	f := func(bits []bool) bool {
		fd := newFolded(36, 10)
		var ring []uint32
		for _, b := range bits {
			var nb uint32
			if b {
				nb = 1
			}
			var old uint32
			if len(ring) >= 36 {
				old = ring[len(ring)-36]
			}
			ring = append(ring, nb)
			fd.update(nb, old)
			if fd.comp >= 1<<10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: folding is history-determined — two fold registers fed the
// same bit sequence agree.
func TestFoldedDeterministic(t *testing.T) {
	f := func(bits []bool) bool {
		a := newFolded(18, 9)
		b := newFolded(18, 9)
		var ring []uint32
		for _, x := range bits {
			var nb uint32
			if x {
				nb = 1
			}
			var old uint32
			if len(ring) >= 18 {
				old = ring[len(ring)-18]
			}
			ring = append(ring, nb)
			a.update(nb, old)
			b.update(nb, old)
			if a.comp != b.comp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctPCsIndependent(t *testing.T) {
	// Two branches with opposite biases at different PCs must both be
	// predicted well: the tables must separate them.
	p := NewPredictor()
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		for pc, taken := range map[uint64]bool{0x4000: true, 0x8000: false} {
			snap := p.Snapshot()
			pred, info := p.Predict(pc)
			if pred == taken {
				correct++
			} else {
				p.Restore(snap, true, pc, taken)
			}
			total++
			p.Update(pc, taken, info)
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.98 {
		t.Errorf("two-branch accuracy = %v", acc)
	}
}
