package branch

// TAGE proper: a bimodal base predictor plus nTables tagged components
// indexed by hashes of geometrically increasing history lengths. Prediction
// comes from the hitting component with the longest history; allocation on
// mispredictions steals weakly-useful entries in longer components.

const (
	nTables     = 6
	logBimodal  = 13 // 8K-entry bimodal
	logTagged   = 10 // 1K entries per tagged table
	tagBits     = 10
	ctrMax      = 3 // 3-bit signed counter range [-4,3]
	ctrMin      = -4
	uMax        = 3
	resetPeriod = 1 << 18 // usefulness aging period, in updates
)

// historyLens are the geometric history lengths of the tagged tables.
var historyLens = []int{4, 9, 18, 36, 72, 144}

type taggedEntry struct {
	ctr int8 // signed direction counter
	tag uint16
	u   uint8 // usefulness
}

// Info carries the per-prediction provider state from Predict to Update.
// The core stores it alongside the in-flight branch (in the ROB entry) and
// hands it back at commit.
type Info struct {
	PredTaken bool // the final prediction returned to the core

	provider int  // hitting table (0..nTables-1), -1 = bimodal
	altPred  bool // prediction of the alternate component
	tagePred bool // prediction of the provider component
	bimIdx   uint32
	idx      [nTables]uint32
	tag      [nTables]uint16
	loopHit  bool
	loopPred bool
	loopIdx  int
	scUsed   bool
	scSum    int32
	scIdx    [scTables]uint32
}

type tage struct {
	bimodal []int8 // 2-bit counters, range [-2,1]
	tables  [nTables][]taggedEntry
	hist    history

	useAltOnNA int8 // prefer altpred when provider entry is "newly allocated"
	tick       int
	rnd        uint64 // private xorshift for allocation randomisation
}

func newTAGE() *tage {
	t := &tage{
		bimodal: make([]int8, 1<<logBimodal),
	}
	for i := range t.tables {
		t.tables[i] = make([]taggedEntry, 1<<logTagged)
	}
	for i := 0; i < nTables; i++ {
		t.hist.idxFold[i] = newFolded(historyLens[i], logTagged)
		t.hist.tagFold1[i] = newFolded(historyLens[i], tagBits)
		t.hist.tagFold2[i] = newFolded(historyLens[i], tagBits-1)
	}
	t.rnd = 0x853c49e6748fea9b
	return t
}

func (t *tage) nextRand() uint64 {
	t.rnd ^= t.rnd << 13
	t.rnd ^= t.rnd >> 7
	t.rnd ^= t.rnd << 17
	return t.rnd
}

func (t *tage) index(pc uint64, table int) uint32 {
	h := uint32(pc>>2) ^ uint32(pc>>(2+logTagged)) ^
		t.hist.idxFold[table].comp ^ uint32(t.hist.phist&((1<<min(historyLens[table], 16))-1))
	return h & ((1 << logTagged) - 1)
}

func (t *tage) tagHash(pc uint64, table int) uint16 {
	h := uint32(pc>>2) ^ t.hist.tagFold1[table].comp ^ (t.hist.tagFold2[table].comp << 1)
	return uint16(h & ((1 << tagBits) - 1))
}

// predict computes the TAGE prediction for pc and records provider state
// into info.
func (t *tage) predict(pc uint64, info *Info) bool {
	info.bimIdx = uint32(pc>>2) & ((1 << logBimodal) - 1)
	bimPred := t.bimodal[info.bimIdx] >= 0

	info.provider = -1
	altProvider := -1
	for i := 0; i < nTables; i++ {
		info.idx[i] = t.index(pc, i)
		info.tag[i] = t.tagHash(pc, i)
	}
	for i := nTables - 1; i >= 0; i-- {
		if t.tables[i][info.idx[i]].tag == info.tag[i] {
			if info.provider < 0 {
				info.provider = i
			} else if altProvider < 0 {
				altProvider = i
				break
			}
		}
	}

	info.altPred = bimPred
	if altProvider >= 0 {
		info.altPred = t.tables[altProvider][info.idx[altProvider]].ctr >= 0
	}
	if info.provider < 0 {
		info.tagePred = bimPred
		return bimPred
	}
	e := &t.tables[info.provider][info.idx[info.provider]]
	info.tagePred = e.ctr >= 0
	// Newly allocated entries (weak counter, zero usefulness) are
	// unreliable; optionally trust the alternate prediction instead.
	weak := (e.ctr == 0 || e.ctr == -1) && e.u == 0
	if weak && t.useAltOnNA >= 0 {
		return info.altPred
	}
	return info.tagePred
}

// update trains TAGE with the committed outcome. info must be the Info
// produced by predict for this branch instance.
func (t *tage) update(pc uint64, taken bool, info *Info) {
	// Allocation: on a misprediction by the provider chain, try to
	// allocate an entry in a table with a longer history.
	if info.tagePred != taken && info.provider < nTables-1 {
		start := info.provider + 1
		allocated := false
		// Randomise the starting candidate slightly to avoid ping-pong.
		if start < nTables-1 && t.nextRand()&1 == 0 {
			start++
		}
		for i := start; i < nTables; i++ {
			e := &t.tables[i][info.idx[i]]
			if e.u == 0 {
				e.tag = info.tag[i]
				e.u = 0
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Nothing stealable: age the candidates so a future
			// allocation succeeds.
			for i := info.provider + 1; i < nTables; i++ {
				e := &t.tables[i][info.idx[i]]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	// Train the provider (or the bimodal table on a total miss).
	if info.provider >= 0 {
		e := &t.tables[info.provider][info.idx[info.provider]]
		bumpCtr(&e.ctr, taken)
		// Track whether "use alt on newly allocated" helps.
		weak := e.u == 0
		if weak && info.tagePred != info.altPred {
			if info.tagePred == taken && t.useAltOnNA > -64 {
				t.useAltOnNA--
			} else if info.altPred == taken && t.useAltOnNA < 63 {
				t.useAltOnNA++
			}
		}
		// Usefulness: provider was right where the alternate was wrong.
		if info.tagePred == taken && info.altPred != taken && e.u < uMax {
			e.u++
		}
		if info.tagePred != taken && info.altPred == taken && e.u > 0 {
			e.u--
		}
		// Keep the bimodal table warm as the fallback.
		if info.provider == 0 || info.altPred != taken {
			bumpBimodal(&t.bimodal[info.bimIdx], taken)
		}
	} else {
		bumpBimodal(&t.bimodal[info.bimIdx], taken)
	}

	// Periodic usefulness aging.
	t.tick++
	if t.tick >= resetPeriod {
		t.tick = 0
		for i := range t.tables {
			for j := range t.tables[i] {
				t.tables[i][j].u >>= 1
			}
		}
	}
}

func bumpCtr(c *int8, taken bool) {
	if taken {
		if *c < ctrMax {
			*c++
		}
	} else if *c > ctrMin {
		*c--
	}
}

func bumpBimodal(c *int8, taken bool) {
	if taken {
		if *c < 1 {
			*c++
		}
	} else if *c > -2 {
		*c--
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
