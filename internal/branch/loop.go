package branch

// Loop predictor: recognises branches that are taken a constant number of
// times and then fall through (loop back-edges with fixed trip counts),
// and overrides TAGE with high confidence once the trip count has been
// confirmed. This is the "L" of TAGE-SC-L.

const (
	loopEntries  = 64
	loopTagBits  = 12
	confThresh   = 3 // confirmations before the loop predictor may override
	maxTripCount = 1 << 14
)

type loopEntry struct {
	tag        uint16
	tripCount  uint16 // learned iteration count
	currentIt  uint16 // speculation-free running count (commit order)
	confidence uint8
	age        uint8
	valid      bool
}

type loopPredictor struct {
	entries [loopEntries]loopEntry
}

func (lp *loopPredictor) lookup(pc uint64) (idx int, hit bool) {
	idx = int((pc >> 2) % loopEntries)
	e := &lp.entries[idx]
	hit = e.valid && e.tag == uint16((pc>>8)&((1<<loopTagBits)-1))
	return idx, hit
}

// predict returns (prediction, confident) for the branch at pc, using
// commit-order iteration counts. The prediction is "taken" until the
// learned trip count is reached.
func (lp *loopPredictor) predict(pc uint64, info *Info) (bool, bool) {
	idx, hit := lp.lookup(pc)
	info.loopIdx = idx
	info.loopHit = hit
	if !hit {
		return false, false
	}
	e := &lp.entries[idx]
	pred := e.currentIt+1 < e.tripCount
	info.loopPred = pred
	return pred, e.confidence >= confThresh
}

// update trains the loop predictor with a committed outcome.
func (lp *loopPredictor) update(pc uint64, taken bool, info *Info) {
	e := &lp.entries[info.loopIdx]
	tag := uint16((pc >> 8) & ((1 << loopTagBits) - 1))
	if !info.loopHit {
		// Allocate on a not-taken outcome (potential loop exit) if the
		// slot is cold.
		if !taken {
			return
		}
		if e.valid && e.age > 0 {
			e.age--
			return
		}
		*e = loopEntry{tag: tag, valid: true, age: 7, tripCount: 0, currentIt: 1}
		return
	}
	if taken {
		if e.currentIt < maxTripCount-1 {
			e.currentIt++
		} else {
			e.valid = false // not a bounded loop
		}
		return
	}
	// Loop exit: check the trip count.
	observed := e.currentIt + 1
	if e.tripCount == observed {
		if e.confidence < 7 {
			e.confidence++
		}
		if e.age < 7 {
			e.age++
		}
	} else {
		e.tripCount = observed
		e.confidence = 0
	}
	e.currentIt = 0
}
