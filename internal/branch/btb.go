package branch

// BTB is a direct-mapped branch target buffer. The front-end consults it
// for predicted-taken branches; a BTB miss on a taken branch costs a
// front-end re-steer, modelled by the core as a short fetch bubble.
type BTB struct {
	entries []btbEntry
	mask    uint64

	lookups uint64
	misses  uint64
}

type btbEntry struct {
	tag    uint32
	target uint64
	valid  bool
}

// NewBTB builds a BTB with 2^logSize entries.
func NewBTB(logSize int) *BTB {
	return &BTB{
		entries: make([]btbEntry, 1<<logSize),
		mask:    (1 << logSize) - 1,
	}
}

// Lookup returns the stored target for the branch at pc.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	b.lookups++
	e := &b.entries[(pc>>2)&b.mask]
	if e.valid && e.tag == uint32(pc>>2) {
		return e.target, true
	}
	b.misses++
	return 0, false
}

// Insert records the taken target of the branch at pc.
func (b *BTB) Insert(pc, target uint64) {
	e := &b.entries[(pc>>2)&b.mask]
	*e = btbEntry{tag: uint32(pc >> 2), target: target, valid: true}
}

// MissRate returns the fraction of lookups that missed.
func (b *BTB) MissRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.misses) / float64(b.lookups)
}
