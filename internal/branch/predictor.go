package branch

// Predictor is the full direction predictor: TAGE + loop predictor + a
// small statistical-corrector-style confidence filter, plus the speculative
// history interface the core uses for squash recovery.

const (
	scTables = 2
	logSC    = 9 // 512 entries per SC table
	scThresh = 5
)

var scHistLens = []int{8, 21}

// Predictor is the core-facing branch direction predictor. It is not safe
// for concurrent use; each simulated core owns one.
type Predictor struct {
	tage *tage
	loop loopPredictor
	sc   [scTables][]int8

	predictions uint64
}

// NewPredictor returns a freshly initialised predictor.
func NewPredictor() *Predictor {
	p := &Predictor{tage: newTAGE()}
	for i := range p.sc {
		p.sc[i] = make([]int8, 1<<logSC)
	}
	return p
}

// Predict returns the predicted direction for the conditional branch at pc
// and an Info token that must be returned to Update at commit time.
// Predict speculatively shifts the predicted outcome into the global
// history; use Snapshot/Restore to rewind on squash.
func (p *Predictor) Predict(pc uint64) (bool, Info) {
	pred, info := p.PredictNoShift(pc)
	p.ShiftHistory(pred, pc)
	return pred, info
}

// PredictNoShift computes the prediction without shifting it into the
// speculative history. It lets the core look at the prediction first and
// take a history Snapshot only when it will actually need one (the
// simulator knows the true outcome at fetch, so only mispredicted
// branches are ever rewound) before committing the shift with
// ShiftHistory. PredictNoShift followed by ShiftHistory(pred, pc) is
// exactly Predict.
func (p *Predictor) PredictNoShift(pc uint64) (bool, Info) {
	var info Info
	pred := p.tage.predict(pc, &info)

	// Statistical corrector: a compact GEHL vote that may overturn a
	// low-confidence TAGE prediction. Confident TAGE predictions (a
	// saturated provider counter) are never overridden — unconditional
	// correction costs more than it saves (the "SC" of TAGE-SC-L is
	// similarly confidence-gated).
	var sum int32
	for i := 0; i < scTables; i++ {
		idx := p.scIndex(pc, i)
		info.scIdx[i] = idx
		sum += int32(p.sc[i][idx])
	}
	if pred {
		sum += 2
	} else {
		sum -= 2
	}
	info.scSum = sum
	if p.tageWeak(&info) {
		if sum >= scThresh {
			info.scUsed = !pred
			pred = true
		} else if sum <= -scThresh {
			info.scUsed = pred
			pred = false
		}
	}

	// Loop predictor overrides everything once confident.
	if lpPred, confident := p.loop.predict(pc, &info); confident {
		pred = lpPred
	}

	info.PredTaken = pred
	return pred, info
}

// ShiftHistory speculatively shifts a prediction made by PredictNoShift
// into the global history and counts the prediction.
func (p *Predictor) ShiftHistory(pred bool, pc uint64) {
	p.hist().shift(pred, pc, historyLens)
	p.predictions++
}

// tageWeak reports whether the TAGE prediction came from a weak counter
// (or the bare bimodal table) and is therefore eligible for statistical
// correction.
func (p *Predictor) tageWeak(info *Info) bool {
	if info.provider < 0 {
		c := p.tage.bimodal[info.bimIdx]
		return c == 0 || c == -1
	}
	c := p.tage.tables[info.provider][info.idx[info.provider]].ctr
	return c >= -2 && c <= 1
}

func (p *Predictor) scIndex(pc uint64, table int) uint32 {
	// The corrector's history lengths all fit inside the recent-64 mirror,
	// so the fold walks a register instead of ring lookups per bit. The
	// recurrence itself is serial by construction (each step folds the
	// running hash), but each step is now two shifts and an or.
	r := p.hist().recent
	var fold uint32
	for d := scHistLens[table]; d > 0; d-- {
		fold = (fold << 1) | uint32(r&1)
		fold ^= fold >> logSC
		r >>= 1
	}
	return (uint32(pc>>2) ^ fold ^ uint32(table)<<5) & ((1 << logSC) - 1)
}

// Update trains all components with the committed outcome of the branch at
// pc. info must be the token Predict produced for this dynamic instance.
// Only committed (correct-path) branches may be passed to Update.
func (p *Predictor) Update(pc uint64, taken bool, info Info) {
	p.tage.update(pc, taken, &info)
	p.loop.update(pc, taken, &info)
	for i := 0; i < scTables; i++ {
		c := &p.sc[i][info.scIdx[i]]
		if taken {
			if *c < 31 {
				*c++
			}
		} else if *c > -32 {
			*c--
		}
	}
}

// Snapshot captures the speculative history state. The core takes one
// before each predicted branch so a squash can rewind precisely.
func (p *Predictor) Snapshot() Snapshot { return p.hist().snapshot() }

// Restore rewinds the speculative history to s and then shifts in the now
// known outcome of the mispredicted branch (corrected=true when the squash
// is a branch misprediction repair; for a plain rewind — e.g. a runahead
// exit refetch — pass shiftOutcome=false).
func (p *Predictor) Restore(s Snapshot, shiftOutcome bool, pc uint64, taken bool) {
	p.hist().restore(s)
	if shiftOutcome {
		p.hist().shift(taken, pc, historyLens)
	}
}

// Predictions returns the number of Predict calls, for stats.
func (p *Predictor) Predictions() uint64 { return p.predictions }

func (p *Predictor) hist() *history { return &p.tage.hist }
