// Package branch implements the conditional-branch direction predictor and
// BTB of the simulated core: a TAGE predictor (bimodal base plus tagged
// tables over geometrically increasing global-history lengths, with folded
// history registers and usefulness-based allocation), a loop predictor for
// constant-trip-count loops, and a small statistical-corrector-style bias
// table — a compact cousin of the 8 KB TAGE-SC-L the paper configures
// (Table II).
//
// The predictor supports speculative history: the core snapshots history
// state when it predicts a branch and restores the snapshot when a
// misprediction (or a runahead exit) squashes the path. Table updates
// happen only at commit, so wrong-path and runahead-speculative branches
// never pollute the tables.
package branch

// folded incrementally maintains a hash of the most recent origLen bits of
// global history, folded down to compLen bits. This is the standard TAGE
// mechanism: on every history shift the new bit is XORed in and the bit
// falling off the end of the history is XORed out, so maintaining the hash
// is O(1) regardless of history length.
type folded struct {
	comp     uint32
	compLen  uint16
	outPoint uint16
}

func newFolded(origLen, compLen int) folded {
	return folded{compLen: uint16(compLen), outPoint: uint16(origLen % compLen)}
}

// update shifts newBit into the folded hash and oldBit (the history bit
// aging out of the window) out of it.
func (f *folded) update(newBit, oldBit uint32) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= (1 << f.compLen) - 1
}

// ghrBits is the capacity of the global history register. It must be at
// least the longest tagged-table history length.
const ghrBits = 256

// history is the global branch history: a ring of the last ghrBits
// outcomes plus the folded registers of every tagged table. It is the
// state captured by Snapshot/Restore.
type history struct {
	bits [ghrBits / 64]uint64
	pos  int // index of the next bit to write

	// recent mirrors the newest 64 history bits (bit 0 = most recent
	// outcome) so short-distance reads — the statistical corrector's
	// folds, most tagged-table aging bits — are one shift-and-mask on a
	// register instead of a ring lookup per bit.
	recent uint64

	// phist is a short path history mixed into the indices.
	phist uint64

	idxFold  [nTables]folded
	tagFold1 [nTables]folded
	tagFold2 [nTables]folded
}

// bit returns history bit at distance d (d=1 is the most recent outcome).
// ghrBits is a power of two, so the ring arithmetic is masks and shifts;
// distances within the recent window never touch the ring at all.
func (h *history) bit(d int) uint32 {
	if d <= 64 {
		return uint32(h.recent>>(d-1)) & 1
	}
	p := (h.pos - d) & (ghrBits - 1)
	return uint32(h.bits[p>>6]>>(p&63)) & 1
}

// shift pushes one branch outcome into the history and updates every
// folded register.
func (h *history) shift(taken bool, pc uint64, hists []int) {
	var nb uint32
	if taken {
		nb = 1
	}
	for i := range h.idxFold {
		old := h.bit(hists[i])
		h.idxFold[i].update(nb, old)
		h.tagFold1[i].update(nb, old)
		h.tagFold2[i].update(nb, old)
	}
	w, b := h.pos>>6, uint(h.pos&63)
	h.bits[w] = (h.bits[w] &^ (1 << b)) | (uint64(nb) << b)
	h.pos = (h.pos + 1) & (ghrBits - 1)
	h.recent = (h.recent << 1) | uint64(nb)
	h.phist = ((h.phist << 1) ^ (pc >> 2)) & 0xFFFF
}

// Snapshot is a copy of the speculative history state at one point in the
// fetch stream. Restoring it rewinds the predictor to that point. It is a
// flat value (no heap indirection) so the core can checkpoint one per
// in-flight branch cheaply.
type Snapshot struct {
	bits     [ghrBits / 64]uint64
	pos      int
	recent   uint64
	phist    uint64
	idxFold  [nTables]folded
	tagFold1 [nTables]folded
	tagFold2 [nTables]folded
}

func (h *history) snapshot() Snapshot {
	return Snapshot{
		bits:     h.bits,
		pos:      h.pos,
		recent:   h.recent,
		phist:    h.phist,
		idxFold:  h.idxFold,
		tagFold1: h.tagFold1,
		tagFold2: h.tagFold2,
	}
}

func (h *history) restore(s Snapshot) {
	h.bits = s.bits
	h.pos = s.pos
	h.recent = s.recent
	h.phist = s.phist
	h.idxFold = s.idxFold
	h.tagFold1 = s.tagFold1
	h.tagFold2 = s.tagFold2
}
