package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if got := ArithMean(xs); !approx(got, 7.0/3) {
		t.Errorf("amean = %v", got)
	}
	if got := GeoMean(xs); !approx(got, 2) {
		t.Errorf("geomean = %v", got)
	}
	if got := HarmMean(xs); !approx(got, 3/(1+0.5+0.25)) {
		t.Errorf("hmean = %v", got)
	}
}

func TestMeansEmptyAndInvalid(t *testing.T) {
	if ArithMean(nil) != 0 || GeoMean(nil) != 0 || HarmMean(nil) != 0 {
		t.Error("empty slices must yield 0")
	}
	// Regression (silent-zero bug): one degenerate value used to zero the
	// entire aggregate. Invalid values are now skipped instead.
	if got := GeoMean([]float64{1, 0, 2}); !approx(got, math.Sqrt2) {
		t.Errorf("geomean skipping a zero = %v, want sqrt(2)", got)
	}
	if got := HarmMean([]float64{1, -1}); !approx(got, 1) {
		t.Errorf("hmean skipping a negative = %v, want 1", got)
	}
}

// Regression: NaN and ±Inf cells are skipped like non-positive ones, and
// a slice with *only* invalid values surfaces NaN rather than a
// plausible-looking 0 or a poisoned aggregate.
func TestMeansSkipNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	if got := GeoMean([]float64{4, nan, inf, -inf, 1}); !approx(got, 2) {
		t.Errorf("geomean skipping non-finite = %v, want 2", got)
	}
	if got := HarmMean([]float64{1, nan, inf, 1}); !approx(got, 1) {
		t.Errorf("hmean skipping non-finite = %v, want 1", got)
	}
	if got := GeoMean([]float64{0, -3, nan}); !math.IsNaN(got) {
		t.Errorf("geomean of all-invalid = %v, want NaN", got)
	}
	if got := HarmMean([]float64{0, inf}); !math.IsNaN(got) {
		t.Errorf("hmean of all-invalid = %v, want NaN", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
	if Ratio(1, 0) != 0 {
		t.Error("ratio by zero must yield 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Max(xs) != 3 || Min(xs) != 1 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty min/max must yield 0")
	}
}

// Property: for positive inputs, hmean <= geomean <= amean (the classical
// mean inequality), and all three lie within [min, max].
func TestMeanInequality(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)+1) // positive, bounded
		}
		if len(xs) == 0 {
			return true
		}
		h, g, a := HarmMean(xs), GeoMean(xs), ArithMean(xs)
		const eps = 1e-9
		return h <= g+eps && g <= a+eps &&
			Min(xs)-eps <= h && a <= Max(xs)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every mean of a constant slice is that constant.
func TestMeanOfConstant(t *testing.T) {
	f := func(v uint16, n uint8) bool {
		x := float64(v%500) + 1
		xs := make([]float64, int(n%20)+1)
		for i := range xs {
			xs[i] = x
		}
		return approx(ArithMean(xs), x) && approx(GeoMean(xs), x) && approx(HarmMean(xs), x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
