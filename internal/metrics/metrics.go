// Package metrics aggregates per-benchmark results into suite-level
// numbers following the paper's methodology (§V, citing John 2006):
// harmonic mean for IPC ratios, geometric mean for MTTF, and arithmetic
// mean for ABC and MLP.
package metrics

import "math"

// ArithMean returns the arithmetic mean of xs (0 for an empty slice).
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmMean returns the harmonic mean of xs. Non-positive values are
// rejected by returning 0, as the harmonic mean is undefined for them.
func HarmMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// GeoMean returns the geometric mean of xs. Non-positive values are
// rejected by returning 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Max returns the largest value in xs (0 for an empty slice).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest value in xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
