// Package metrics aggregates per-benchmark results into suite-level
// numbers following the paper's methodology (§V, citing John 2006):
// harmonic mean for IPC ratios, geometric mean for MTTF, and arithmetic
// mean for ABC and MLP.
package metrics

import "math"

// ArithMean returns the arithmetic mean of xs (0 for an empty slice).
//
//rarlint:pure
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// valid reports whether x may enter a harmonic or geometric mean: both
// are defined only for positive finite values. (x > 0 also rejects NaN.)
func valid(x float64) bool {
	return x > 0 && !math.IsInf(x, 1)
}

// HarmMean returns the harmonic mean of the positive finite values in
// xs. Non-positive and non-finite values are skipped — one degenerate
// cell must not silently zero the whole suite aggregate. A non-empty
// slice with no valid value returns NaN so the corruption stays visible;
// an empty slice returns 0.
//
//rarlint:pure
func HarmMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	n := 0
	for _, x := range xs {
		if !valid(x) {
			continue
		}
		s += 1 / x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(n) / s
}

// GeoMean returns the geometric mean of the positive finite values in
// xs, with the same skip-invalid policy as HarmMean.
//
//rarlint:pure
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	n := 0
	for _, x := range xs {
		if !valid(x) {
			continue
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

// Ratio returns a/b, or 0 when b is 0.
//
//rarlint:pure
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Max returns the largest value in xs (0 for an empty slice).
//
//rarlint:pure
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest value in xs (0 for an empty slice).
//
//rarlint:pure
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
