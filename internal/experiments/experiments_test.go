package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rarsim/internal/sim"
)

func tinyConfig(out *bytes.Buffer) Config {
	return Config{
		Opt: sim.Options{Instructions: 4_000, Warmup: 1_000, Seed: 42},
		Out: out,
	}
}

// TestEveryFigureRuns drives each experiment end to end at a tiny scale:
// the numbers are meaningless at 4k instructions, but the plumbing —
// matrices, normalisation, table rendering — is fully exercised.
func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	cases := map[string][]string{
		"1":         {"Figure 1", "RAR", "rel. MTTF"},
		"3":         {"Figure 3", "compute-avg", "ROB", "total"},
		"4":         {"Figure 4", "core-4", "352"},
		"5":         {"Figure 5", "head-blocked", "average"},
		"7":         {"Figure 7a", "Figure 7b", "mem-avg", "all-avg"},
		"8":         {"Figure 8a", "Figure 8b", "mem-avg"},
		"9":         {"Figure 9", "TR-EARLY", "triggers/PRE"},
		"10":        {"Figure 10", "core-1", "RAR"},
		"11":        {"Figure 11", "+L3", "+ALL"},
		"timer":     {"countdown-timer", "timer-15", "entries/kinst"},
		"mshr":      {"MSHR", "mshr-20", "RAR MTTF"},
		"scaling":   {"back-end size", "core-4"},
		"seeds":     {"seeds", "1337"},
		"inject":    {"fault injection", "ledger AVF", "squashed"},
		"multicore": {"shared-LLC", "chip"},
		"energy":    {"event-energy", "EPI", "fetches/commit"},
	}
	for fig, wants := range cases {
		fig, wants := fig, wants
		t.Run("fig"+fig, func(t *testing.T) {
			t.Parallel()
			var out bytes.Buffer
			if err := ByName(fig, tinyConfig(&out)); err != nil {
				t.Fatal(err)
			}
			for _, w := range wants {
				if !strings.Contains(out.String(), w) {
					t.Errorf("fig %s output missing %q:\n%s", fig, w, out.String())
				}
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if err := ByName("99", DefaultConfig()); err == nil {
		t.Error("unknown figure must error")
	}
}

func TestCSVEmission(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.CSVDir = dir
	if err := Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scheme,") {
		t.Errorf("CSV content: %q", data)
	}
}
