// Package experiments regenerates every table and figure of the paper's
// evaluation (§II and §V). Each FigN function runs the experiment's
// (core × scheme × benchmark) matrix and renders the same rows/series the
// paper reports, normalised the same way (everything relative to the
// baseline OoO core; hmean IPC, geomean MTTF, amean ABC/MLP).
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// paper-versus-measured results.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rarsim/internal/config"
	"rarsim/internal/report"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Opt is the per-cell simulation configuration.
	Opt sim.Options
	// Out receives the rendered tables.
	Out io.Writer
	// CSVDir, when non-empty, additionally writes each table as CSV.
	CSVDir string
	// Engine, when non-nil, memoizes simulation cells: figures sharing a
	// cell (same core config, scheme, benchmark and options) simulate it
	// once and reuse the result. All and Ablations install a shared
	// memory engine automatically when none is provided; pass a
	// sim.NewPersistentEngine to warm-start from disk across runs.
	Engine *sim.Engine
}

// DefaultConfig returns a configuration writing to stdout with the default
// simulation options.
func DefaultConfig() Config {
	return Config{Opt: sim.DefaultOptions(), Out: os.Stdout}
}

func (c Config) emit(t *report.Table, csvName string) error {
	t.Write(c.Out)
	if c.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.CSVDir, csvName+".csv"))
	if err != nil {
		return err
	}
	t.WriteCSV(f)
	// The close error is the only signal that the CSV never fully
	// reached disk (ENOSPC, quota); a silently truncated table is
	// exactly the data-integrity class this repo lints against.
	return f.Close()
}

// All runs every experiment in paper order, sharing one memoizing
// engine: a cell simulated for an early figure is a cache hit for every
// later figure that reuses it. Fig2 and Fig6 are intentionally absent —
// in the paper they are conceptual diagrams (the ACE vulnerability
// windows and the RAR mechanism overview), not measured results.
func All(c Config) error {
	if c.Engine == nil {
		c.Engine = sim.NewEngine()
	}
	steps := []struct {
		name string
		fn   func(Config) error
	}{
		{"fig1", Fig1}, {"fig3", Fig3}, {"fig4", Fig4}, {"fig5", Fig5},
		{"fig7", Fig7}, {"fig8", Fig8}, {"fig9", Fig9}, {"fig10", Fig10},
		{"fig11", Fig11},
	}
	for _, s := range steps {
		if err := s.fn(c); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
	}
	return nil
}

// ByName runs one experiment ("1", "3", ... "11", or "all").
func ByName(name string, c Config) error {
	switch name {
	case "all", "":
		return All(c)
	case "1":
		return Fig1(c)
	case "3":
		return Fig3(c)
	case "4":
		return Fig4(c)
	case "5":
		return Fig5(c)
	case "7":
		return Fig7(c)
	case "8":
		return Fig8(c)
	case "9":
		return Fig9(c)
	case "10":
		return Fig10(c)
	case "11":
		return Fig11(c)
	case "ablations":
		return Ablations(c)
	case "timer":
		return AblationTimer(c)
	case "mshr":
		return AblationMSHR(c)
	case "scaling":
		return AblationScaledRAR(c)
	case "seeds":
		return AblationSeeds(c)
	case "inject":
		return AblationInjection(c)
	case "multicore":
		return AblationMulticore(c)
	case "energy":
		return AblationEnergy(c)
	default:
		return fmt.Errorf("experiments: unknown figure %q (use 1,3,4,5,7,8,9,10,11, all, or an ablation: ablations, timer, mshr, scaling, seeds, inject, multicore, energy)", name)
	}
}

// matrix runs one experiment matrix through the shared engine when the
// Config carries one, falling back to an unshared run otherwise. opt is
// passed explicitly because some ablations vary it per matrix.
func (c Config) matrix(cores []config.Core, schemes []config.Scheme, benches []trace.Benchmark, opt sim.Options) (*sim.ResultSet, error) {
	if c.Engine != nil {
		return c.Engine.RunMatrix(cores, schemes, benches, opt)
	}
	return sim.RunMatrix(cores, schemes, benches, opt)
}

// memNames returns the memory-intensive benchmark names.
func memNames() []string { return sim.BenchNames(trace.MemoryIntensive()) }

// computeNames returns the compute-intensive benchmark names.
func computeNames() []string { return sim.BenchNames(trace.ComputeIntensive()) }

// baselineList wraps the baseline core for matrix calls.
func baselineList() []config.Core { return []config.Core{config.Baseline()} }

const base = "baseline"
