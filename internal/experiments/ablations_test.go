package experiments

import (
	"math"
	"testing"
)

func TestAbsoluteMTTFHours(t *testing.T) {
	// AVF 0.5 on 1000 bits with 1 FIT/bit raw rate: FIT = 500 failures
	// per 1e9 hours => MTTF = 2e6 hours.
	got := AbsoluteMTTFHours(0.5, 1000, 1)
	if math.Abs(got-2e6) > 1e-6 {
		t.Errorf("MTTF = %v, want 2e6", got)
	}
	if AbsoluteMTTFHours(0, 1000, 1) != 0 {
		t.Error("zero AVF must yield 0 (no derated failures)")
	}
}
