package experiments

import (
	"fmt"

	"rarsim/internal/ace"
	"rarsim/internal/config"
	"rarsim/internal/mem"
	"rarsim/internal/metrics"
	"rarsim/internal/report"
	"rarsim/internal/trace"
)

// Fig1 regenerates Figure 1: performance (IPC) versus reliability (MTTF)
// for FLUSH, PRE, TR and RAR relative to the baseline OoO core over the
// memory-intensive benchmarks.
func Fig1(c Config) error {
	schemes := []config.Scheme{config.OoO, config.FLUSH, config.PRE, config.TR, config.RAR}
	rs, err := c.matrix(baselineList(), schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	mem := memNames()
	t := report.NewTable("Figure 1: IPC vs MTTF relative to OoO (memory-intensive)",
		"scheme", "rel. IPC", "rel. MTTF")
	for _, s := range schemes[1:] {
		t.AddRow(s.Name,
			report.X(rs.MeanIPCNorm(base, s.Name, mem)),
			report.X(rs.MeanMTTF(base, s.Name, mem)))
	}
	return c.emit(t, "fig1")
}

// Fig3 regenerates Figure 3: the ABC stacks (ROB/IQ/LQ/SQ/RF/FU) of the
// baseline OoO core for each memory-intensive benchmark, with the average
// stack of the compute-intensive benchmarks for contrast.
func Fig3(c Config) error {
	rs, err := c.matrix(baselineList(), []config.Scheme{config.OoO}, trace.All(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 3: ABC stacks on the baseline OoO core (Gbit-cycles)",
		"benchmark", "ROB", "IQ", "LQ", "SQ", "RF", "FU", "total")
	row := func(label string, abc [ace.NumStructures]uint64) {
		cells := []string{label}
		var tot uint64
		for _, v := range abc {
			tot += v
		}
		for s := ace.Structure(0); s < ace.NumStructures; s++ {
			cells = append(cells, fmt.Sprintf("%.2f", float64(abc[s])/1e9))
		}
		cells = append(cells, fmt.Sprintf("%.2f", float64(tot)/1e9))
		t.AddRow(cells...)
	}
	// Compute-intensive average first, as in the paper's figure.
	var avg [ace.NumStructures]uint64
	comp := computeNames()
	for _, b := range comp {
		st := rs.MustStats(base, config.OoO.Name, b)
		for i, v := range st.ABC {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= uint64(len(comp))
	}
	row("compute-avg", avg)
	for _, b := range memNames() {
		row(b, rs.MustStats(base, config.OoO.Name, b).ABC)
	}
	return c.emit(t, "fig3")
}

// Fig4 regenerates Figure 4: total ABC of the four Table I core
// configurations, normalised to Core-1, averaged over the
// memory-intensive benchmarks.
func Fig4(c Config) error {
	cores := config.ScaledCores()
	rs, err := c.matrix(cores, []config.Scheme{config.OoO}, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 4: ABC vs back-end size, normalised to Core-1 (memory-intensive)",
		"core", "ROB", "norm. ABC")
	for _, core := range cores {
		var ratios []float64
		for _, b := range memNames() {
			ref := rs.MustStats(cores[0].Name, config.OoO.Name, b)
			st := rs.MustStats(core.Name, config.OoO.Name, b)
			ratios = append(ratios, metrics.Ratio(float64(st.TotalABC), float64(ref.TotalABC)))
		}
		t.AddRow(core.Name, fmt.Sprintf("%d", core.ROB), report.X(metrics.ArithMean(ratios)))
	}
	return c.emit(t, "fig4")
}

// Fig5 regenerates Figure 5: how much of the baseline core's ACE bit count
// is exposed while an LLC-miss load blocks the ROB head, and while the ROB
// is additionally full.
func Fig5(c Config) error {
	rs, err := c.matrix(baselineList(), []config.Scheme{config.OoO}, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 5: ACE attribution on the baseline OoO core",
		"benchmark", "total Gbc", "head-blocked", "full-ROB stall", "head%", "full%", "head-cyc%", "full-cyc%")
	var hbPct, fsPct, hbCyc, fsCyc []float64
	for _, b := range memNames() {
		st := rs.MustStats(base, config.OoO.Name, b)
		hb := 100 * metrics.Ratio(float64(st.HeadBlockedABC), float64(st.TotalABC))
		fs := 100 * metrics.Ratio(float64(st.FullStallABC), float64(st.TotalABC))
		// The cycle-side attribution alongside the bit-side one: what
		// fraction of runtime the head was blocked / the ROB full.
		hc := 100 * metrics.Ratio(float64(st.HeadBlockedCycles), float64(st.Cycles))
		fc := 100 * metrics.Ratio(float64(st.FullStallCycles), float64(st.Cycles))
		hbPct, fsPct = append(hbPct, hb), append(fsPct, fs)
		hbCyc, fsCyc = append(hbCyc, hc), append(fsCyc, fc)
		t.AddRow(b,
			fmt.Sprintf("%.2f", float64(st.TotalABC)/1e9),
			fmt.Sprintf("%.2f", float64(st.HeadBlockedABC)/1e9),
			fmt.Sprintf("%.2f", float64(st.FullStallABC)/1e9),
			fmt.Sprintf("%.1f%%", hb),
			fmt.Sprintf("%.1f%%", fs),
			fmt.Sprintf("%.1f%%", hc),
			fmt.Sprintf("%.1f%%", fc))
	}
	t.AddRow("average", "", "", "",
		fmt.Sprintf("%.1f%%", metrics.ArithMean(hbPct)),
		fmt.Sprintf("%.1f%%", metrics.ArithMean(fsPct)),
		fmt.Sprintf("%.1f%%", metrics.ArithMean(hbCyc)),
		fmt.Sprintf("%.1f%%", metrics.ArithMean(fsCyc)))
	return c.emit(t, "fig5")
}

// fig7and8Schemes is the headline comparison set of §V.
func fig7and8Schemes() []config.Scheme {
	return []config.Scheme{config.OoO, config.FLUSH, config.PRE, config.RARLate, config.RAR}
}

// Fig7 regenerates Figure 7: per-benchmark (a) normalised MTTF and (b)
// normalised ABC for FLUSH, PRE, RAR-LATE and RAR over the full suite.
func Fig7(c Config) error {
	schemes := fig7and8Schemes()
	rs, err := c.matrix(baselineList(), schemes, trace.All(), c.Opt)
	if err != nil {
		return err
	}
	names := func(s config.Scheme) string { return s.Name }
	_ = names

	mttf := report.NewTable("Figure 7a: MTTF relative to OoO (higher is better)",
		"benchmark", "FLUSH", "PRE", "RAR-LATE", "RAR")
	abc := report.NewTable("Figure 7b: ABC relative to OoO (lower is better)",
		"benchmark", "FLUSH", "PRE", "RAR-LATE", "RAR")
	addRows := func(benches []string) {
		for _, b := range benches {
			mr := []string{b}
			ar := []string{b}
			for _, s := range schemes[1:] {
				mr = append(mr, report.X(rs.MTTF(base, s.Name, b)))
				ar = append(ar, report.F(rs.ABCNorm(base, s.Name, b)))
			}
			mttf.AddRow(mr...)
			abc.AddRow(ar...)
		}
	}
	addAvg := func(label string, benches []string) {
		mr := []string{label}
		ar := []string{label}
		for _, s := range schemes[1:] {
			mr = append(mr, report.X(rs.MeanMTTF(base, s.Name, benches)))
			ar = append(ar, report.F(rs.MeanABCNorm(base, s.Name, benches)))
		}
		mttf.AddRow(mr...)
		abc.AddRow(ar...)
	}
	addRows(memNames())
	addAvg("mem-avg", memNames())
	addRows(computeNames())
	addAvg("compute-avg", computeNames())
	addAvg("all-avg", append(memNames(), computeNames()...))
	if err := c.emit(mttf, "fig7a"); err != nil {
		return err
	}
	return c.emit(abc, "fig7b")
}

// Fig8 regenerates Figure 8: per-benchmark (a) normalised IPC and (b) MLP
// for the headline schemes over the memory-intensive benchmarks.
func Fig8(c Config) error {
	schemes := fig7and8Schemes()
	rs, err := c.matrix(baselineList(), schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	ipc := report.NewTable("Figure 8a: IPC relative to OoO",
		"benchmark", "FLUSH", "PRE", "RAR-LATE", "RAR")
	mlp := report.NewTable("Figure 8b: MLP (absolute)",
		"benchmark", "OoO", "FLUSH", "PRE", "RAR-LATE", "RAR")
	for _, b := range memNames() {
		ir := []string{b}
		for _, s := range schemes[1:] {
			ir = append(ir, report.F(rs.IPCNorm(base, s.Name, b)))
		}
		ipc.AddRow(ir...)
		mr := []string{b}
		for _, s := range schemes {
			mr = append(mr, report.F(rs.MLP(base, s.Name, b)))
		}
		mlp.AddRow(mr...)
	}
	ir := []string{"mem-avg"}
	for _, s := range schemes[1:] {
		ir = append(ir, report.F(rs.MeanIPCNorm(base, s.Name, memNames())))
	}
	ipc.AddRow(ir...)
	mr := []string{"mem-avg"}
	for _, s := range schemes {
		mr = append(mr, report.F(rs.MeanMLP(base, s.Name, memNames())))
	}
	mlp.AddRow(mr...)
	if err := c.emit(ipc, "fig8a"); err != nil {
		return err
	}
	return c.emit(mlp, "fig8b")
}

// Fig9 regenerates Figure 9: average MTTF, ABC and IPC of every runahead
// variant (Table IV) plus FLUSH, over the memory-intensive benchmarks. It
// also reports how often each variant triggers runahead relative to PRE
// (§V-B: RAR triggers 2.3x more often).
func Fig9(c Config) error {
	schemes := append([]config.Scheme{config.OoO}, config.RunaheadVariants()...)
	rs, err := c.matrix(baselineList(), schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	names := memNames()
	triggers := func(scheme string) float64 {
		var total uint64
		for _, b := range names {
			st := rs.MustStats(base, scheme, b)
			total += st.RunaheadEntries + st.Flushes
		}
		return float64(total)
	}
	preTrig := triggers(config.PRE.Name)
	// Per-variant runahead behaviour: fraction of cycles spent in
	// runahead mode, uops executed per trigger, and the share of
	// runahead uops filtered or INV-dropped — the lean-vs-full execution
	// trade-off of Table IV, visible directly.
	behaviour := func(scheme string) (raCyc, perTrig, dropped float64) {
		var cyc, ra, exec, drop, trig uint64
		for _, b := range names {
			st := rs.MustStats(base, scheme, b)
			cyc += st.Cycles
			ra += st.RunaheadCycles
			exec += st.RunaheadExecuted
			drop += st.RunaheadDropped
			trig += st.RunaheadEntries + st.Flushes
		}
		raCyc = 100 * metrics.Ratio(float64(ra), float64(cyc))
		perTrig = metrics.Ratio(float64(exec), float64(trig))
		dropped = 100 * metrics.Ratio(float64(drop), float64(exec+drop))
		return raCyc, perTrig, dropped
	}
	t := report.NewTable("Figure 9: runahead design space, averages over memory-intensive benchmarks",
		"scheme", "MTTF", "ABC", "IPC", "triggers/PRE", "RA-cyc%", "uops/trigger", "dropped%")
	for _, s := range schemes[1:] {
		ratio := "-"
		if preTrig > 0 {
			ratio = fmt.Sprintf("%.1fx", triggers(s.Name)/preTrig)
		}
		raCyc, perTrig, dropped := behaviour(s.Name)
		t.AddRow(s.Name,
			report.X(rs.MeanMTTF(base, s.Name, names)),
			report.F(rs.MeanABCNorm(base, s.Name, names)),
			report.F(rs.MeanIPCNorm(base, s.Name, names)),
			ratio,
			fmt.Sprintf("%.1f%%", raCyc),
			fmt.Sprintf("%.0f", perTrig),
			fmt.Sprintf("%.1f%%", dropped))
	}
	return c.emit(t, "fig9")
}

// Fig10 regenerates Figure 10: ABC as a function of back-end size (Table I
// cores) for the OoO baseline and RAR, normalised to Core-1 OoO.
func Fig10(c Config) error {
	cores := config.ScaledCores()
	schemes := []config.Scheme{config.OoO, config.RAR}
	rs, err := c.matrix(cores, schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 10: ABC vs back-end size, normalised to Core-1 OoO",
		"core", "ROB", "OoO", "RAR")
	for _, core := range cores {
		row := []string{core.Name, fmt.Sprintf("%d", core.ROB)}
		for _, s := range schemes {
			var ratios []float64
			for _, b := range memNames() {
				ref := rs.MustStats(cores[0].Name, config.OoO.Name, b)
				st := rs.MustStats(core.Name, s.Name, b)
				ratios = append(ratios, metrics.Ratio(float64(st.TotalABC), float64(ref.TotalABC)))
			}
			row = append(row, report.F(metrics.ArithMean(ratios)))
		}
		t.AddRow(row...)
	}
	return c.emit(t, "fig10")
}

// Fig11 regenerates Figure 11: MTTF, ABC and IPC of OoO, PRE and RAR under
// aggressive stride prefetching at the LLC ("+L3") and at all levels
// ("+ALL"), all normalised to the no-prefetch OoO baseline.
func Fig11(c Config) error {
	cores := []config.Core{
		config.Baseline(),
		config.Baseline().WithPrefetch(mem.PrefetchL3),
		config.Baseline().WithPrefetch(mem.PrefetchAll),
	}
	schemes := []config.Scheme{config.OoO, config.PRE, config.RAR}
	rs, err := c.matrix(cores, schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 11: hardware prefetching, normalised to no-prefetch OoO (memory-intensive)",
		"config", "scheme", "MTTF", "ABC", "IPC", "pf/kinst")
	for _, core := range cores {
		for _, s := range schemes {
			var mttfs, abcs, ipcs, pfs []float64
			for _, b := range memNames() {
				ref := rs.MustStats(cores[0].Name, config.OoO.Name, b)
				st := rs.MustStats(core.Name, s.Name, b)
				mttfs = append(mttfs, ace.MTTFRel(ref.TotalABC, ref.Cycles, st.TotalABC, st.Cycles))
				abcs = append(abcs, metrics.Ratio(float64(st.TotalABC), float64(ref.TotalABC)))
				ipcs = append(ipcs, metrics.Ratio(st.IPC(), ref.IPC()))
				pfs = append(pfs, 1000*metrics.Ratio(float64(st.Mem.PrefetchIssued), float64(st.Committed)))
			}
			t.AddRow(core.Name, s.Name,
				report.X(metrics.GeoMean(mttfs)),
				report.F(metrics.ArithMean(abcs)),
				report.F(metrics.HarmMean(ipcs)),
				fmt.Sprintf("%.1f", metrics.ArithMean(pfs)))
		}
	}
	return c.emit(t, "fig11")
}
