package experiments

import (
	"io"
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/mem"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// allFigureMatrices mirrors the (cores × schemes × benches) matrix of
// every figure All runs, in the same order. Kept in lockstep with
// figures.go so the test below can compute the expected unique-cell
// count independently of the engine's own bookkeeping.
func allFigureMatrices() []struct {
	cores   []config.Core
	schemes []config.Scheme
	benches []trace.Benchmark
} {
	type m = struct {
		cores   []config.Core
		schemes []config.Scheme
		benches []trace.Benchmark
	}
	return []m{
		{baselineList(), []config.Scheme{config.OoO, config.FLUSH, config.PRE, config.TR, config.RAR}, trace.MemoryIntensive()}, // Fig1
		{baselineList(), []config.Scheme{config.OoO}, trace.All()},                                                              // Fig3
		{config.ScaledCores(), []config.Scheme{config.OoO}, trace.MemoryIntensive()},                                            // Fig4
		{baselineList(), []config.Scheme{config.OoO}, trace.MemoryIntensive()},                                                  // Fig5
		{baselineList(), fig7and8Schemes(), trace.All()},                                                                        // Fig7
		{baselineList(), fig7and8Schemes(), trace.MemoryIntensive()},                                                            // Fig8
		{baselineList(), append([]config.Scheme{config.OoO}, config.RunaheadVariants()...), trace.MemoryIntensive()},            // Fig9
		{config.ScaledCores(), []config.Scheme{config.OoO, config.RAR}, trace.MemoryIntensive()},                                // Fig10
		{[]config.Core{ // Fig11
			config.Baseline(),
			config.Baseline().WithPrefetch(mem.PrefetchL3),
			config.Baseline().WithPrefetch(mem.PrefetchAll),
		}, []config.Scheme{config.OoO, config.PRE, config.RAR}, trace.MemoryIntensive()},
	}
}

// TestAllSimulatesEachUniqueCellOnce is the memoization acceptance test:
// running every figure through one shared engine must simulate exactly
// the number of *unique* (core, scheme, bench, options) cells the nine
// figures span — every repeated cell is a cache hit — and a second full
// pass must simulate nothing at all.
func TestAllSimulatesEachUniqueCellOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure matrix")
	}
	opt := sim.Options{Instructions: 4_000, Warmup: 1_000, Seed: 42}
	eng := sim.NewEngine()
	c := Config{Opt: opt, Out: io.Discard, Engine: eng}
	if err := All(c); err != nil {
		t.Fatal(err)
	}

	unique := map[sim.CellKey]bool{}
	requested := 0
	for _, m := range allFigureMatrices() {
		for _, cfg := range m.cores {
			for _, s := range m.schemes {
				for _, b := range m.benches {
					unique[sim.KeyFor(cfg, s, b, opt)] = true
					requested++
				}
			}
		}
	}
	if requested <= len(unique) {
		t.Fatalf("figure matrices share no cells (%d requested, %d unique) — memoization has nothing to do", requested, len(unique))
	}

	m := eng.Metrics()
	if m.Simulated != uint64(len(unique)) {
		t.Errorf("simulated %d cells, want exactly the %d unique cells", m.Simulated, len(unique))
	}
	if m.Hits != uint64(requested-len(unique)) {
		t.Errorf("cache hits = %d, want %d (requested %d − unique %d)", m.Hits, requested-len(unique), requested, len(unique))
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d, want 0", m.Errors)
	}

	// Second full pass over the warm engine: zero new simulations.
	if err := All(c); err != nil {
		t.Fatal(err)
	}
	after := eng.Metrics()
	if after.Simulated != m.Simulated {
		t.Errorf("second pass simulated %d new cells, want 0", after.Simulated-m.Simulated)
	}
	if wantHits := m.Hits + uint64(requested); after.Hits != wantHits {
		t.Errorf("second pass hits = %d, want %d", after.Hits, wantHits)
	}
}
