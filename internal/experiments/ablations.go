package experiments

import (
	"fmt"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/energy"
	"rarsim/internal/inject"
	"rarsim/internal/metrics"
	"rarsim/internal/multicore"
	"rarsim/internal/report"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// corestats aliases core.Stats for the multicore extension table.
type corestats = core.Stats

// Ablation experiments beyond the paper's figures, for the design choices
// DESIGN.md calls out. They answer the "what if" questions the paper's
// §III-D implementation discussion raises but does not sweep.

// AblationTimer sweeps the 4-bit ROB-head countdown timer that implements
// RAR's early-start LLC-miss detection (§III-D fixes it at 15). A short
// timer triggers runahead on L2-latency waits (spurious flushes); a long
// timer delays coverage of the memory shadow.
func AblationTimer(c Config) error {
	timers := []uint64{7, 15, 31, 63}
	cores := make([]config.Core, 0, len(timers))
	for _, tv := range timers {
		core := config.Baseline()
		core.RunaheadTimer = tv
		core.Name = fmt.Sprintf("timer-%d", tv)
		cores = append(cores, core)
	}
	schemes := []config.Scheme{config.OoO, config.RAR}
	rs, err := c.matrix(cores, schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: RAR countdown-timer value (memory-intensive averages)",
		"timer", "MTTF", "ABC", "IPC", "entries/kinst")
	for _, core := range cores {
		var entries, insts uint64
		for _, b := range memNames() {
			st := rs.MustStats(core.Name, config.RAR.Name, b)
			entries += st.RunaheadEntries
			insts += st.Committed
		}
		t.AddRow(core.Name,
			report.X(rs.MeanMTTF(core.Name, config.RAR.Name, memNames())),
			report.F(rs.MeanABCNorm(core.Name, config.RAR.Name, memNames())),
			report.F(rs.MeanIPCNorm(core.Name, config.RAR.Name, memNames())),
			fmt.Sprintf("%.2f", 1000*float64(entries)/float64(insts)))
	}
	return c.emit(t, "ablation_timer")
}

// AblationMSHR sweeps the L1D miss-status holding registers. MSHRs bound
// both the baseline's MLP and how deep runahead prefetching can run, so
// they gate the performance side of every runahead variant.
func AblationMSHR(c Config) error {
	sizes := []int{10, 20, 40}
	cores := make([]config.Core, 0, len(sizes))
	for _, n := range sizes {
		core := config.Baseline()
		core.Mem.MSHRs = n
		core.Name = fmt.Sprintf("mshr-%d", n)
		cores = append(cores, core)
	}
	schemes := []config.Scheme{config.OoO, config.PRE, config.RAR}
	rs, err := c.matrix(cores, schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: L1D MSHR count (memory-intensive averages)",
		"config", "OoO MLP", "OoO stall/kinst", "PRE IPC", "RAR IPC", "RAR MTTF")
	for _, core := range cores {
		// MSHR-full stalls per kilo-instruction on the baseline: the
		// direct evidence that the swept knob is the binding resource.
		var stalls []float64
		for _, b := range memNames() {
			st := rs.MustStats(core.Name, config.OoO.Name, b)
			stalls = append(stalls, 1000*metrics.Ratio(float64(st.Mem.MSHRFullStalls), float64(st.Committed)))
		}
		t.AddRow(core.Name,
			report.F(rs.MeanMLP(core.Name, config.OoO.Name, memNames())),
			fmt.Sprintf("%.1f", metrics.ArithMean(stalls)),
			report.F(rs.MeanIPCNorm(core.Name, config.PRE.Name, memNames())),
			report.F(rs.MeanIPCNorm(core.Name, config.RAR.Name, memNames())),
			report.X(rs.MeanMTTF(core.Name, config.RAR.Name, memNames())))
	}
	return c.emit(t, "ablation_mshr")
}

// AblationScaledRAR extends Figure 10 with the performance dimension: how
// the RAR-versus-OoO IPC and MTTF ratios evolve as the back-end grows
// (the paper's conclusion claims RAR becomes more effective on larger
// cores — this quantifies both axes).
func AblationScaledRAR(c Config) error {
	cores := config.ScaledCores()
	schemes := []config.Scheme{config.OoO, config.RAR}
	rs, err := c.matrix(cores, schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: RAR effectiveness vs back-end size",
		"core", "ROB", "RAR MTTF", "RAR ABC", "RAR IPC")
	for _, core := range cores {
		t.AddRow(core.Name, fmt.Sprintf("%d", core.ROB),
			report.X(rs.MeanMTTF(core.Name, config.RAR.Name, memNames())),
			report.F(rs.MeanABCNorm(core.Name, config.RAR.Name, memNames())),
			report.F(rs.MeanIPCNorm(core.Name, config.RAR.Name, memNames())))
	}
	return c.emit(t, "ablation_scaling")
}

// AblationSeeds checks the robustness of the headline result across
// workload-generation seeds: the RAR MTTF/IPC averages must not be an
// artefact of one particular synthetic instruction stream.
func AblationSeeds(c Config) error {
	seeds := []uint64{42, 1337, 20220402}
	t := report.NewTable("Ablation: workload seeds (memory-intensive averages)",
		"seed", "RAR MTTF", "RAR ABC", "RAR IPC", "PRE IPC")
	for _, seed := range seeds {
		opt := c.Opt
		opt.Seed = seed
		rs, err := c.matrix(baselineList(),
			[]config.Scheme{config.OoO, config.PRE, config.RAR},
			trace.MemoryIntensive(), opt)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", seed),
			report.X(rs.MeanMTTF(base, config.RAR.Name, memNames())),
			report.F(rs.MeanABCNorm(base, config.RAR.Name, memNames())),
			report.F(rs.MeanIPCNorm(base, config.RAR.Name, memNames())),
			report.F(rs.MeanIPCNorm(base, config.PRE.Name, memNames())))
	}
	return c.emit(t, "ablation_seeds")
}

// AblationInjection cross-validates the ACE-analysis ledger with a
// statistical fault-injection campaign (footnote 1 of the paper): the
// empirical corrupt-strike fraction must track the ledger AVF, and RAR
// must convert corrupt strikes into squashed ones.
func AblationInjection(c Config) error {
	t := report.NewTable("Validation: fault injection vs ACE analysis",
		"benchmark", "scheme", "inject AVF", "ledger AVF", "corrupt", "squashed", "masked")
	for _, bn := range []string{"libquantum", "gems", "mcf"} {
		b, err := trace.ByName(bn)
		if err != nil {
			return err
		}
		for _, s := range []config.Scheme{config.OoO, config.RAR} {
			res, err := inject.Run(config.Baseline(), s, b, inject.Campaign{
				Trials:       2000,
				Instructions: c.Opt.Instructions,
				Warmup:       c.Opt.Warmup,
				Seed:         c.Opt.Seed,
			})
			if err != nil {
				return err
			}
			t.AddRow(bn, s.Name,
				fmt.Sprintf("%.4f±%.4f", res.EmpiricalAVF(), res.StdErr()),
				fmt.Sprintf("%.4f", res.LedgerAVF),
				fmt.Sprintf("%d", res.Corrupt),
				fmt.Sprintf("%d", res.Squashed),
				fmt.Sprintf("%d", res.Masked))
		}
	}
	return c.emit(t, "ablation_injection")
}

// Ablations runs every ablation, sharing one memoizing engine across
// them (AblationInjection and AblationMulticore drive the simulator
// directly rather than through matrices, so they do not hit the cache).
func Ablations(c Config) error {
	if c.Engine == nil {
		c.Engine = sim.NewEngine()
	}
	for _, f := range []func(Config) error{AblationTimer, AblationMSHR, AblationScaledRAR, AblationSeeds, AblationInjection, AblationMulticore, AblationEnergy} {
		if err := f(c); err != nil {
			return err
		}
	}
	return nil
}

// AbsoluteMTTFHours converts a run's AVF into a wall-clock mean time to
// failure, given a raw device error rate in FIT per bit (Equation 4:
// FIT = AVF × raw rate, derated over the core's vulnerable bits; MTTF is
// its inverse, with FIT defined per 10^9 device-hours). The paper reports
// only normalised MTTF — this helper exists for tools that want absolute
// estimates under an assumed technology error rate.
func AbsoluteMTTFHours(avf float64, totalBits uint64, rawFITPerBit float64) float64 {
	fit := avf * rawFITPerBit * float64(totalBits)
	if fit == 0 {
		return 0
	}
	return 1e9 / fit
}

// AblationMulticore evaluates the paper's §VI-E deployment: a four-core
// chip with shared LLC and DRAM running memory-intensive co-runners, as
// an all-OoO chip versus an all-RAR chip. Chip failure rates add across
// cores, so chip MTTF is the derated-rate-weighted combination.
func AblationMulticore(c Config) error {
	names := []string{"libquantum", "gems", "fotonik", "milc"}
	build := func(scheme config.Scheme) ([]corestats, error) {
		var loads []multicore.Workload
		for _, n := range names {
			b, err := trace.ByName(n)
			if err != nil {
				return nil, err
			}
			loads = append(loads, multicore.Workload{Bench: b, Scheme: scheme})
		}
		sys, err := multicore.New(config.Baseline(), loads, c.Opt.Seed)
		if err != nil {
			return nil, err
		}
		// -no-ff reaches the chip loop too: by the equivalence contract it
		// changes wall-clock time only, never the reported tables.
		sys.SetStallFastForward(!c.Opt.NoFastForward)
		return sys.Run(c.Opt.Instructions)
	}
	base, err := build(config.OoO)
	if err != nil {
		return err
	}
	rar, err := build(config.RAR)
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: 4-core shared-LLC chip, all-OoO vs all-RAR",
		"core", "OoO IPC", "RAR IPC", "OoO AVF", "RAR AVF")
	for i, n := range names {
		t.AddRow(n,
			report.F(base[i].IPC()), report.F(rar[i].IPC()),
			report.F(base[i].AVF()), report.F(rar[i].AVF()))
	}
	t.AddRow("chip",
		"1.000", report.F(multicore.ChipThroughputRel(base, rar)),
		"1.00x", report.X(multicore.ChipMTTFRel(base, rar)))
	return c.emit(t, "ablation_multicore")
}

// AblationEnergy estimates the energy cost of every scheme with the
// event-energy model: the extra speculative activity of runahead and the
// refetch work of the flush-based schemes, against the static energy saved
// by finishing sooner. The literature's claim (runahead costs a few
// percent, unlike redundancy's ~2x) should reproduce.
func AblationEnergy(c Config) error {
	schemes := append([]config.Scheme{config.OoO}, config.RunaheadVariants()...)
	rs, err := c.matrix(baselineList(), schemes, trace.MemoryIntensive(), c.Opt)
	if err != nil {
		return err
	}
	model := energy.DefaultModel()
	t := report.NewTable("Ablation: event-energy model (memory-intensive averages)",
		"scheme", "energy vs OoO", "EPI pJ", "fetches/commit", "wrong-path%")
	for _, s := range schemes {
		var ovs, epis, fpc, wp []float64
		for _, b := range memNames() {
			ooo := rs.MustStats(base, config.OoO.Name, b)
			st := rs.MustStats(base, s.Name, b)
			ovs = append(ovs, model.Overhead(ooo, st))
			epis = append(epis, model.EPI(st))
			fpc = append(fpc, float64(st.TotalFetched)/float64(st.Committed))
			// Share of fetch bandwidth burnt on wrong-path work: the
			// part of the energy overhead speculation alone explains.
			wp = append(wp, 100*metrics.Ratio(float64(st.WrongPathFetched), float64(st.TotalFetched)))
		}
		t.AddRow(s.Name,
			report.F(metrics.ArithMean(ovs)),
			fmt.Sprintf("%.0f", metrics.ArithMean(epis)),
			report.F(metrics.ArithMean(fpc)),
			fmt.Sprintf("%.1f%%", metrics.ArithMean(wp)))
	}
	return c.emit(t, "ablation_energy")
}
