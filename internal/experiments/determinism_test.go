package experiments

import (
	"bytes"
	"testing"

	"rarsim/internal/sim"
)

// TestRenderedTablesAreDeterministic is the end-to-end determinism
// regression behind the rarlint determinism check: the same experiments
// run twice in-process through fresh engines, with a concurrent matrix
// schedule, must render byte-identical tables. Any wall-clock leak,
// global-rand use or unordered map iteration on the result path shows
// up here as a byte diff.
func TestRenderedTablesAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs small simulations")
	}
	render := func() string {
		var out bytes.Buffer
		cfg := tinyConfig(&out)
		cfg.Opt.Parallelism = 4 // concurrent completion order must not show
		cfg.Engine = sim.NewEngine()
		if err := Fig5(cfg); err != nil {
			t.Fatal(err)
		}
		if err := Fig9(cfg); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Errorf("re-running the same experiments changed the rendered tables:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if first == "" {
		t.Error("experiments rendered nothing")
	}
}
