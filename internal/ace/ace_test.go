package ace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStructureString(t *testing.T) {
	want := map[Structure]string{ROB: "ROB", IQ: "IQ", LQ: "LQ", SQ: "SQ", RF: "RF", FU: "FU"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if Structure(99).String() != "structure(99)" {
		t.Error("out-of-range structure name")
	}
}

func TestDefaultBitsMatchTableIII(t *testing.T) {
	b := DefaultBits()
	if b.ROBEntry != 120 || b.IQEntry != 80 || b.LQEntry != 120 || b.SQEntry != 184 {
		t.Errorf("Table III budgets wrong: %+v", b)
	}
	if b.IntReg != 64 || b.FpReg != 128 || b.IntFU != 64 || b.FpFU != 128 {
		t.Errorf("register/FU widths wrong: %+v", b)
	}
}

func TestTotalBits(t *testing.T) {
	// Hand-computed for the Table II baseline.
	b := DefaultBits()
	s := Sizes{ROB: 192, IQ: 92, LQ: 64, SQ: 64, IntRegs: 168, FpRegs: 168, IntFUs: 5, FpFUs: 3}
	want := uint64(192*120 + 92*80 + 64*120 + 64*184 + 168*64 + 168*128 + 5*64 + 3*128)
	if got := TotalBits(b, s); got != want {
		t.Errorf("TotalBits = %d, want %d", got, want)
	}
}

func TestLedgerAccumulation(t *testing.T) {
	l := NewLedger()
	l.Add(ROB, 120, 10, 4, 2)
	l.Add(ROB, 120, 5, 0, 0)
	l.Add(IQ, 80, 3, 3, 3)
	abc := l.ABC()
	if abc[ROB] != 120*15 {
		t.Errorf("ROB ABC = %d", abc[ROB])
	}
	if abc[IQ] != 80*3 {
		t.Errorf("IQ ABC = %d", abc[IQ])
	}
	if l.TotalABC() != 120*15+80*3 {
		t.Errorf("total = %d", l.TotalABC())
	}
	if l.HeadBlockedABC() != 120*4+80*3 {
		t.Errorf("head-blocked = %d", l.HeadBlockedABC())
	}
	if l.FullStallABC() != 120*2+80*3 {
		t.Errorf("full-stall = %d", l.FullStallABC())
	}
}

func TestLedgerTickAndCum(t *testing.T) {
	l := NewLedger()
	l.TickBlocked(false, false)
	l.TickBlocked(true, false)
	l.TickBlocked(true, true)
	hb, fs := l.Cum()
	if hb != 2 || fs != 1 {
		t.Errorf("cum = %d,%d want 2,1", hb, fs)
	}
}

// TestLedgerAdvanceEquivalence pins the bulk-residency contract the stall
// fast-forward depends on: Advance(hb, fs, n) must leave Cum() exactly
// where n individual TickBlocked(hb, fs) calls would.
func TestLedgerAdvanceEquivalence(t *testing.T) {
	cases := []struct {
		hb, fs bool
		n      uint64
	}{
		{false, false, 1000}, {true, false, 7}, {true, true, 123}, {true, false, 0},
	}
	bulk, tick := NewLedger(), NewLedger()
	for _, c := range cases {
		bulk.Advance(c.hb, c.fs, c.n)
		for i := uint64(0); i < c.n; i++ {
			tick.TickBlocked(c.hb, c.fs)
		}
		bhb, bfs := bulk.Cum()
		thb, tfs := tick.Cum()
		if bhb != thb || bfs != tfs {
			t.Fatalf("after %+v: bulk cum = %d,%d ticked cum = %d,%d", c, bhb, bfs, thb, tfs)
		}
	}
}

func TestAVF(t *testing.T) {
	if got := AVF(1000, 100, 10); got != 1.0 {
		t.Errorf("fully-vulnerable AVF = %v", got)
	}
	if got := AVF(500, 100, 10); got != 0.5 {
		t.Errorf("AVF = %v", got)
	}
	if AVF(1, 0, 10) != 0 || AVF(1, 10, 0) != 0 {
		t.Error("degenerate AVF must be 0")
	}
}

// TestMTTFRelPRECase encodes the paper's subtle PRE result: if a scheme
// improves ABC by the same factor it improves runtime, MTTF is unchanged.
func TestMTTFRelPRECase(t *testing.T) {
	// Baseline: ABC 1000 over 1000 cycles. PRE-like: ABC 720 over 720.
	if got := MTTFRel(1000, 1000, 720, 720); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("PRE-case MTTF = %v, want 1.0", got)
	}
	// RAR-like: ABC x0.186, runtime x0.75 => MTTF = (1/0.186)*0.75 ≈ 4.03.
	got := MTTFRel(1000, 1000, 186, 750)
	want := (1000.0 / 186.0) * 0.75
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RAR-case MTTF = %v, want %v", got, want)
	}
	if MTTFRel(1, 0, 1, 1) != 0 || MTTFRel(1, 1, 0, 1) != 0 {
		t.Error("degenerate MTTF must be 0")
	}
}

// Property: the attribution buckets never exceed the total, provided each
// window's overlaps don't exceed its length (the core guarantees this).
func TestLedgerBucketBound(t *testing.T) {
	f := func(windows []struct {
		Bits uint16
		Cyc  uint16
		HB   uint16
		FS   uint16
	}) bool {
		l := NewLedger()
		for _, w := range windows {
			cyc := uint64(w.Cyc)
			hb := uint64(w.HB) % (cyc + 1)
			fs := uint64(w.FS) % (hb + 1) // fullStall ⊆ headBlocked
			l.Add(ROB, uint64(w.Bits), cyc, hb, fs)
		}
		return l.FullStallABC() <= l.HeadBlockedABC() &&
			l.HeadBlockedABC() <= l.TotalABC()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MTTFRel is multiplicative in ABC improvement and runtime ratio.
func TestMTTFRelScaling(t *testing.T) {
	f := func(abc uint32, cyc uint32) bool {
		a := uint64(abc%10000) + 1
		c := uint64(cyc%10000) + 1
		// Halving ABC at equal runtime doubles MTTF.
		m := MTTFRel(2*a, c, a, c)
		return math.Abs(m-2.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
