// Package ace implements Architecturally Correct Execution (ACE) analysis
// for the simulated core, following Mukherjee et al. (MICRO 2003) as used
// by the paper (§IV-B).
//
// An ACE bit is a bit that must be correct for the program to execute
// correctly. The ACE Bit Count (ABC) of a run is the total number of
// bit-cycles exposed by correct-path instructions in the core's
// microarchitectural structures:
//
//	ABC = Σ_i ACE_i            (Equation 1)
//
// Each structure entry exposes bits over the window of Figure 2: an ROB
// entry from dispatch to commit, an issue-queue entry from dispatch to
// issue, load/store-queue entries from execute to commit, a physical
// register from writeback to the producer's commit, and a functional unit
// for its bit width times the instruction's execution cycles. NOPs,
// wrong-path instructions, and any state that is squashed (branch
// misprediction repair, pipeline flush, runahead exit flush) are un-ACE:
// the core simply never reports their windows.
//
// The package also implements the paper's Figure 5 attribution: how much of
// the ABC is exposed while an LLC-miss load blocks the ROB head, and while
// the ROB is additionally full. Attribution uses two monotone cycle
// counters that the core advances; windows snapshot the counters at their
// endpoints, so the overlap of any window with the blocked intervals is a
// subtraction rather than a per-cycle scan.
package ace

import "fmt"

// Structure identifies a vulnerable microarchitectural structure.
type Structure int

// The tracked structures, matching the paper's ABC stacks (Figure 3).
const (
	ROB Structure = iota
	IQ
	LQ
	SQ
	RF
	FU
	NumStructures
)

var structureNames = [NumStructures]string{"ROB", "IQ", "LQ", "SQ", "RF", "FU"}

// String returns the structure's name.
func (s Structure) String() string {
	if s >= 0 && s < NumStructures {
		return structureNames[s]
	}
	return fmt.Sprintf("structure(%d)", int(s))
}

// Bits is the per-entry bit budget of each structure (Table III).
type Bits struct {
	ROBEntry int // 120: PC index, mapping triple, LQ/SQ index, status
	IQEntry  int // 80: register tags, LQ/SQ index, micro-op
	LQEntry  int // 120: VA+PA, ROB id, SQ index, fault bits
	SQEntry  int // 184: load-queue fields plus 64-bit data
	IntReg   int // 64
	FpReg    int // 128
	IntFU    int // 64-bit wide integer units
	FpFU     int // 128-bit wide FP units
}

// DefaultBits returns the Table III / §IV-A budgets.
func DefaultBits() Bits {
	return Bits{
		ROBEntry: 120,
		IQEntry:  80,
		LQEntry:  120,
		SQEntry:  184,
		IntReg:   64,
		FpReg:    128,
		IntFU:    64,
		FpFU:     128,
	}
}

// Sizes is the entry count of each structure, used for the AVF
// denominator (N in Equation 2).
type Sizes struct {
	ROB, IQ, LQ, SQ int
	IntRegs, FpRegs int
	IntFUs, FpFUs   int
}

// TotalBits returns N: the total number of vulnerable bits in the core.
//
//rarlint:unit bits
func TotalBits(b Bits, s Sizes) uint64 {
	return uint64(s.ROB*b.ROBEntry) +
		uint64(s.IQ*b.IQEntry) +
		uint64(s.LQ*b.LQEntry) +
		uint64(s.SQ*b.SQEntry) +
		uint64(s.IntRegs*b.IntReg) +
		uint64(s.FpRegs*b.FpReg) +
		uint64(s.IntFUs*b.IntFU) +
		uint64(s.FpFUs*b.FpFU)
}
