package ace

// Ledger accumulates the ACE bit-cycles of one simulation run. The core
// reports a window for every structure entry that *commits*; squashed
// state is un-ACE and is simply never reported.
//
// The ledger also owns the two monotone blocked-cycle counters used for
// Figure 5 attribution. The core calls TickBlocked once per cycle with the
// current blocking state; windows snapshot Cum() at their start and the
// core passes the overlap deltas to Add.
type Ledger struct {
	abc         [NumStructures]uint64 //rarlint:unit bitcycles
	headBlocked [NumStructures]uint64 //rarlint:unit bitcycles
	fullStall   [NumStructures]uint64 //rarlint:unit bitcycles

	//rarlint:nscaled blocked-cycle accumulator: Advance adds n where TickBlocked adds 1
	cumHeadBlocked uint64 //rarlint:unit cycles
	//rarlint:nscaled blocked-cycle accumulator: Advance adds n where TickBlocked adds 1
	cumFullStall uint64 //rarlint:unit cycles

	// Optional timeline bucketing (timeline.go).
	windowCycles uint64
	nowCycle     uint64 //rarlint:nscaled SetCycle lands the ledger on the post-skip cycle; intermediate values are never observed
	windows      []uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// TickBlocked advances the blocked-cycle counters for one cycle.
// headBlocked is true while an LLC-miss load blocks commit at the ROB
// head; fullStall additionally requires the ROB to be full. fullStall
// implies headBlocked.
func (l *Ledger) TickBlocked(headBlocked, fullStall bool) {
	l.Advance(headBlocked, fullStall, 1)
}

// Advance bulk-applies n cycles of TickBlocked with a constant blocking
// state. The core's stall fast-forward uses it to integrate ledger
// residency over a skipped quiescent window: because the blocking state
// cannot change while no pipeline event fires, n identical ticks collapse
// into one addition, and Cum() afterwards is exactly what n TickBlocked
// calls would have produced.
func (l *Ledger) Advance(headBlocked, fullStall bool, n uint64) {
	if headBlocked {
		l.cumHeadBlocked += n
	}
	if fullStall {
		l.cumFullStall += n
	}
}

// Cum returns the current blocked-cycle counter values. The core snapshots
// these at each window-start event (dispatch, issue, writeback).
//
//rarlint:pure
func (l *Ledger) Cum() (headBlocked, fullStall uint64) {
	return l.cumHeadBlocked, l.cumFullStall
}

// Add records a committed vulnerability window: bits exposed for cycles,
// of which hbOverlap cycles fell inside ROB-head-blocked intervals and
// fsOverlap inside full-ROB-stall intervals.
func (l *Ledger) Add(s Structure, bits, cycles, hbOverlap, fsOverlap uint64) {
	l.abc[s] += bits * cycles
	l.headBlocked[s] += bits * hbOverlap
	l.fullStall[s] += bits * fsOverlap
	if l.windowCycles != 0 {
		l.bookWindow(bits * cycles)
	}
}

// ABC returns the per-structure ACE bit counts.
//
//rarlint:pure
func (l *Ledger) ABC() [NumStructures]uint64 { return l.abc }

// TotalABC returns the run's total ACE bit count (Equation 1).
//
//rarlint:pure
//rarlint:unit bitcycles
func (l *Ledger) TotalABC() uint64 {
	var t uint64
	for _, v := range l.abc {
		t += v
	}
	return t
}

// HeadBlockedABC returns the ACE bit count exposed while an LLC-miss load
// blocked the ROB head (the 'ROB head blocked' bar of Figure 5).
//
//rarlint:pure
//rarlint:unit bitcycles
func (l *Ledger) HeadBlockedABC() uint64 {
	var t uint64
	for _, v := range l.headBlocked {
		t += v
	}
	return t
}

// FullStallABC returns the ACE bit count exposed during full-ROB stalls
// (the 'full-ROB stall' bar of Figure 5).
//
//rarlint:pure
//rarlint:unit bitcycles
func (l *Ledger) FullStallABC() uint64 {
	var t uint64
	for _, v := range l.fullStall {
		t += v
	}
	return t
}

// AVF returns the architectural vulnerability factor of a run
// (Equation 2): ABC / (N × T).
//
//rarlint:pure
//rarlint:unit 1
func AVF(abc, totalBits, cycles uint64) float64 {
	if totalBits == 0 || cycles == 0 {
		return 0
	}
	return float64(abc) / (float64(totalBits) * float64(cycles))
}

// MTTFRel returns the mean-time-to-failure of a scheme relative to a
// baseline (higher is better). From Equations 2–4, with the raw error
// rate and bit count N identical across schemes on the same core:
//
//	MTTF_rel = AVF_base / AVF_scheme
//	         = (ABC_base / ABC_scheme) × (T_scheme / T_base)
//
// The runtime ratio is what makes the paper's PRE result subtle: PRE
// reduces ABC by ~28% but also runtime by a similar factor, leaving MTTF
// flat, while RAR reduces ABC far more than runtime and wins 4.8×.
//
//rarlint:pure
//rarlint:unit 1
func MTTFRel(abcBase, cycBase, abcScheme, cycScheme uint64) float64 {
	if abcScheme == 0 || cycBase == 0 {
		return 0
	}
	return (float64(abcBase) / float64(abcScheme)) *
		(float64(cycScheme) / float64(cycBase))
}
