package ace

// Timeline support: the ledger can optionally bucket committed ACE
// bit-cycles into fixed-width cycle windows, giving the AVF-over-time
// series used to study vulnerability phase behaviour (cf. Fu et al.,
// "Characterizing microarchitecture soft error vulnerability phase
// behavior"). A window's ABC is attributed at resolution time (commit), so
// a long-lived entry books into the window its commit falls in — adequate
// for phase plots at window sizes well above the memory latency.

// Window is one timeline bucket.
type Window struct {
	// StartCycle is the window's first cycle.
	StartCycle uint64
	// ABC is the ACE bit count resolved in this window.
	ABC uint64
}

// EnableTimeline turns on windowed accounting with the given window width
// in cycles. Must be called before simulation starts.
func (l *Ledger) EnableTimeline(windowCycles uint64) {
	if windowCycles == 0 {
		windowCycles = 100_000
	}
	l.windowCycles = windowCycles
}

// SetCycle informs the ledger of the current simulation cycle, for window
// selection. The core calls this once per cycle (cheap: one store).
func (l *Ledger) SetCycle(cycle uint64) { l.nowCycle = cycle }

// Timeline returns the windowed ABC series (nil when not enabled).
func (l *Ledger) Timeline() []Window {
	out := make([]Window, len(l.windows))
	for i, abc := range l.windows {
		out[i] = Window{StartCycle: uint64(i) * l.windowCycles, ABC: abc}
	}
	return out
}

// bookWindow attributes bits*cycles to the current window.
func (l *Ledger) bookWindow(bitCycles uint64) {
	if l.windowCycles == 0 {
		return
	}
	idx := int(l.nowCycle / l.windowCycles)
	for len(l.windows) <= idx {
		l.windows = append(l.windows, 0)
	}
	l.windows[idx] += bitCycles
}

// WindowAVF converts a timeline window to an AVF given the core's bit
// count and the window width.
func WindowAVF(w Window, totalBits, windowCycles uint64) float64 {
	return AVF(w.ABC, totalBits, windowCycles)
}
