package ace

import "testing"

func TestTimelineBuckets(t *testing.T) {
	l := NewLedger()
	l.EnableTimeline(100)
	l.SetCycle(50)
	l.Add(ROB, 10, 5, 0, 0) // window 0: 50 bit-cycles
	l.SetCycle(150)
	l.Add(IQ, 10, 3, 0, 0) // window 1: 30
	l.SetCycle(350)
	l.Add(RF, 1, 7, 0, 0) // window 3: 7 (window 2 stays empty)

	w := l.Timeline()
	if len(w) != 4 {
		t.Fatalf("windows = %d", len(w))
	}
	wants := []uint64{50, 30, 0, 7}
	for i, want := range wants {
		if w[i].ABC != want {
			t.Errorf("window %d ABC = %d, want %d", i, w[i].ABC, want)
		}
		if w[i].StartCycle != uint64(i)*100 {
			t.Errorf("window %d start = %d", i, w[i].StartCycle)
		}
	}
	if got := WindowAVF(w[0], 100, 100); got != 50.0/(100*100) {
		t.Errorf("window AVF = %v", got)
	}
}

func TestTimelineDisabled(t *testing.T) {
	l := NewLedger()
	l.Add(ROB, 10, 5, 0, 0)
	if len(l.Timeline()) != 0 {
		t.Error("timeline must be empty when not enabled")
	}
}

func TestTimelineDefaultWidth(t *testing.T) {
	l := NewLedger()
	l.EnableTimeline(0)
	l.SetCycle(1)
	l.Add(ROB, 1, 1, 0, 0)
	if len(l.Timeline()) != 1 {
		t.Error("default window width not applied")
	}
}
