package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	if LineAddr(0x12345) != 0x12340 {
		t.Errorf("LineAddr = %#x", LineAddr(0x12345))
	}
	f := func(a uint64) bool {
		la := LineAddr(a)
		return la%LineSize == 0 && la <= a && a-la < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 4<<10, 4, 3)
	if _, hit := c.Lookup(0x1000, 10, false); hit {
		t.Error("cold cache must miss")
	}
	c.Insert(0x1000, 10, 10, false)
	avail, hit := c.Lookup(0x1000, 20, false)
	if !hit || avail != 23 {
		t.Errorf("hit avail = %d,%v want 23", avail, hit)
	}
	// Same line, different offset: still a hit.
	if _, hit := c.Lookup(0x1038, 20, false); !hit {
		t.Error("same-line access must hit")
	}
	if c.Misses() != 1 || c.Accesses() != 3 {
		t.Errorf("stats: %d/%d", c.Misses(), c.Accesses())
	}
}

func TestCacheInFlightFill(t *testing.T) {
	c := NewCache("t", 4<<10, 4, 3)
	c.Insert(0x2000, 500, 10, false) // fill completes at cycle 500
	avail, hit := c.Lookup(0x2000, 100, false)
	if !hit || avail != 500 {
		t.Errorf("in-flight merge avail = %d, want 500", avail)
	}
	avail, _ = c.Lookup(0x2000, 600, false)
	if avail != 603 {
		t.Errorf("post-fill avail = %d, want 603", avail)
	}
}

func TestCacheLRU(t *testing.T) {
	// 2-way cache with 64-byte lines: 2 sets of 2 ways at 256 bytes.
	c := NewCache("t", 256, 2, 1)
	setStride := uint64(2 * LineSize) // addresses mapping to set 0
	a, b, d := uint64(0), setStride*2, setStride*4
	c.Insert(a, 0, 1, false)
	c.Insert(b, 0, 2, false)
	c.Lookup(a, 3, false) // refresh a: b becomes LRU
	victim, wb := c.Insert(d, 0, 4, false)
	if wb {
		t.Error("clean victim must not write back")
	}
	if victim != b {
		t.Errorf("victim = %#x, want %#x", victim, b)
	}
	if _, hit := c.Lookup(a, 5, false); !hit {
		t.Error("a must survive")
	}
	if _, hit := c.Lookup(b, 5, false); hit {
		t.Error("b must be evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache("t", 256, 2, 1)
	setStride := uint64(2 * LineSize)
	c.Insert(0, 0, 1, true) // dirty
	c.Insert(setStride*2, 0, 2, false)
	victim, wb := c.Insert(setStride*4, 0, 3, false)
	if !wb || victim != 0 {
		t.Errorf("dirty eviction: victim=%#x wb=%v", victim, wb)
	}
}

func TestCacheMarkDirtyOnLookup(t *testing.T) {
	c := NewCache("t", 256, 2, 1)
	c.Insert(0, 0, 1, false)
	c.Lookup(0, 2, true) // store hit dirties the line
	c.Insert(2*LineSize*2, 0, 3, false)
	_, wb := c.Insert(2*LineSize*4, 0, 4, false)
	if !wb {
		t.Error("store-dirtied line must write back")
	}
}

func TestCacheContains(t *testing.T) {
	c := NewCache("t", 4<<10, 4, 3)
	if c.Contains(0x40) {
		t.Error("empty cache contains nothing")
	}
	c.Insert(0x40, 0, 1, false)
	if !c.Contains(0x40) || !c.Contains(0x7f) {
		t.Error("line must be present")
	}
	acc := c.Accesses()
	c.Contains(0x40)
	if c.Accesses() != acc {
		t.Error("Contains must not count as an access")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count must panic")
		}
	}()
	NewCache("bad", 3*LineSize, 1, 1)
}

// Property: inserting N distinct lines into a set never exceeds the
// associativity — exactly ways lines survive, and the survivors are the
// most recently used.
func TestCacheSetBound(t *testing.T) {
	f := func(n uint8) bool {
		c := NewCache("t", 512, 4, 1) // 2 sets x 4 ways
		count := int(n%32) + 8
		for i := 0; i < count; i++ {
			addr := uint64(i) * 2 * LineSize // all map to set 0
			c.Insert(addr, 0, uint64(i), false)
		}
		hits := 0
		for i := 0; i < count; i++ {
			if c.Contains(uint64(i) * 2 * LineSize) {
				hits++
			}
		}
		if hits != 4 {
			return false
		}
		// The last 4 inserted must be the survivors.
		for i := count - 4; i < count; i++ {
			if !c.Contains(uint64(i) * 2 * LineSize) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
