package mem

// MSHRs model the miss-status holding registers of a cache level: a small
// file of outstanding line misses. A second miss to an in-flight line
// merges with the existing entry; a miss that needs a new entry when the
// file is full must be retried later by the requester (the core replays
// the load).
type MSHRs struct {
	entries []mshrEntry
	size    int

	allocs uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	merges uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	full   uint64 //rarlint:quiescent back-pressure flag: recomputed on each stage-driven access
	peak   int    //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
}

type mshrEntry struct {
	line   uint64
	fillAt uint64
	valid  bool
}

// NewMSHRs builds a file with the given number of registers.
func NewMSHRs(size int) *MSHRs {
	return &MSHRs{entries: make([]mshrEntry, size), size: size}
}

// reap retires entries whose fill has completed by cycle now.
func (m *MSHRs) reap(now uint64) {
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].fillAt <= now {
			m.entries[i].valid = false
		}
	}
}

// Lookup reports whether the line holding addr is already outstanding and,
// if so, when its fill completes.
func (m *MSHRs) Lookup(addr, now uint64) (fillAt uint64, merged bool) {
	m.reap(now)
	line := LineAddr(addr)
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].line == line {
			m.merges++
			return m.entries[i].fillAt, true
		}
	}
	return 0, false
}

// Allocate reserves a register for the line holding addr, filling at cycle
// fillAt. It reports false when the file is full (the access must retry).
func (m *MSHRs) Allocate(addr, now, fillAt uint64) bool {
	m.reap(now)
	line := LineAddr(addr)
	for i := range m.entries {
		if !m.entries[i].valid {
			m.entries[i] = mshrEntry{line: line, fillAt: fillAt, valid: true}
			m.allocs++
			if n := m.Outstanding(now); n > m.peak {
				m.peak = n
			}
			return true
		}
	}
	m.full++
	return false
}

// NextFillAt returns the earliest cycle after now at which an in-flight
// miss completes its fill, or ok=false when nothing is outstanding. The
// core's stall fast-forward uses it as a conservative bound on how far the
// clock may skip: every DRAM/LLC return time is registered here, so no
// data arrival can fall inside a skipped window. Read-only: unlike the
// access paths it does not reap expired entries.
//
//rarlint:pure
func (m *MSHRs) NextFillAt(now uint64) (fillAt uint64, ok bool) {
	for i := range m.entries {
		if !m.entries[i].valid || m.entries[i].fillAt <= now {
			continue
		}
		if !ok || m.entries[i].fillAt < fillAt {
			fillAt, ok = m.entries[i].fillAt, true
		}
	}
	return fillAt, ok
}

// Outstanding returns the number of in-flight misses at cycle now.
//
//rarlint:pure
func (m *MSHRs) Outstanding(now uint64) int {
	n := 0
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].fillAt > now {
			n++
		}
	}
	return n
}

// Size returns the register count.
//
//rarlint:pure
func (m *MSHRs) Size() int { return m.size }

// FullStalls returns how many allocations failed because the file was full.
//
//rarlint:pure
func (m *MSHRs) FullStalls() uint64 { return m.full }

// Merges returns how many misses merged with an in-flight entry.
//
//rarlint:pure
func (m *MSHRs) Merges() uint64 { return m.merges }

// Peak returns the peak simultaneous occupancy observed.
//
//rarlint:pure
func (m *MSHRs) Peak() int { return m.peak }
