package mem

import "testing"

func newTestHierarchy(pf PrefetchMode) *Hierarchy {
	cfg := DefaultConfig()
	cfg.Prefetch = pf
	cfg.PrefetchDegree = 4
	return NewHierarchy(cfg)
}

func TestHierarchyLatencyLadder(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	cold := h.Access(0x40000000, 100, KindLoad)
	if !cold.LLCMiss || cold.HitLevel != 4 {
		t.Fatalf("cold access: %+v", cold)
	}
	coldLat := cold.DoneAt - 100

	// After the fill, the same line hits in L1 at L1 latency.
	warm := h.Access(0x40000000, cold.DoneAt+10, KindLoad)
	if warm.HitLevel != 1 {
		t.Fatalf("warm access level %d", warm.HitLevel)
	}
	if lat := warm.DoneAt - (cold.DoneAt + 10); lat != h.Config().L1DLat {
		t.Errorf("L1 hit latency = %d", lat)
	}
	if coldLat < h.Config().L3Lat+h.Config().L2Lat {
		t.Errorf("cold latency %d suspiciously small", coldLat)
	}
}

func TestHierarchyL2L3Hits(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	addr := uint64(0x50000000)
	first := h.Access(addr, 0, KindLoad)

	// Evict from L1 by filling its set (L1D: 32KiB/8way/64B = 64 sets;
	// same set every 64*64 = 4096 bytes).
	now := first.DoneAt + 1
	for i := 1; i <= 8; i++ {
		r := h.Access(addr+uint64(i)*4096, now, KindLoad)
		now = r.DoneAt + 1
	}
	res := h.Access(addr, now, KindLoad)
	if res.HitLevel != 2 {
		t.Errorf("expected L2 hit after L1 eviction, got level %d", res.HitLevel)
	}
	if res.LLCMiss {
		t.Error("L2 hit flagged as LLC miss")
	}
}

func TestHierarchyMSHRStall(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	n := h.Config().MSHRs
	for i := 0; i < n; i++ {
		r := h.Access(uint64(0x60000000)+uint64(i)<<12, 10, KindLoad)
		if r.MSHRStall {
			t.Fatalf("unexpected stall at miss %d", i)
		}
	}
	r := h.Access(0x70000000, 11, KindLoad)
	if !r.MSHRStall {
		t.Error("21st outstanding miss must stall")
	}
	s := h.Snapshot()
	if s.MSHRFullStalls == 0 {
		t.Error("stall not counted")
	}
}

func TestHierarchyMergeInFlight(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	a := h.Access(0x40000000, 100, KindLoad)
	b := h.Access(0x40000008, 110, KindLoad) // same line, fill in flight
	if b.DoneAt != a.DoneAt {
		t.Errorf("merged access DoneAt=%d want %d", b.DoneAt, a.DoneAt)
	}
	s := h.Snapshot()
	if s.DemandLLCMisses != 1 {
		t.Errorf("merge must not double-count misses: %d", s.DemandLLCMisses)
	}
	if s.DemandLoads != 2 {
		t.Errorf("demand loads = %d", s.DemandLoads)
	}
}

func TestHierarchyKinds(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	h.Access(0x40000000, 0, KindWrongPath)
	h.Access(0x41000000, 0, KindRunahead)
	s := h.Snapshot()
	if s.DemandLoads != 0 || s.DemandLLCMisses != 0 {
		t.Error("speculative kinds must not count as demand")
	}
	if s.LLCMissCycles == 0 {
		t.Error("runahead misses must count toward MLP")
	}
}

func TestHierarchyMLP(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	// Two overlapping misses to different lines: MLP approaches 2.
	a := h.Access(0x40000000, 100, KindLoad)
	h.Access(0x48000000, 101, KindLoad)
	_ = a
	s := h.Snapshot()
	mlp := s.MLP()
	if mlp < 1.5 || mlp > 2.1 {
		t.Errorf("overlapped MLP = %v", mlp)
	}

	h2 := newTestHierarchy(PrefetchOff)
	// Two disjoint misses: MLP stays ~1.
	r := h2.Access(0x40000000, 100, KindLoad)
	h2.Access(0x48000000, r.DoneAt+50, KindLoad)
	if mlp := h2.Snapshot().MLP(); mlp > 1.05 {
		t.Errorf("serial MLP = %v", mlp)
	}
}

func TestHierarchyStores(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	r := h.Access(0x40000000, 0, KindStore)
	if r.MSHRStall {
		t.Fatal("store stalled")
	}
	// Write-allocate: the line is now present and dirty; evicting it later
	// produces DRAM write traffic. Touch enough conflicting lines to force
	// it all the way out of the 16-way L3.
	now := r.DoneAt + 1
	l3Sets := uint64((1 << 20) / (16 * LineSize))
	for i := 1; i <= 40; i++ {
		rr := h.Access(0x40000000+uint64(i)*l3Sets*LineSize, now, KindLoad)
		if !rr.MSHRStall {
			now = rr.DoneAt + 1
		} else {
			now += 200
		}
	}
	if h.Snapshot().DRAMWrites == 0 {
		t.Error("dirty eviction never wrote back to DRAM")
	}
}

func TestPrefetchL3Mode(t *testing.T) {
	h := newTestHierarchy(PrefetchL3)
	base := uint64(0x40000000)
	now := uint64(0)
	for i := 0; i < 6; i++ {
		r := h.Access(base+uint64(i)*LineSize, now, KindLoad)
		now = r.DoneAt + 1
	}
	s := h.Snapshot()
	if s.PrefetchIssued == 0 {
		t.Fatal("L3 prefetcher never triggered")
	}
	// A line ahead of the demand stream is in L3 but not in L1.
	ahead := base + 8*LineSize
	if !h.L3.Contains(ahead) {
		t.Error("prefetched line missing from L3")
	}
	if h.L1D.Contains(ahead) {
		t.Error("+L3 mode must not fill the L1")
	}
}

func TestPrefetchAllMode(t *testing.T) {
	h := newTestHierarchy(PrefetchAll)
	base := uint64(0x40000000)
	now := uint64(0)
	for i := 0; i < 6; i++ {
		r := h.Access(base+uint64(i)*LineSize, now, KindLoad)
		now = r.DoneAt + 1
	}
	ahead := base + 8*LineSize
	if !h.L1D.Contains(ahead) {
		t.Error("+ALL mode must fill the L1")
	}
}

func TestFetchAccess(t *testing.T) {
	h := newTestHierarchy(PrefetchOff)
	first := h.FetchAccess(0x1000, 0)
	if first <= h.Config().L1ILat {
		t.Error("cold fetch should miss")
	}
	second := h.FetchAccess(0x1004, first+1)
	if second != first+1+h.Config().L1ILat {
		t.Errorf("warm fetch latency = %d", second-(first+1))
	}
}
