package mem

import "testing"

func TestMSHRAllocateAndMerge(t *testing.T) {
	m := NewMSHRs(4)
	if !m.Allocate(0x1000, 10, 300) {
		t.Fatal("allocation into empty file failed")
	}
	fill, merged := m.Lookup(0x1010, 20) // same line
	if !merged || fill != 300 {
		t.Errorf("merge = %d,%v", fill, merged)
	}
	if _, merged := m.Lookup(0x2000, 20); merged {
		t.Error("different line must not merge")
	}
	if m.Merges() != 1 {
		t.Errorf("merges = %d", m.Merges())
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHRs(2)
	if !m.Allocate(0x1000, 0, 100) || !m.Allocate(0x2000, 0, 100) {
		t.Fatal("allocations failed")
	}
	if m.Allocate(0x3000, 10, 100) {
		t.Error("third allocation must fail in a 2-entry file")
	}
	if m.FullStalls() != 1 {
		t.Errorf("full stalls = %d", m.FullStalls())
	}
	if m.Outstanding(10) != 2 {
		t.Errorf("outstanding = %d", m.Outstanding(10))
	}
}

func TestMSHRReap(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(0x1000, 0, 50)
	m.Allocate(0x2000, 0, 60)
	// After the fills complete, the registers free up.
	if !m.Allocate(0x3000, 100, 300) {
		t.Error("completed fills must be reaped")
	}
	if _, merged := m.Lookup(0x1000, 100); merged {
		t.Error("completed fill must not merge")
	}
	if m.Outstanding(100) != 1 {
		t.Errorf("outstanding after reap = %d", m.Outstanding(100))
	}
}

func TestMSHRPeak(t *testing.T) {
	m := NewMSHRs(8)
	for i := 0; i < 5; i++ {
		m.Allocate(uint64(i)<<12, 0, 1000)
	}
	if m.Peak() != 5 {
		t.Errorf("peak = %d", m.Peak())
	}
	if m.Size() != 8 {
		t.Errorf("size = %d", m.Size())
	}
}
