// Package mem implements the simulated memory hierarchy: set-associative
// write-back caches with LRU replacement, miss-status holding registers
// (MSHRs) with secondary-miss merging at the L1D, a stride/stream hardware
// prefetcher (up to 16 streams, attachable at the LLC or at every level),
// and a DDR3-style DRAM model with ranks, banks, open-row timing and data
// bus serialisation.
//
// The hierarchy is a timing model: caches store tags, not data. An access
// walks the levels at the moment the core executes the memory operation and
// returns the cycle at which the data arrives; lines are installed
// immediately with a readyAt timestamp, so later accesses to an in-flight
// line naturally merge with the outstanding fill.
package mem

// LineSize is the cache line size in bytes at every level.
const LineSize = 64

const lineShift = 6

// LineAddr returns the line-aligned address of addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

type cacheLine struct {
	tag uint64 //rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
	//rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
	readyAt uint64 // cycle the fill completes; 0 for lines present "forever"
	//rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
	lastUse uint64 // LRU timestamp
	valid   bool   //rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
	dirty   bool   //rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
}

// Cache is one set-associative, write-back, write-allocate cache level.
type Cache struct {
	name    string
	ways    int
	setMask uint64
	latency uint64
	lines   []cacheLine // sets*ways, way-major within a set

	// stats
	accesses uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	misses   uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
}

// NewCache builds a cache of sizeBytes with the given associativity and
// access latency (cycles). sizeBytes must be a multiple of ways*LineSize
// and the resulting set count must be a power of two.
func NewCache(name string, sizeBytes, ways int, latency uint64) *Cache {
	sets := sizeBytes / (ways * LineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("mem: " + name + ": set count must be a power of two")
	}
	return &Cache{
		name:    name,
		ways:    ways,
		setMask: uint64(sets - 1),
		latency: latency,
		lines:   make([]cacheLine, sets*ways),
	}
}

// Name returns the cache's name ("L1D", "L2", ...).
func (c *Cache) Name() string { return c.name }

// Latency returns the lookup latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

func (c *Cache) set(addr uint64) []cacheLine {
	s := (addr >> lineShift) & c.setMask
	return c.lines[s*uint64(c.ways) : (s+1)*uint64(c.ways)]
}

// Lookup probes the cache at cycle now. On a hit it returns the cycle the
// data is available (now+latency, or later if the line's fill is still in
// flight) and refreshes LRU. markDirty sets the dirty bit on a hit.
func (c *Cache) Lookup(addr, now uint64, markDirty bool) (availAt uint64, hit bool) {
	c.accesses++
	tag := addr >> lineShift
	set := c.set(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lastUse = now
			if markDirty {
				l.dirty = true
			}
			avail := now + c.latency
			if l.readyAt > avail {
				avail = l.readyAt
			}
			return avail, true
		}
	}
	c.misses++
	return 0, false
}

// Contains reports whether the line holding addr is present, without
// touching LRU or stats.
func (c *Cache) Contains(addr uint64) bool {
	tag := addr >> lineShift
	for i := range c.set(addr) {
		l := &c.set(addr)[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Insert installs the line holding addr with the given fill-completion
// cycle, evicting the LRU way. It returns the victim's address and whether
// the victim was dirty (needs a writeback).
func (c *Cache) Insert(addr, readyAt, now uint64, dirty bool) (victimAddr uint64, writeback bool) {
	tag := addr >> lineShift
	set := c.set(addr)
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			// Already present (racing fills merge).
			if readyAt < l.readyAt {
				l.readyAt = readyAt
			}
			l.dirty = l.dirty || dirty
			return 0, false
		}
		if !l.valid {
			victim = l
			break
		}
		if l.lastUse < victim.lastUse {
			victim = l
		}
	}
	victimAddr, writeback = victim.tag<<lineShift, victim.valid && victim.dirty
	*victim = cacheLine{tag: tag, readyAt: readyAt, lastUse: now, valid: true, dirty: dirty}
	return victimAddr, writeback
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of lookups that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}
