package mem

// SharedLLC bundles the memory-system components that multiple cores
// share: the last-level cache, the DRAM behind it, and — when prefetching
// at the LLC — the stride prefetcher that trains on the combined access
// stream. Each core keeps private L1s, L2 and MSHRs.
//
// Multicore drivers step cores in lockstep (one cycle each, round-robin),
// so the shared components see interleaved accesses with consistent
// timestamps and model real contention: LLC capacity pressure from
// co-runners and DRAM bank/bus queueing across cores.
type SharedLLC struct {
	L3   *Cache
	DRAM *DRAM
	PF   *StridePrefetcher
}

// NewSharedLLC builds the shared components from cfg.
func NewSharedLLC(cfg Config) *SharedLLC {
	s := &SharedLLC{
		L3:   NewCache("L3", cfg.L3Size, cfg.L3Ways, cfg.L3Lat),
		DRAM: NewDRAM(cfg.DRAM),
	}
	if cfg.Prefetch == PrefetchL3 {
		s.PF = NewStridePrefetcher(cfg.PrefetchDegree)
	}
	return s
}

// NewHierarchyWithShared builds a per-core hierarchy (private L1I/L1D/L2
// and MSHRs) on top of shared LLC components.
func NewHierarchyWithShared(cfg Config, shared *SharedLLC) *Hierarchy {
	h := &Hierarchy{
		cfg:   cfg,
		L1I:   NewCache("L1I", cfg.L1ISize, cfg.L1IWays, cfg.L1ILat),
		L1D:   NewCache("L1D", cfg.L1DSize, cfg.L1DWays, cfg.L1DLat),
		L2:    NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Lat),
		L3:    shared.L3,
		mshrs: NewMSHRs(cfg.MSHRs),
		dram:  shared.DRAM,
	}
	switch cfg.Prefetch {
	case PrefetchL3:
		h.pf = shared.PF
	case PrefetchAll:
		h.pf = NewStridePrefetcher(cfg.PrefetchDegree)
	}
	return h
}
