package mem

// Kind classifies an access for statistics and policy. Wrong-path and
// runahead accesses are real traffic (they move lines and occupy MSHRs)
// but are accounted separately so that MPKI — defined over committed
// instructions — is not polluted by speculation.
type Kind uint8

const (
	// KindLoad is a correct-path demand load.
	KindLoad Kind = iota
	// KindStore is a committed store (write-allocate).
	KindStore
	// KindWrongPath is a load issued down a mispredicted path.
	KindWrongPath
	// KindRunahead is a load issued during runahead execution. Runahead
	// loads are the prefetch mechanism of runahead and count toward MLP.
	KindRunahead
	// KindIFetch is an instruction fetch.
	KindIFetch
)

// Result describes the outcome of a data access.
type Result struct {
	// DoneAt is the cycle the data is available to the core.
	DoneAt uint64 //rarlint:unit cycles
	// HitLevel is 1..3 for a cache hit at that level, 4 for DRAM.
	HitLevel int
	// LLCMiss reports whether the access missed the last-level cache and
	// went to memory.
	LLCMiss bool
	// MSHRStall reports that no MSHR was available: the access did not
	// happen and must be retried. All other fields are zero.
	MSHRStall bool
}

// Config describes the hierarchy geometry and timing.
type Config struct {
	L1ISize, L1IWays int
	L1ILat           uint64
	L1DSize, L1DWays int
	L1DLat           uint64
	L2Size, L2Ways   int
	L2Lat            uint64
	L3Size, L3Ways   int
	L3Lat            uint64
	MSHRs            int
	DRAM             DRAMConfig
	Prefetch         PrefetchMode
	PrefetchDegree   int
}

// DefaultConfig returns the Table II hierarchy: 32 KiB 4-way L1I (2 cyc),
// 32 KiB 8-way L1D (4 cyc, 20 MSHRs), 256 KiB 8-way L2 (8 cyc), 1 MiB
// 16-way shared L3 (30 cyc), DDR3-1600, no prefetcher.
func DefaultConfig() Config {
	return Config{
		L1ISize: 32 << 10, L1IWays: 4, L1ILat: 2,
		L1DSize: 32 << 10, L1DWays: 8, L1DLat: 4,
		L2Size: 256 << 10, L2Ways: 8, L2Lat: 8,
		L3Size: 1 << 20, L3Ways: 16, L3Lat: 30,
		MSHRs: 20,
		DRAM:  DefaultDRAMConfig(),
	}
}

// Stats is a snapshot of hierarchy counters.
type Stats struct {
	DemandLoads     uint64 //rarlint:unit uops
	DemandLLCMisses uint64 //rarlint:unit uops
	LLCMissCycles   uint64 //rarlint:unit cycles -- Σ per-miss latency over demand+runahead misses
	LLCBusyCycles   uint64 //rarlint:unit cycles -- cycles with ≥1 such miss outstanding
	DRAMReads       uint64
	DRAMWrites      uint64
	PrefetchIssued  uint64
	MSHRFullStalls  uint64
}

// MLP returns the average number of outstanding long-latency misses over
// the cycles at least one is outstanding — the paper's MLP metric
// (Fig. 8b).
//
//rarlint:pure
//rarlint:unit 1
func (s Stats) MLP() float64 {
	if s.LLCBusyCycles == 0 {
		return 0
	}
	return float64(s.LLCMissCycles) / float64(s.LLCBusyCycles)
}

// Hierarchy is the full simulated memory system for one core.
type Hierarchy struct {
	cfg Config

	L1I, L1D, L2, L3 *Cache
	mshrs            *MSHRs
	dram             *DRAM
	pf               *StridePrefetcher

	demandLoads     uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	demandLLCMisses uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	missCycles      uint64 //rarlint:quiescent MLP accounting: feeds end-of-run stats, never timing
	busyCycles      uint64 //rarlint:quiescent MLP accounting: feeds end-of-run stats, never timing
	coveredUntil    uint64 //rarlint:quiescent MLP accounting cursor: feeds end-of-run stats, never timing
}

// NewHierarchy builds a single-core hierarchy from cfg (private LLC).
func NewHierarchy(cfg Config) *Hierarchy {
	return NewHierarchyWithShared(cfg, NewSharedLLC(cfg))
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// DRAM exposes the memory model, for stats.
func (h *Hierarchy) DRAM() *DRAM { return h.dram }

// MSHRs exposes the L1D miss file, for stats and occupancy queries.
func (h *Hierarchy) MSHRs() *MSHRs { return h.mshrs }

// Access performs a data access to addr at cycle now.
func (h *Hierarchy) Access(addr, now uint64, kind Kind) Result {
	isStore := kind == KindStore
	if kind == KindLoad {
		h.demandLoads++
	}

	if h.pf != nil && h.cfg.Prefetch == PrefetchAll {
		h.prefetch(h.pf.Train(addr, now), now, true)
	}

	// L1D.
	if avail, hit := h.L1D.Lookup(addr, now, isStore); hit {
		return Result{DoneAt: avail, HitLevel: 1}
	}

	// Merge with an outstanding miss, or claim an MSHR.
	if fill, merged := h.mshrs.Lookup(addr, now); merged {
		return Result{DoneAt: fill, HitLevel: 4}
	}
	if h.mshrs.Outstanding(now) >= h.mshrs.Size() {
		h.mshrs.full++
		return Result{MSHRStall: true}
	}

	res := h.fillFrom2(addr, now+h.cfg.L1DLat, kind)
	h.insert(h.L1D, h.L2, addr, res.DoneAt, now, isStore)
	h.mshrs.Allocate(addr, now, res.DoneAt)
	if res.LLCMiss {
		if kind == KindLoad {
			h.demandLLCMisses++
		}
		if kind == KindLoad || kind == KindRunahead {
			h.trackMLP(now, res.DoneAt)
		}
	}
	return res
}

// fillFrom2 resolves a miss below the L1D: probe L2, then L3, then DRAM.
// t is the cycle the request leaves the L1.
func (h *Hierarchy) fillFrom2(addr, t uint64, kind Kind) Result {
	if avail, hit := h.L2.Lookup(addr, t, false); hit {
		return Result{DoneAt: avail, HitLevel: 2}
	}
	t2 := t + h.cfg.L2Lat
	res := h.fillFrom3(addr, t2, kind)
	h.insert(h.L2, h.L3, addr, res.DoneAt, t2, false)
	return res
}

// fillFrom3 resolves a miss below the L2.
func (h *Hierarchy) fillFrom3(addr, t uint64, kind Kind) Result {
	if h.pf != nil && h.cfg.Prefetch == PrefetchL3 {
		h.prefetch(h.pf.Train(addr, t), t, false)
	}
	if avail, hit := h.L3.Lookup(addr, t, false); hit {
		return Result{DoneAt: avail, HitLevel: 3}
	}
	t3 := t + h.cfg.L3Lat
	done := h.dram.Access(addr, t3, false)
	victim, wb := h.L3.Insert(LineAddr(addr), done, t3, false)
	if wb {
		h.dram.Access(victim, t3, true)
	}
	return Result{DoneAt: done, HitLevel: 4, LLCMiss: true}
}

// insert installs a line into upper, spilling dirty victims into lower.
func (h *Hierarchy) insert(upper, lower *Cache, addr, readyAt, now uint64, dirty bool) {
	victim, wb := upper.Insert(LineAddr(addr), readyAt, now, dirty)
	if !wb {
		return
	}
	if lower != nil {
		// Write the victim back into the next level (install if the line
		// was evicted there in the meantime).
		if _, hit := lower.Lookup(victim, now, true); !hit {
			v2, wb2 := lower.Insert(victim, now, now, true)
			if wb2 {
				if lower == h.L3 {
					h.dram.Access(v2, now, true)
				} else {
					h.insert(h.L3, nil, v2, now, now, true)
				}
			}
		}
	} else {
		h.dram.Access(victim, now, true)
	}
}

// prefetch issues the prefetcher's requests. toL1 installs lines all the
// way up (the "+ALL" mode); otherwise lines land in the LLC only.
func (h *Hierarchy) prefetch(lines []uint64, now uint64, toL1 bool) {
	for _, la := range lines {
		if h.L3.Contains(la) {
			if toL1 && !h.L1D.Contains(la) {
				avail, _ := h.L3.Lookup(la, now, false)
				h.insert(h.L1D, h.L2, la, avail, now, false)
				h.insert(h.L2, h.L3, la, avail, now, false)
			}
			continue
		}
		done := h.dram.Access(la, now+h.cfg.L3Lat, false)
		victim, wb := h.L3.Insert(la, done, now, false)
		if wb {
			h.dram.Access(victim, now, true)
		}
		if toL1 {
			h.insert(h.L1D, h.L2, la, done, now, false)
			h.insert(h.L2, h.L3, la, done, now, false)
		}
	}
}

// NextFillAt returns the earliest cycle after now at which an outstanding
// L1D miss fills, or ok=false when none is in flight — the memory system's
// contribution to the core's next-event computation (see MSHRs.NextFillAt).
//
//rarlint:pure
func (h *Hierarchy) NextFillAt(now uint64) (uint64, bool) {
	return h.mshrs.NextFillAt(now)
}

// FetchAccess performs an instruction fetch of the line holding pc and
// returns the cycle the bytes are available.
func (h *Hierarchy) FetchAccess(pc, now uint64) uint64 {
	if avail, hit := h.L1I.Lookup(pc, now, false); hit {
		return avail
	}
	res := h.fillFrom2(pc, now+h.cfg.L1ILat, KindIFetch)
	h.insert(h.L1I, h.L2, pc, res.DoneAt, now, false)
	return res.DoneAt
}

// trackMLP accumulates the outstanding-miss integral for the MLP metric.
// Miss start times arrive in non-decreasing order within a run, so the
// union of busy intervals can be maintained with a single cursor.
func (h *Hierarchy) trackMLP(start, done uint64) {
	h.missCycles += done - start
	if start >= h.coveredUntil {
		h.busyCycles += done - start
	} else if done > h.coveredUntil {
		h.busyCycles += done - h.coveredUntil
	}
	if done > h.coveredUntil {
		h.coveredUntil = done
	}
}

// Snapshot returns the current statistics.
func (h *Hierarchy) Snapshot() Stats {
	s := Stats{
		DemandLoads:     h.demandLoads,
		DemandLLCMisses: h.demandLLCMisses,
		LLCMissCycles:   h.missCycles,
		LLCBusyCycles:   h.busyCycles,
		DRAMReads:       h.dram.Reads(),
		DRAMWrites:      h.dram.Writes(),
		MSHRFullStalls:  h.mshrs.FullStalls(),
	}
	if h.pf != nil {
		s.PrefetchIssued = h.pf.Issued()
	}
	return s
}
