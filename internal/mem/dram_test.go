package mem

import "testing"

func TestDRAMRowHitFaster(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	first := d.Access(0x1000, 100, false) // opens the row
	// Second access to the same page after the bank is free: row hit.
	second := d.Access(0x1040, first+100, false)
	hitLat := second - (first + 100)

	d2 := NewDRAM(DefaultDRAMConfig())
	d2.Access(0x1000, 100, false)
	// Different row, same bank: precharge + activate.
	cfg := DefaultDRAMConfig()
	conflictAddr := 0x1000 + cfg.PageBytes*uint64(cfg.BanksTotal)
	third := d2.Access(conflictAddr, first+100, false)
	confLat := third - (first + 100)

	if hitLat >= confLat {
		t.Errorf("row hit (%d) must beat row conflict (%d)", hitLat, confLat)
	}
	if d.RowHitRate() <= 0 {
		t.Error("row hit not recorded")
	}
}

func TestDRAMBankParallelism(t *testing.T) {
	cfg := DefaultDRAMConfig()
	// Two accesses to different banks largely overlap; to the same bank
	// (different rows) they serialise.
	dA := NewDRAM(cfg)
	dA.Access(0x0, 0, false)
	diffBank := dA.Access(cfg.PageBytes, 0, false) // bank 1

	dB := NewDRAM(cfg)
	dB.Access(0x0, 0, false)
	sameBank := dB.Access(cfg.PageBytes*uint64(cfg.BanksTotal), 0, false) // bank 0, next row

	if diffBank >= sameBank {
		t.Errorf("different banks (%d) must finish before same-bank conflict (%d)",
			diffBank, sameBank)
	}
}

func TestDRAMBusSerialisation(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	// Many simultaneous requests to different banks: the shared data bus
	// must space completions at least Burst apart.
	var done []uint64
	for i := 0; i < 8; i++ {
		done = append(done, d.Access(uint64(i)*cfg.PageBytes, 0, false))
	}
	for i := 1; i < len(done); i++ {
		if done[i] < done[i-1]+cfg.Burst {
			t.Errorf("bus overlap: done[%d]=%d done[%d]=%d", i-1, done[i-1], i, done[i])
		}
	}
}

func TestDRAMRowHitStreaming(t *testing.T) {
	// Consecutive row hits to one bank stream at burst rate, not at full
	// CAS latency per line (the CAS pipelining fix).
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	prev := d.Access(0x0, 0, false)
	for i := 1; i < 8; i++ {
		cur := d.Access(uint64(i)*LineSize, 0, false)
		if cur-prev > cfg.Burst {
			t.Errorf("row-hit stream spacing %d > burst %d", cur-prev, cfg.Burst)
		}
		prev = cur
	}
}

func TestDRAMStats(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	d.Access(0x0, 0, false)
	d.Access(0x40, 0, true)
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Errorf("reads/writes = %d/%d", d.Reads(), d.Writes())
	}
	if d.AvgReadLatency() <= 0 {
		t.Error("read latency not tracked")
	}
}

func TestDRAMZeroConfigDefaults(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	if got := d.Access(0x0, 0, false); got == 0 {
		t.Error("zero config must fall back to defaults")
	}
}
