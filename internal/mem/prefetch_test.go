package mem

import "testing"

func TestPrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(4)
	base := uint64(0x100000)
	var got []uint64
	for i := 0; i < 4; i++ {
		got = p.Train(base+uint64(i)*LineSize, uint64(i))
	}
	if len(got) != 4 {
		t.Fatalf("expected 4 prefetches after confirmation, got %d", len(got))
	}
	want := base + 4*LineSize
	if got[0] != want {
		t.Errorf("first prefetch %#x, want %#x", got[0], want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+LineSize {
			t.Errorf("prefetch stream not unit-stride: %#x after %#x", got[i], got[i-1])
		}
	}
	if p.Issued() == 0 {
		t.Error("issued counter not advanced")
	}
}

func TestPrefetcherNegativeStride(t *testing.T) {
	p := NewStridePrefetcher(2)
	base := uint64(0x200000)
	var got []uint64
	for i := 0; i < 4; i++ {
		got = p.Train(base-uint64(i)*LineSize, uint64(i))
	}
	if len(got) == 0 {
		t.Fatal("descending stream not detected")
	}
	if got[0] != base-4*LineSize {
		t.Errorf("first prefetch %#x", got[0])
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := NewStridePrefetcher(4)
	addrs := []uint64{0x1000, 0x9340, 0x22c0, 0x71c0, 0x1540, 0x8080}
	issued := 0
	for i, a := range addrs {
		issued += len(p.Train(a, uint64(i)))
	}
	if issued > 4 {
		t.Errorf("random pattern issued %d prefetches", issued)
	}
}

func TestPrefetcherRegionCrossing(t *testing.T) {
	p := NewStridePrefetcher(2)
	// Walk right across a 4 KiB region boundary; the stream must survive.
	start := uint64(0x10000000) + 4096 - 2*LineSize
	var last []uint64
	for i := 0; i < 6; i++ {
		last = p.Train(start+uint64(i)*LineSize, uint64(i))
	}
	if len(last) == 0 {
		t.Error("stream lost at region boundary")
	}
}

func TestPrefetcherStreamCapacity(t *testing.T) {
	p := NewStridePrefetcher(1)
	// Train 20 distinct regions; only 16 streams exist, but training must
	// not fail or panic, and established streams keep prefetching.
	for r := 0; r < 20; r++ {
		base := uint64(r+1) << 20
		for i := 0; i < 4; i++ {
			p.Train(base+uint64(i)*LineSize, uint64(r*10+i))
		}
	}
	if p.Issued() == 0 {
		t.Error("no prefetches under stream pressure")
	}
}

func TestPrefetchModeString(t *testing.T) {
	if PrefetchOff.String() != "off" || PrefetchL3.String() != "+L3" || PrefetchAll.String() != "+ALL" {
		t.Error("mode names")
	}
}
