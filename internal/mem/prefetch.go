package mem

// PrefetchMode selects where the stride prefetcher sits (Figure 11).
type PrefetchMode uint8

const (
	// PrefetchOff disables hardware prefetching (the baseline, §IV-A).
	PrefetchOff PrefetchMode = iota
	// PrefetchL3 trains on LLC accesses and fills prefetched lines into
	// the LLC only ("+L3").
	PrefetchL3
	// PrefetchAll trains at every cache level and fills into all three
	// levels ("+ALL").
	PrefetchAll
)

// String names the mode.
func (m PrefetchMode) String() string {
	switch m {
	case PrefetchOff:
		return "off"
	case PrefetchL3:
		return "+L3"
	case PrefetchAll:
		return "+ALL"
	}
	return "prefetch?"
}

// StridePrefetcher is an aggressive stride/stream prefetcher with up to 16
// concurrent streams (§V-F). Streams are tracked per 4 KiB region: two
// consecutive accesses with the same line stride confirm a stream, after
// which the prefetcher runs `degree` lines ahead of the demand stream.
type StridePrefetcher struct {
	streams [16]pfStream
	degree  int
	// buf is Train's reusable output buffer. Train fires on every demand
	// access when prefetching is on; its result is consumed synchronously
	// by the hierarchy before the next access, so one buffer suffices.
	buf []uint64 //rarlint:quiescent prefetch training table: trained and consulted only by stage-driven accesses

	issued uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	trains uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
}

type pfStream struct {
	region   uint64 //rarlint:quiescent prefetch training table: trained and consulted only by stage-driven accesses
	lastLine uint64 //rarlint:quiescent prefetch training table: trained and consulted only by stage-driven accesses
	stride   int64  //rarlint:quiescent prefetch training table: trained and consulted only by stage-driven accesses
	conf     int    //rarlint:quiescent prefetch training table: trained and consulted only by stage-driven accesses
	lastUse  uint64 //rarlint:quiescent prefetch training table: trained and consulted only by stage-driven accesses
	valid    bool   //rarlint:quiescent prefetch training table: trained and consulted only by stage-driven accesses
}

// NewStridePrefetcher builds a prefetcher that runs degree lines ahead.
func NewStridePrefetcher(degree int) *StridePrefetcher {
	if degree <= 0 {
		degree = 4
	}
	return &StridePrefetcher{degree: degree, buf: make([]uint64, 0, degree)}
}

// Train observes a demand access and returns the line addresses to
// prefetch (empty when no stream is confident).
func (p *StridePrefetcher) Train(addr, now uint64) []uint64 {
	p.trains++
	line := addr >> lineShift
	region := addr >> 12

	// Find the stream for this region, or a victim.
	var s *pfStream
	victim := &p.streams[0]
	for i := range p.streams {
		st := &p.streams[i]
		if st.valid && st.region == region {
			s = st
			break
		}
		if !st.valid {
			victim = st
		} else if victim.valid && st.lastUse < victim.lastUse {
			victim = st
		}
	}
	if s == nil {
		// Streams frequently cross region boundaries; look for a stream
		// whose projection lands on this line so it survives the crossing.
		for i := range p.streams {
			st := &p.streams[i]
			if st.valid && st.conf >= 2 && int64(st.lastLine)+st.stride == int64(line) {
				s = st
				s.region = region
				break
			}
		}
	}
	if s == nil {
		*victim = pfStream{region: region, lastLine: line, lastUse: now, valid: true}
		return nil
	}

	s.lastUse = now
	delta := int64(line) - int64(s.lastLine)
	if delta == 0 {
		return nil
	}
	if delta == s.stride {
		if s.conf < 4 {
			s.conf++
		}
	} else {
		s.stride = delta
		s.conf = 1
	}
	s.lastLine = line
	if s.conf < 2 || s.stride == 0 {
		return nil
	}

	out := p.buf[:0]
	next := int64(line)
	for i := 0; i < p.degree; i++ {
		next += s.stride
		if next <= 0 {
			break
		}
		out = append(out, uint64(next)<<lineShift)
	}
	p.buf = out
	p.issued += uint64(len(out))
	return out
}

// Issued returns the total number of prefetch requests generated.
func (p *StridePrefetcher) Issued() uint64 { return p.issued }
