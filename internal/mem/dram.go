package mem

// DRAMConfig describes the memory device timing, expressed in CPU cycles.
// The defaults model DDR3-1600 behind a 2.66 GHz core (Table II): the
// 800 MHz DDR bus gives a CPU/memory clock ratio of 3.325, and
// tRP-tCL-tRCD of 11-11-11 memory cycles is ~37 CPU cycles each. A 64-byte
// line moves in 8 beats over the 64-bit bus: 4 memory cycles ≈ 14 CPU
// cycles of data-bus occupancy.
type DRAMConfig struct {
	Ranks      int
	BanksTotal int    // banks across all ranks
	PageBytes  uint64 // row-buffer size
	TRP        uint64 // precharge, CPU cycles
	TRCD       uint64 // activate, CPU cycles
	TCL        uint64 // CAS, CPU cycles
	Burst      uint64 // data transfer time per line, CPU cycles
	Ctrl       uint64 // fixed controller/queueing overhead, CPU cycles
}

// DefaultDRAMConfig returns the Table II DDR3-1600 configuration.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Ranks:      4,
		BanksTotal: 32,
		PageBytes:  4096,
		TRP:        37,
		TRCD:       37,
		TCL:        37,
		Burst:      14,
		Ctrl:       20,
	}
}

type dramBank struct {
	openRow   uint64 //rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
	busyUntil uint64 //rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
	hasOpen   bool   //rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt
}

// DRAM is an open-row DDR-style memory model: per-bank row buffers and
// busy times plus a shared data bus. It is deliberately simple — FCFS per
// bank — but reproduces the latency structure that matters for runahead:
// row hits are cheap, row conflicts are expensive, and independent misses
// to different banks overlap (bank-level parallelism).
type DRAM struct {
	cfg       DRAMConfig
	banks     []dramBank
	busFreeAt uint64 //rarlint:quiescent memory-side state: advances only on stage-driven accesses; the stall-ending fill is covered by NextFillAt

	reads    uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	writes   uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	rowHits  uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
	totalLat uint64 //rarlint:quiescent stat counter: aggregated into the report after the run, never consulted by timing decisions
}

// NewDRAM builds a DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.BanksTotal <= 0 {
		cfg = DefaultDRAMConfig()
	}
	return &DRAM{cfg: cfg, banks: make([]dramBank, cfg.BanksTotal)}
}

// Access performs a read (write=false) or writeback (write=true) of the
// line at addr arriving at the controller at cycle now, and returns the
// cycle at which the data transfer completes.
func (d *DRAM) Access(addr, now uint64, write bool) uint64 {
	cfg := &d.cfg
	pageIdx := addr / cfg.PageBytes
	bankIdx := pageIdx % uint64(len(d.banks))
	row := pageIdx / uint64(len(d.banks))
	b := &d.banks[bankIdx]

	start := now + cfg.Ctrl
	if b.busyUntil > start {
		start = b.busyUntil
	}

	// CAS latency pipelines across consecutive accesses to an open row:
	// the bank is only occupied for the activate/precharge work plus the
	// data transfer, so row-hit streams move at burst rate, while row
	// conflicts pay the full precharge+activate penalty.
	var lat, bankBusy uint64
	switch {
	case b.hasOpen && b.openRow == row:
		lat = cfg.TCL
		bankBusy = cfg.Burst
		d.rowHits++
	case !b.hasOpen:
		lat = cfg.TRCD + cfg.TCL
		bankBusy = cfg.TRCD + cfg.Burst
	default:
		lat = cfg.TRP + cfg.TRCD + cfg.TCL
		bankBusy = cfg.TRP + cfg.TRCD + cfg.Burst
	}
	b.openRow, b.hasOpen = row, true

	dataStart := start + lat
	if d.busFreeAt > dataStart {
		dataStart = d.busFreeAt
	}
	done := dataStart + cfg.Burst
	d.busFreeAt = done
	b.busyUntil = start + bankBusy

	if write {
		d.writes++
	} else {
		d.reads++
		d.totalLat += done - now
	}
	return done
}

// Reads returns the number of read transactions serviced.
func (d *DRAM) Reads() uint64 { return d.reads }

// Writes returns the number of writeback transactions serviced.
func (d *DRAM) Writes() uint64 { return d.writes }

// RowHitRate returns the fraction of transactions that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	t := d.reads + d.writes
	if t == 0 {
		return 0
	}
	return float64(d.rowHits) / float64(t)
}

// AvgReadLatency returns the mean read latency in CPU cycles.
func (d *DRAM) AvgReadLatency() float64 {
	if d.reads == 0 {
		return 0
	}
	return float64(d.totalLat) / float64(d.reads)
}
