// Package trace synthesizes the dynamic instruction streams the simulated
// core executes.
//
// The paper evaluates on 500M-instruction SimPoints of SPEC CPU2006/2017.
// Those binaries and traces are proprietary, so this package substitutes
// deterministic synthetic workloads: each benchmark the paper names is
// modelled as a small "program" of looping kernels whose instruction mix,
// dependence structure, memory-access pattern, and branch behaviour
// reproduce the characteristics the paper's analysis relies on — LLC MPKI
// band, pointer-chasing versus streaming memory-level parallelism,
// branch mispredictions in the shadow of LLC misses (mcf, gcc), and
// issue-queue pressure from long floating-point dependence chains (lbm).
// See DESIGN.md §1 for the substitution rationale.
//
// A Generator walks the program and emits isa.Inst records one at a time.
// Generation is pure and seeded: the same (Benchmark, seed) always produces
// the same stream, byte for byte.
package trace

import "rarsim/internal/isa"

// Pattern selects how a memory stream produces addresses.
type Pattern uint8

const (
	// Seq walks the stream's region sequentially with a fixed small
	// stride (streaming: libquantum-, lbm-style). Consecutive accesses
	// usually hit the same cache line; a new line is touched every
	// line/stride accesses and misses if the region exceeds the LLC.
	Seq Pattern = iota
	// Strided walks the region with a large stride so that every access
	// touches a new line (leslie3d-, milc-style). Highly prefetchable.
	Strided
	// Chase performs a dependent pointer chase: the address of each
	// access is unpredictable and, crucially, the load *register-depends*
	// on the previous load of the same stream, serialising the misses
	// (mcf-, astar-style). MLP within one chase stream is 1.
	Chase
	// Rand picks uniformly random lines in the region with no
	// inter-access dependence (gcc-style scattered accesses). Misses are
	// independent, so random streams expose MLP but defeat prefetchers.
	Rand
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Seq:
		return "seq"
	case Strided:
		return "strided"
	case Chase:
		return "chase"
	case Rand:
		return "rand"
	}
	return "pattern?"
}

// StreamSpec describes one memory-access stream of a kernel.
type StreamSpec struct {
	// Pattern is the address pattern.
	Pattern Pattern
	// Region is the working-set size in bytes touched by the stream.
	// Regions larger than the last-level cache produce LLC misses.
	Region uint64
	// Stride is the per-access address increment for Seq and Strided
	// patterns, in bytes. Ignored for Chase and Rand.
	Stride uint64
}

// Op is one static instruction slot in a kernel body. A kernel body is a
// loop: the generator emits the body repeatedly, binding fresh destination
// registers and stream addresses on every iteration.
type Op struct {
	// Class is the instruction class emitted for this slot.
	Class isa.Class

	// Dep1 and Dep2 wire the sources: a positive value d means "source =
	// destination of the instruction emitted d dynamic slots earlier".
	// Zero leaves the source absent (immediate operand). Chase-stream
	// loads additionally have their first source forced to the previous
	// load of the same stream, regardless of Dep1.
	Dep1, Dep2 int

	// Stream indexes the kernel's StreamSpec list for loads and stores.
	Stream int

	// Fp marks loads whose destination lives in the floating-point file
	// (and is consumed by FP arithmetic).
	Fp bool

	// TakenProb is the probability a conditional branch in this slot is
	// taken. It only applies to Branch slots that are not the loop
	// back-edge (the generator appends the back-edge itself).
	TakenProb float64

	// DepLoad makes a branch register-depend on the most recent load in
	// the kernel, so it cannot resolve before that load returns — the
	// "misprediction in the shadow of an LLC miss" behaviour of mcf and
	// gcc (§II-C).
	DepLoad bool

	// SkipLen is the number of subsequent body slots skipped when the
	// branch is taken (a forward hammock). Must leave at least one slot
	// before the end of the body.
	SkipLen int
}

// Kernel is one inner loop of a benchmark program.
type Kernel struct {
	// Name identifies the kernel in debug output.
	Name string
	// Body is the static loop body. The generator appends a back-edge
	// branch after the last slot; don't add one explicitly.
	Body []Op
	// Iterations is the loop trip count per activation: the back-edge is
	// taken Iterations-1 times, then falls through to the next kernel.
	// Trip counts make the back-edge highly predictable, as in real code.
	Iterations int
	// Weight is the relative share of activations this kernel receives
	// when the program cycles through its kernels.
	Weight int
	// Streams lists the memory streams the body's mem ops reference.
	Streams []StreamSpec
}

// Benchmark is a complete synthetic workload.
type Benchmark struct {
	// Name is the benchmark's (paper) name, e.g. "mcf".
	Name string
	// MemoryIntensive classifies the benchmark per the paper's MPKI>8
	// rule. The classification is asserted by tests against the measured
	// MPKI on the baseline core.
	MemoryIntensive bool
	// Kernels composes the program.
	Kernels []Kernel
}
