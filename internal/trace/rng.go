package trace

// rng is a small, fast, deterministic pseudo-random generator
// (splitmix64). Workload generation must be exactly reproducible across
// runs and platforms — the same (benchmark, seed) pair always yields the
// same dynamic instruction stream — so we avoid math/rand's unspecified
// evolution and keep the generator trivially inspectable.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	// Avoid the all-zeroes fixed point and decorrelate small seeds.
	return &rng{state: seed*0x9E3779B97F4A7C15 + 0x1234567890ABCDEF}
}

// next64 returns the next 64 random bits.
func (r *rng) next64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next64() % uint64(n))
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next64()>>11) / (1 << 53)
}

// chance reports true with probability p.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.float64() < p
}
