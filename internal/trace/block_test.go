package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"rarsim/internal/isa"
)

// collectBlocks drains n instructions from g through NextBlock using the
// given (possibly hostile) block-size schedule, cycling through sizes.
// Zero-sized blocks are legal no-ops and must not advance the stream.
func collectBlocks(g BlockSource, n int, sizes []int) []isa.Inst {
	out := make([]isa.Inst, 0, n)
	si := 0
	for len(out) < n {
		sz := sizes[si%len(sizes)]
		si++
		if sz > n-len(out) {
			sz = n - len(out)
		}
		blk := make([]isa.Inst, sz)
		g.NextBlock(blk)
		out = append(out, blk...)
	}
	return out
}

// TestNextBlockMatchesScalar pins the BlockSource contract on every
// compiled-in benchmark: NextBlock must be byte-identical to N scalar Next
// calls, for friendly and hostile block sizes alike (0, 1, a prime, and a
// block far larger than any consumer ring).
func TestNextBlockMatchesScalar(t *testing.T) {
	const n = 20_000
	sizeTables := [][]int{
		{1},           // degenerate: block face driven scalar
		{0, 1, 0, 1},  // zero-length no-ops interleaved
		{64},          // the stream buffer's refill block
		{7, 0, 33, 1}, // misaligned mix
		{4096},        // larger than any ring capacity
	}
	for _, b := range All() {
		scalar := collect(New(b, 42), n)
		for _, sizes := range sizeTables {
			got := collectBlocks(New(b, 42), n, sizes)
			for i := range scalar {
				if got[i] != scalar[i] {
					t.Fatalf("%s sizes=%v: block stream diverges at %d:\nblock:  %v\nscalar: %v",
						b.Name, sizes, i, got[i], scalar[i])
				}
			}
		}
	}
}

// TestNextBlockInterleavesWithScalar: block and scalar reads of the same
// generator must interleave freely — the walk state after NextBlock(dst)
// is exactly that of len(dst) Next calls.
func TestNextBlockInterleavesWithScalar(t *testing.T) {
	const n = 10_000
	want := collect(New(testBench(), 9), n)
	g := New(testBench(), 9)
	got := make([]isa.Inst, 0, n)
	step := 0
	for len(got) < n {
		if step%2 == 0 {
			var in isa.Inst
			g.Next(&in)
			got = append(got, in)
		} else {
			sz := 1 + step%17
			if sz > n-len(got) {
				sz = n - len(got)
			}
			blk := make([]isa.Inst, sz)
			g.NextBlock(blk)
			got = append(got, blk...)
		}
		step++
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaved stream diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestWrongPathBlockMatchesScalar: the wrong-path synthesiser's batch face
// must consume the RNG in exactly the scalar order, across episodes with
// varying batch shapes.
func TestWrongPathBlockMatchesScalar(t *testing.T) {
	scalar := New(testBench(), 5)
	block := New(testBench(), 5)
	pc := uint64(0x4000_0000)
	for ep := 0; ep < 200; ep++ {
		k := 1 + ep%7
		want := make([]isa.Inst, k)
		for i := range want {
			scalar.WrongPath(&want[i], pc+uint64(i)*isa.InstBytes)
		}
		got := make([]isa.Inst, k)
		block.WrongPathBlock(got, pc)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("episode %d: wrong-path block diverges at %d: %v vs %v", ep, i, got[i], want[i])
			}
		}
		pc += uint64(k+3) * isa.InstBytes
	}
}

// TestNextBlockMatchesScalarFuzz is the adversarial sweep: arbitrary valid
// benchmarks, random seeds and random block schedules must all stay
// byte-identical to the scalar walk.
func TestNextBlockMatchesScalarFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	f := func(raw []byte, seed uint64, szSeed uint8) bool {
		b := RandomBenchmark(raw)
		const n = 4_000
		sizes := []int{int(szSeed) % 97, 1, int(szSeed)%5 + 1, 256}
		scalar := collect(New(b, seed), n)
		got := collectBlocks(New(b, seed), n, sizes)
		for i := range scalar {
			if got[i] != scalar[i] {
				t.Logf("raw=%v seed=%d sizes=%v: diverges at %d", raw, seed, sizes, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFileSourceBlockMatchesScalar covers the replay path: a recorded
// trace read back in blocks (including blocks spanning the loop wrap) must
// match the scalar replay.
func TestFileSourceBlockMatchesScalar(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "blk", New(testBench(), 3), 997); err != nil {
		t.Fatal(err)
	}
	mk := func() *FileSource {
		fs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	const n = 5_000 // several wraps of the 997-record loop
	scalar := mk()
	want := make([]isa.Inst, n)
	for i := range want {
		scalar.Next(&want[i])
	}
	got := collectBlocks(mk(), n, []int{0, 64, 1, 250})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("file replay diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestScalarOnlyHidesBlockFace: the A/B wrapper must strip the batch face
// while forwarding the scalar one untouched.
func TestScalarOnlyHidesBlockFace(t *testing.T) {
	wrapped := ScalarOnly(New(testBench(), 11))
	if _, ok := wrapped.(BlockSource); ok {
		t.Fatal("ScalarOnly still satisfies BlockSource")
	}
	want := collect(New(testBench(), 11), 1_000)
	got := make([]isa.Inst, len(want))
	for i := range got {
		wrapped.Next(&got[i])
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrapped stream diverges at %d", i)
		}
	}
}

// BenchmarkGeneratorNext measures scalar synthesis through the Source
// interface — the seed's per-instruction virtual-dispatch path.
func BenchmarkGeneratorNext(b *testing.B) {
	bm, err := ByName("x264")
	if err != nil {
		b.Fatal(err)
	}
	var src Source = New(bm, 42)
	var in isa.Inst
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next(&in)
	}
}

// BenchmarkGeneratorNextBlock measures batched synthesis — one interface
// call per 64-instruction block, filling a caller-owned slice in place.
func BenchmarkGeneratorNextBlock(b *testing.B) {
	bm, err := ByName("x264")
	if err != nil {
		b.Fatal(err)
	}
	var src BlockSource = New(bm, 42)
	blk := make([]isa.Inst, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(blk) {
		src.NextBlock(blk)
	}
}
