package trace

import (
	"fmt"
	"sort"

	"rarsim/internal/isa"
)

// The synthetic benchmark suite. Each entry models the benchmark the paper
// names, reproducing the characteristics its analysis depends on (DESIGN.md
// §1): MPKI band (>8 for the memory-intensive set on the baseline core),
// memory pattern (pointer chase / streaming / strided), branch behaviour
// (including data-dependent branches in the shadow of LLC misses), and
// dependence structure (issue-queue pressure from FP chains). Working sets
// are sized against the baseline 1 MiB LLC; suite_test.go asserts the
// measured MPKI split and band on the baseline core.

const (
	mib = 1 << 20
	kib = 1 << 10
)

// benchmarks is the suite registry, populated in init below.
var benchmarks []Benchmark

// All returns the full suite, memory-intensive first, each group sorted by
// name (the paper sorts its figures alphabetically).
func All() []Benchmark {
	out := append([]Benchmark(nil), benchmarks...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MemoryIntensive != out[j].MemoryIntensive {
			return out[i].MemoryIntensive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// MemoryIntensive returns the memory-intensive benchmarks (MPKI > 8 on the
// baseline core), sorted by name.
func MemoryIntensive() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.MemoryIntensive {
			out = append(out, b)
		}
	}
	return out
}

// ComputeIntensive returns the compute-intensive benchmarks, sorted by name.
func ComputeIntensive() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if !b.MemoryIntensive {
			out = append(out, b)
		}
	}
	return out
}

// ByName looks a benchmark up by name.
func ByName(name string) (Benchmark, error) {
	for _, b := range benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names returns the names of all benchmarks in All() order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// --- body-building helpers ---

func ld(stream, dep int) Op  { return Op{Class: isa.Load, Stream: stream, Dep1: dep} }
func fld(stream, dep int) Op { return Op{Class: isa.Load, Stream: stream, Dep1: dep, Fp: true} }
func st(stream, dep int) Op  { return Op{Class: isa.Store, Stream: stream, Dep1: dep} }
func alu(d1, d2 int) Op      { return Op{Class: isa.IntAlu, Dep1: d1, Dep2: d2} }
func imul(d1, d2 int) Op     { return Op{Class: isa.IntMult, Dep1: d1, Dep2: d2} }
func fadd(d1, d2 int) Op     { return Op{Class: isa.FpAdd, Dep1: d1, Dep2: d2} }
func fmul(d1, d2 int) Op     { return Op{Class: isa.FpMult, Dep1: d1, Dep2: d2} }
func fdiv(d1, d2 int) Op     { return Op{Class: isa.FpDiv, Dep1: d1, Dep2: d2} }

// brDep is a branch that register-depends on the most recent load: it
// cannot resolve while that load's LLC miss is outstanding, so a
// misprediction stalls in the shadow of the miss (§II-C).
func brDep(p float64, skip int) Op {
	return Op{Class: isa.Branch, TakenProb: p, DepLoad: true, SkipLen: skip}
}

// br is a data-independent branch with the given taken probability.
func br(p float64, skip int) Op {
	return Op{Class: isa.Branch, TakenProb: p, SkipLen: skip}
}

// intPhase and fpPhase are cache-resident compute kernels mixed into the
// memory-intensive benchmarks. Real SPEC workloads alternate between
// memory-bound and compute-bound phases (the reason SimPoints exist);
// these phases contribute the ACE bit count that no miss-window mechanism
// can remove — the residual vulnerability the paper's RAR leaves behind.
func intPhase(iters int) Kernel {
	return Kernel{
		Name: "compute", Iterations: iters, Weight: 1,
		Streams: []StreamSpec{{Pattern: Seq, Region: 16 * kib, Stride: 8}},
		Body: []Op{
			ld(0, 0),
			alu(1, 0),
			imul(1, 0), // serial multiply chain: high ROB/IQ occupancy
			imul(1, 0),
			br(0.05, 1),
			alu(1, 0),
			imul(1, 2),
			alu(1, 0),
		},
	}
}

func fpPhase(iters int) Kernel {
	return Kernel{
		Name: "compute", Iterations: iters, Weight: 1,
		Streams: []StreamSpec{{Pattern: Seq, Region: 16 * kib, Stride: 8}},
		Body: []Op{
			fld(0, 0),
			fmul(1, 0), // serial FP chain: high ROB/IQ occupancy
			fadd(1, 0),
			fdiv(1, 0),
			fmul(1, 0),
			fadd(1, 0),
			alu(0, 0),
			alu(1, 0),
		},
	}
}

func init() {
	benchmarks = []Benchmark{
		// ------------- memory-intensive (MPKI > 8) -------------
		{
			// mcf: dominant pointer chasing over a huge working set with
			// data-dependent branches in the shadow of the misses. The
			// ROB rarely fills with correct-path state (§II-C) — the
			// biggest MTTF winner for RAR in the paper (35.8x).
			Name: "mcf", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "arcwalk", Weight: 2, Iterations: 64, Streams: []StreamSpec{
					{Pattern: Chase, Region: 8 * mib},
					{Pattern: Chase, Region: 8 * mib},
					{Pattern: Rand, Region: 512 * kib},
				},
				Body: []Op{
					ld(0, 0),       // chase A: always misses
					alu(1, 0),      // consumes the loaded pointer
					brDep(0.12, 2), // data-dep branch in the miss shadow
					alu(1, 0),
					alu(1, 3),
					ld(2, 0), // node payload, mostly cache-resident
					alu(1, 0),
					alu(1, 2),
					ld(1, 0), // chase B: independent chain (MLP 2)
					alu(1, 0),
					brDep(0.10, 1),
					alu(2, 0),
					st(2, 2),
					alu(1, 0),
				},
			}, intPhase(174)},
		},
		{
			// lbm: streaming FP with long dependence chains; stalls on a
			// full issue queue much of the time (§II-C), so the ROB often
			// does not fill under a miss.
			Name: "lbm", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "stream", Weight: 2, Iterations: 128, Streams: []StreamSpec{
					{Pattern: Seq, Region: 48 * mib, Stride: 8},
					{Pattern: Seq, Region: 48 * mib, Stride: 8},
					{Pattern: Seq, Region: 48 * mib, Stride: 8},
				},
				Body: []Op{
					fld(0, 0),
					fld(1, 0),
					fadd(2, 0), // chain A on load 0
					fmul(1, 0),
					fadd(1, 0),
					fadd(4, 0), // chain B on load 1
					fmul(1, 0),
					fadd(1, 0),
					alu(0, 0),
					st(2, 2),
					alu(0, 0),
				},
			}, fpPhase(279)},
		},
		{
			// libquantum: pure streaming over a large array, small loop
			// body, near-perfectly predictable branches, high MLP. The
			// paper's biggest FLUSH performance loser (-21.9%).
			Name: "libquantum", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "gates", Weight: 2, Iterations: 256, Streams: []StreamSpec{
					{Pattern: Seq, Region: 48 * mib, Stride: 8},
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					br(0.03, 1),
					alu(1, 0),
					alu(1, 2),
					st(1, 2),
					alu(1, 0),
				},
			}, intPhase(371)},
		},
		{
			// milc: streaming FP over lattice fields with multiply/add
			// chains.
			Name: "milc", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "su3", Weight: 2, Iterations: 96, Streams: []StreamSpec{
					{Pattern: Seq, Region: 32 * mib, Stride: 8},
					{Pattern: Seq, Region: 32 * mib, Stride: 8},
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					fld(0, 0),
					fld(1, 0),
					fmul(2, 0),
					fadd(2, 0),
					alu(0, 0),
					fmul(3, 0),
					fadd(1, 0),
					alu(1, 0),
					st(2, 2),
					alu(1, 0),
				},
			}, fpPhase(193)},
		},
		{
			// gems (GemsFDTD): strided FP stencil updates over a large
			// grid — prefetcher-friendly (Figure 11).
			Name: "gems", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "fdtd", Weight: 2, Iterations: 80, Streams: []StreamSpec{
					{Pattern: Seq, Region: 24 * mib, Stride: 8},
					{Pattern: Seq, Region: 24 * mib, Stride: 8},
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					fld(0, 0),
					fadd(1, 0),
					fld(1, 0),
					fmul(1, 3),
					fadd(1, 0),
					alu(0, 0),
					alu(1, 0),
					st(2, 2),
					alu(1, 0),
					alu(1, 2),
				},
			}, fpPhase(159)},
		},
		{
			// fotonik (fotonik3d): dense streaming with many independent
			// loads and light compute — the classic full-ROB staller
			// (>74% of ACE during full-ROB stalls per Fig. 5) and the
			// biggest RAR IPC winner (2.6x).
			Name: "fotonik", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "sweep", Weight: 2, Iterations: 192, Streams: []StreamSpec{
					{Pattern: Seq, Region: 40 * mib, Stride: 8},
					{Pattern: Seq, Region: 40 * mib, Stride: 4},
					{Pattern: Seq, Region: 40 * mib, Stride: 4},
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					fld(0, 0),
					fadd(1, 0),
					alu(0, 0),
					fld(1, 0),
					fadd(1, 0),
					alu(0, 0),
					fld(2, 0),
					fadd(1, 0),
					alu(0, 0),
					st(3, 2),
					alu(1, 0),
					alu(1, 0),
				},
			}, fpPhase(453)},
		},
		{
			// soplex: simplex pivoting — streaming sweeps mixed with
			// pointer-y indirection and some data-dependent branches.
			Name: "soplex", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "pivot", Weight: 2, Iterations: 64, Streams: []StreamSpec{
					{Pattern: Seq, Region: 16 * mib, Stride: 8},
					{Pattern: Chase, Region: 384 * kib},
				},
				Body: []Op{
					ld(0, 0),
					fld(0, 0),
					fmul(1, 0),
					alu(2, 0),
					ld(1, 0), // chase through the basis
					alu(1, 0),
					brDep(0.10, 2),
					fadd(1, 0),
					alu(1, 0),
					alu(1, 2),
					st(0, 1),
					alu(1, 0),
				},
			}, intPhase(151)},
		},
		{
			// astar: pathfinding pointer chases with data-dependent
			// control flow.
			Name: "astar", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "expand", Weight: 2, Iterations: 48, Streams: []StreamSpec{
					{Pattern: Chase, Region: 1 * mib},
					{Pattern: Rand, Region: 384 * kib},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					brDep(0.15, 2),
					alu(1, 0),
					alu(1, 3),
					ld(1, 0),
					alu(1, 2),
					brDep(0.10, 1),
					alu(1, 0),
					alu(2, 0),
					st(1, 1),
					alu(1, 0),
				},
			}, intPhase(113)},
		},
		{
			// gcc: scattered accesses and many hard-to-predict branches,
			// frequently in the shadow of misses (§II-C).
			Name: "gcc", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "dataflow", Weight: 2, Iterations: 40, Streams: []StreamSpec{
					{Pattern: Rand, Region: 3 * mib},
					{Pattern: Rand, Region: 384 * kib},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					brDep(0.15, 2),
					alu(1, 0),
					alu(1, 3),
					ld(1, 0),
					alu(1, 0),
					br(0.12, 1),
					alu(2, 0),
					alu(1, 2),
					st(1, 1),
					alu(1, 0),
				},
			}, intPhase(94)},
		},
		{
			// leslie3d: strided FP streams through a 3-D grid —
			// prefetcher-friendly (Figure 11).
			Name: "leslie3d", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "grid", Weight: 2, Iterations: 96, Streams: []StreamSpec{
					{Pattern: Seq, Region: 24 * mib, Stride: 8},
					{Pattern: Seq, Region: 24 * mib, Stride: 8},
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					fld(0, 0),
					fmul(1, 0),
					fld(1, 0),
					fadd(1, 3),
					fmul(1, 0),
					alu(0, 0),
					fadd(1, 0),
					alu(1, 0),
					st(2, 2),
					alu(1, 0),
					alu(1, 2),
				},
			}, fpPhase(210)},
		},
		{
			// roms: streaming FP with long arithmetic chains — misses
			// block the ROB head but the ROB rarely fills, which is why
			// RAR's early start costs it performance vs RAR-LATE (§V-C).
			Name: "roms", MemoryIntensive: true,
			Kernels: []Kernel{{
				Name: "ocean", Weight: 2, Iterations: 112, Streams: []StreamSpec{
					{Pattern: Seq, Region: 24 * mib, Stride: 8},
					{Pattern: Seq, Region: 24 * mib, Stride: 8},
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					fld(0, 0),
					fadd(1, 0),
					fmul(1, 0),
					fdiv(1, 0),
					fadd(1, 0),
					fld(1, 0),
					fmul(1, 0),
					fadd(1, 0),
					st(2, 2),
					alu(0, 0),
				},
			}, fpPhase(224)},
		},

		// ------------- compute-intensive (MPKI < 8) -------------
		{
			// perlbench: branchy integer code over a small working set.
			Name: "perlbench", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "interp", Iterations: 48, Streams: []StreamSpec{
					{Pattern: Rand, Region: 128 * kib},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					br(0.15, 2),
					alu(1, 0),
					alu(1, 2),
					imul(1, 0),
					alu(1, 0),
					br(0.10, 1),
					alu(1, 0),
					st(0, 1),
				},
			}},
		},
		{
			// x264: strided media kernels, cache-resident.
			Name: "x264", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "satd", Iterations: 64, Streams: []StreamSpec{
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					alu(1, 2),
					imul(1, 0),
					alu(1, 0),
					alu(2, 1),
					st(0, 1),
					alu(0, 0),
				},
			}},
		},
		{
			// deepsjeng: search with hard branches, small tables.
			Name: "deepsjeng", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "search", Iterations: 40, Streams: []StreamSpec{
					{Pattern: Rand, Region: 256 * kib},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					br(0.25, 2),
					alu(1, 0),
					alu(1, 2),
					br(0.15, 1),
					alu(1, 0),
					st(0, 2),
				},
			}},
		},
		{
			// leela: MCTS pointer chasing within a cache-resident tree.
			Name: "leela", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "uct", Iterations: 48, Streams: []StreamSpec{
					{Pattern: Chase, Region: 192 * kib},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					br(0.15, 1),
					alu(1, 0),
					imul(1, 0),
					alu(1, 0),
				},
			}},
		},
		{
			// exchange2: pure integer compute, almost no memory.
			Name: "exchange2", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "permute", Iterations: 96, Streams: []StreamSpec{
					{Pattern: Seq, Region: 64 * kib, Stride: 8},
				},
				Body: []Op{
					alu(0, 0),
					alu(1, 0),
					alu(1, 2),
					imul(1, 0),
					alu(1, 0),
					br(0.05, 1),
					alu(1, 0),
					ld(0, 0),
					alu(1, 0),
				},
			}},
		},
		{
			// xz: integer compression, mid-size dictionary.
			Name: "xz", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "match", Iterations: 56, Streams: []StreamSpec{
					{Pattern: Rand, Region: 512 * kib},
				},
				Body: []Op{
					ld(0, 0),
					alu(1, 0),
					br(0.12, 1),
					alu(1, 0),
					alu(1, 2),
					alu(1, 0),
					st(0, 1),
				},
			}},
		},
		{
			// imagick: FP image kernels over cache-resident tiles.
			Name: "imagick", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "convolve", Iterations: 72, Streams: []StreamSpec{
					{Pattern: Seq, Region: 128 * kib, Stride: 8},
				},
				Body: []Op{
					fld(0, 0),
					fmul(1, 0),
					fadd(1, 0),
					fmul(1, 2),
					fadd(1, 0),
					st(0, 1),
					alu(0, 0),
				},
			}},
		},
		{
			// nab: FP molecular dynamics on a small system.
			Name: "nab", MemoryIntensive: false,
			Kernels: []Kernel{{
				Name: "forces", Iterations: 64, Streams: []StreamSpec{
					{Pattern: Strided, Region: 256 * kib, Stride: CacheLine},
				},
				Body: []Op{
					fld(0, 0),
					fmul(1, 0),
					fadd(1, 0),
					fmul(1, 2),
					fdiv(1, 0),
					fadd(1, 0),
					st(0, 1),
				},
			}},
		},
	}
}
