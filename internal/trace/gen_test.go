package trace

import (
	"testing"
	"testing/quick"

	"rarsim/internal/isa"
)

// small test benchmark: one kernel, two streams, a hammock and deps.
func testBench() Benchmark {
	return Benchmark{
		Name: "test", MemoryIntensive: true,
		Kernels: []Kernel{{
			Name: "k", Iterations: 4,
			Streams: []StreamSpec{
				{Pattern: Seq, Region: 1 << 20, Stride: 8},
				{Pattern: Chase, Region: 1 << 20},
			},
			Body: []Op{
				ld(0, 0),
				alu(1, 0),
				br(0.5, 2),
				alu(1, 0),
				alu(1, 2),
				ld(1, 0),
				st(0, 1),
			},
		}},
	}
}

func collect(g *Generator, n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestDeterminism(t *testing.T) {
	a := collect(New(testBench(), 7), 5000)
	b := collect(New(testBench(), 7), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := collect(New(testBench(), 8), 5000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSeqStreamAddresses(t *testing.T) {
	g := New(testBench(), 1)
	var prev uint64
	seen := 0
	for i := 0; i < 1000; i++ {
		var in isa.Inst
		g.Next(&in)
		if in.Class != isa.Load || in.PC != 0x10000000 {
			continue // want the seq load at body slot 0
		}
		if seen > 0 && in.Addr != prev+16 {
			// Two seq accesses per iteration (load + store share stream 0),
			// so consecutive loads are 16 bytes apart (modulo wrap).
			if in.Addr >= prev {
				t.Fatalf("seq load stride: prev=%#x cur=%#x", prev, in.Addr)
			}
		}
		prev = in.Addr
		seen++
	}
	if seen == 0 {
		t.Fatal("no seq loads observed")
	}
}

func TestChaseDependence(t *testing.T) {
	g := New(testBench(), 1)
	var lastChaseDest isa.Reg = isa.NoReg
	checked := 0
	for i := 0; i < 2000; i++ {
		var in isa.Inst
		g.Next(&in)
		if in.Class == isa.Load && in.PC == 0x10000000+5*isa.InstBytes {
			if lastChaseDest.Valid() && in.Src1 != lastChaseDest {
				t.Fatalf("chase load must depend on previous chase dest: %v vs %v",
					in.Src1, lastChaseDest)
			}
			lastChaseDest = in.Dest
			checked++
		}
	}
	if checked < 2 {
		t.Fatal("chase loads not observed")
	}
}

func TestBackEdgeTripCount(t *testing.T) {
	g := New(testBench(), 1)
	taken, notTaken := 0, 0
	backPC := uint64(0x10000000 + 7*isa.InstBytes)
	for i := 0; i < 5000; i++ {
		var in isa.Inst
		g.Next(&in)
		if in.Class == isa.Branch && in.PC == backPC {
			if in.Taken {
				taken++
				if in.Target != 0x10000000 {
					t.Fatalf("back-edge target %#x", in.Target)
				}
			} else {
				notTaken++
			}
		}
	}
	if notTaken == 0 || taken == 0 {
		t.Fatal("back-edge never exercised both directions")
	}
	// Iterations=4: taken 3 times per fall-through.
	ratio := float64(taken) / float64(notTaken)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("trip ratio = %v, want ~3", ratio)
	}
}

func TestHammockSkips(t *testing.T) {
	g := New(testBench(), 1)
	var prev isa.Inst
	for i := 0; i < 5000; i++ {
		var in isa.Inst
		g.Next(&in)
		if prev.Class == isa.Branch && prev.Taken && prev.PC == 0x10000000+2*isa.InstBytes {
			// Taken hammock with SkipLen 2 skips slots 3 and 4.
			if in.PC != prev.Target {
				t.Fatalf("after taken hammock, PC=%#x want %#x", in.PC, prev.Target)
			}
			if in.PC != 0x10000000+5*isa.InstBytes {
				t.Fatalf("hammock target %#x", in.PC)
			}
		}
		if prev.Class == isa.Branch && !prev.Taken {
			if in.PC != prev.FallThrough() && in.PC != 0x10000000 {
				t.Fatalf("not-taken branch followed by %#x", in.PC)
			}
		}
		prev = in
	}
}

func TestDepWiring(t *testing.T) {
	g := New(testBench(), 1)
	var prevDest isa.Reg
	for i := 0; i < 200; i++ {
		var in isa.Inst
		g.Next(&in)
		// alu(1,0) at slot 1 must source the load's destination.
		if in.Class == isa.IntAlu && in.PC == 0x10000000+1*isa.InstBytes {
			if in.Src1 != prevDest {
				t.Fatalf("dep1 wiring: src=%v want %v", in.Src1, prevDest)
			}
		}
		if in.Dest.Valid() {
			prevDest = in.Dest
		}
	}
}

func TestWrongPath(t *testing.T) {
	g := New(testBench(), 3)
	pc := uint64(0x5000)
	for i := 0; i < 500; i++ {
		var in isa.Inst
		g.WrongPath(&in, pc)
		if !in.WrongPath {
			t.Fatal("wrong-path instruction not marked")
		}
		if in.PC != pc {
			t.Fatalf("wrong-path PC %#x want %#x", in.PC, pc)
		}
		if in.HasDest() {
			// Wrong-path dests live in the scratch range r24..r31/f24..f31.
			r := in.Dest
			if r.IsInt() && (r < 24 || r > 31) {
				t.Fatalf("wrong-path int dest %v outside scratch range", r)
			}
			if r.IsFp() && (r < isa.FirstFpReg+24 || r > isa.FirstFpReg+31) {
				t.Fatalf("wrong-path fp dest %v outside scratch range", r)
			}
		}
		pc += isa.InstBytes
	}
}

// Property: every generated address stays within its stream's region.
func TestAddressesInRegion(t *testing.T) {
	f := func(seed uint64) bool {
		g := New(testBench(), seed)
		for i := 0; i < 2000; i++ {
			var in isa.Inst
			g.Next(&in)
			if !in.IsMem() {
				continue
			}
			// Streams are 64 MiB apart with 1 MiB regions.
			off := in.Addr & ((1 << 26) - 1)
			if off >= (1<<20)+CacheLine {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: PCs are 4-byte aligned and operands are valid or NoReg.
func TestInstWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		g := New(testBench(), seed)
		for i := 0; i < 2000; i++ {
			var in isa.Inst
			g.Next(&in)
			if in.PC%isa.InstBytes != 0 {
				return false
			}
			for _, r := range []isa.Reg{in.Src1, in.Src2, in.Dest} {
				if r != isa.NoReg && !r.Valid() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestValidationPanics(t *testing.T) {
	cases := map[string]Benchmark{
		"no kernels": {Name: "x"},
		"empty body": {Name: "x", Kernels: []Kernel{{Name: "k", Iterations: 1,
			Streams: []StreamSpec{{Pattern: Seq, Region: 64}}}}},
		"bad stream": {Name: "x", Kernels: []Kernel{{Name: "k", Iterations: 1,
			Streams: []StreamSpec{{Pattern: Seq, Region: 64}},
			Body:    []Op{ld(3, 0)}}}},
		"skip past end": {Name: "x", Kernels: []Kernel{{Name: "k", Iterations: 1,
			Streams: []StreamSpec{{Pattern: Seq, Region: 64}},
			Body:    []Op{br(0.5, 5), alu(0, 0)}}}},
		"no iterations": {Name: "x", Kernels: []Kernel{{Name: "k",
			Streams: []StreamSpec{{Pattern: Seq, Region: 64}},
			Body:    []Op{alu(0, 0)}}}},
	}
	for name, b := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(b, 1)
		}()
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{Seq: "seq", Strided: "strided", Chase: "chase", Rand: "rand"} {
		if p.String() != want {
			t.Errorf("%d = %q", p, p.String())
		}
	}
}
