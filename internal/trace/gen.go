package trace

import (
	"fmt"

	"rarsim/internal/isa"
)

// CacheLine is the line size the address streams are laid out for. It must
// match the memory hierarchy's line size (internal/mem uses the same value).
const CacheLine = 64

// depRingSize bounds how far back an Op.Dep distance may reach.
const depRingSize = 64

// Generator walks a Benchmark's program and emits its dynamic instruction
// stream. The stream is infinite (the program loops forever); the simulator
// decides when to stop. A Generator is not safe for concurrent use.
type Generator struct {
	bench   Benchmark
	rnd     *rng
	kernels []kernelState

	// schedule is the weighted round-robin activation order of kernels.
	schedule []int
	schedPos int

	cur  int // index into kernels of the active kernel
	iter int // current iteration of the active kernel
	slot int // next body slot to emit, len(body) = back-edge

	// destRing records the destination registers of the most recent
	// dynamic instructions, for Dep wiring.
	destRing [depRingSize]isa.Reg
	ringPos  int

	// register allocation cursors
	nextInt int
	nextFp  int

	// lastLoadDest is the destination of the most recent load, for
	// DepLoad branches.
	lastLoadDest isa.Reg

	// wrong-path synthesiser
	wp *wpSynth

	emitted uint64
}

type kernelState struct {
	spec    Kernel
	pcBase  uint64
	streams []streamState
}

type streamState struct {
	spec     StreamSpec
	base     uint64
	cursor   uint64
	lastDest isa.Reg // previous load's dest, for Chase dependence
	rnd      *rng
}

// New builds a Generator for benchmark b with the given seed. Invalid
// benchmark specifications (bad stream indices, out-of-range skips) panic:
// benchmarks are compiled-in package data, so a bad spec is a programming
// error, not an input error.
func New(b Benchmark, seed uint64) *Generator {
	if len(b.Kernels) == 0 {
		panic("trace: benchmark " + b.Name + " has no kernels")
	}
	g := &Generator{
		bench:        b,
		rnd:          newRNG(seed),
		lastLoadDest: isa.NoReg,
	}
	for i := range g.destRing {
		g.destRing[i] = isa.NoReg
	}
	for ki, k := range b.Kernels {
		validateKernel(b.Name, k)
		ks := kernelState{
			spec:   k,
			pcBase: 0x10000000 + uint64(ki)*0x100000,
		}
		for si, ss := range k.Streams {
			ks.streams = append(ks.streams, streamState{
				spec:     ss,
				base:     uint64(ki*16+si+1) << 26, // 64 MiB spacing
				lastDest: isa.NoReg,
				rnd:      newRNG(seed ^ (uint64(ki)<<32 | uint64(si))),
			})
		}
		g.kernels = append(g.kernels, ks)
		w := k.Weight
		if w <= 0 {
			w = 1
		}
		for j := 0; j < w; j++ {
			g.schedule = append(g.schedule, ki)
		}
	}
	g.wp = newWpSynth(seed, g.kernels[0].streams[0].base)
	g.activate(g.schedule[0])
	g.schedPos = 1 % len(g.schedule)
	return g
}

func validateKernel(bench string, k Kernel) {
	if len(k.Body) == 0 {
		panic(fmt.Sprintf("trace: %s kernel %s has empty body", bench, k.Name))
	}
	if k.Iterations <= 0 {
		panic(fmt.Sprintf("trace: %s kernel %s needs Iterations >= 1", bench, k.Name))
	}
	if len(k.Streams) == 0 {
		panic(fmt.Sprintf("trace: %s kernel %s needs at least one stream", bench, k.Name))
	}
	for i, op := range k.Body {
		if op.Class.IsMem() && (op.Stream < 0 || op.Stream >= len(k.Streams)) {
			panic(fmt.Sprintf("trace: %s kernel %s op %d references stream %d of %d",
				bench, k.Name, i, op.Stream, len(k.Streams)))
		}
		if op.Class == isa.Branch && i+1+op.SkipLen >= len(k.Body)+1 {
			panic(fmt.Sprintf("trace: %s kernel %s op %d skip %d runs past body",
				bench, k.Name, i, op.SkipLen))
		}
		if op.Dep1 >= depRingSize || op.Dep2 >= depRingSize {
			panic(fmt.Sprintf("trace: %s kernel %s op %d dep distance exceeds %d",
				bench, k.Name, i, depRingSize))
		}
	}
}

// Benchmark returns the benchmark this generator walks.
func (g *Generator) Benchmark() Benchmark { return g.bench }

// Emitted returns the number of correct-path instructions generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

func (g *Generator) activate(ki int) {
	g.cur = ki
	g.iter = 0
	g.slot = 0
}

// Next fills in with the next correct-path dynamic instruction.
func (g *Generator) Next(in *isa.Inst) {
	k := &g.kernels[g.cur]
	body := k.spec.Body

	if g.slot >= len(body) {
		// Loop back-edge: taken while iterations remain.
		*in = isa.Inst{
			PC:     k.pcBase + uint64(len(body))*isa.InstBytes,
			Class:  isa.Branch,
			Src1:   isa.NoReg,
			Src2:   isa.NoReg,
			Dest:   isa.NoReg,
			Taken:  g.iter < k.spec.Iterations-1,
			Target: k.pcBase,
		}
		if in.Taken {
			g.iter++
			g.slot = 0
		} else {
			g.activate(g.schedule[g.schedPos])
			g.schedPos = (g.schedPos + 1) % len(g.schedule)
		}
		g.pushDest(isa.NoReg)
		g.emitted++
		return
	}

	op := body[g.slot]
	pc := k.pcBase + uint64(g.slot)*isa.InstBytes
	*in = isa.Inst{
		PC:    pc,
		Class: op.Class,
		Src1:  isa.NoReg,
		Src2:  isa.NoReg,
		Dest:  isa.NoReg,
	}
	g.wireSrcs(in, op)

	switch op.Class {
	case isa.Load:
		st := &k.streams[op.Stream]
		in.Addr = st.next()
		in.Size = 8
		if st.spec.Pattern == Chase && st.lastDest.Valid() {
			in.Src1 = st.lastDest
		}
		in.Dest = g.allocDest(op.Fp)
		st.lastDest = in.Dest
		g.lastLoadDest = in.Dest
	case isa.Store:
		st := &k.streams[op.Stream]
		in.Addr = st.next()
		in.Size = 8
		if !in.Src1.Valid() {
			in.Src1 = g.recentDest(1)
		}
	case isa.Branch:
		in.Taken = g.rnd.chance(op.TakenProb)
		if op.DepLoad && g.lastLoadDest.Valid() {
			in.Src1 = g.lastLoadDest
		}
		skipTo := g.slot + 1 + op.SkipLen
		in.Target = k.pcBase + uint64(skipTo)*isa.InstBytes
		if in.Taken {
			g.slot = skipTo
			g.pushDest(isa.NoReg)
			g.emitted++
			return
		}
	case isa.Nop:
		// nothing
	default:
		in.Dest = g.allocDest(op.Class.IsFp())
	}

	g.pushDest(in.Dest)
	g.slot++
	g.emitted++
}

// NextBlock fills dst with the next len(dst) correct-path instructions —
// the batch face of Next (see BlockSource). One NextBlock call replaces
// len(dst) virtual dispatches through the Source interface with direct
// calls on the concrete generator, and lets the consumer synthesise
// straight into its own buffer. The walk state afterwards is exactly that
// of len(dst) consecutive Next calls, so block and scalar reads of the
// same generator interleave freely.
//
//rarlint:hot
func (g *Generator) NextBlock(dst []isa.Inst) {
	for i := range dst {
		g.Next(&dst[i])
	}
}

// wireSrcs resolves the Dep distances against the destination ring.
func (g *Generator) wireSrcs(in *isa.Inst, op Op) {
	if op.Dep1 > 0 {
		in.Src1 = g.recentDest(op.Dep1)
	}
	if op.Dep2 > 0 {
		in.Src2 = g.recentDest(op.Dep2)
	}
}

// recentDest returns the destination register written d dynamic
// instructions ago, or NoReg if that instruction had none.
func (g *Generator) recentDest(d int) isa.Reg {
	if d <= 0 || d > depRingSize {
		return isa.NoReg
	}
	return g.destRing[(g.ringPos-d+depRingSize*2)%depRingSize]
}

func (g *Generator) pushDest(r isa.Reg) {
	g.destRing[g.ringPos%depRingSize] = r
	g.ringPos = (g.ringPos + 1) % depRingSize
}

// allocDest hands out destination registers round-robin from the middle of
// each file (r8..r23 / f8..f23), keeping low and high registers free for
// generator-internal uses.
func (g *Generator) allocDest(fp bool) isa.Reg {
	if fp {
		r := isa.FirstFpReg + isa.Reg(8+g.nextFp)
		g.nextFp = (g.nextFp + 1) % 16
		return r
	}
	r := isa.Reg(8 + g.nextInt)
	g.nextInt = (g.nextInt + 1) % 16
	return r
}

// next produces the next address of a stream.
func (s *streamState) next() uint64 {
	region := s.spec.Region
	if region < CacheLine {
		region = CacheLine
	}
	switch s.spec.Pattern {
	case Seq, Strided:
		stride := s.spec.Stride
		if stride == 0 {
			stride = 8
			if s.spec.Pattern == Strided {
				stride = 4 * CacheLine
			}
		}
		a := s.base + s.cursor
		s.cursor += stride
		if s.cursor >= region {
			s.cursor = 0
		}
		return a
	case Chase, Rand:
		line := s.rnd.next64() % (region / CacheLine)
		return s.base + line*CacheLine
	}
	return s.base
}

// WrongPath fills in with a plausible wrong-path instruction at pc.
// Wrong-path streams mix ALU work with scattered loads, so mispredicted
// paths pollute (and sometimes usefully prefetch) the caches, as on real
// hardware. The instructions are marked WrongPath and use the scratch
// registers r24..r31/f24..f31 so they never alias correct-path
// dependences.
func (g *Generator) WrongPath(in *isa.Inst, pc uint64) {
	g.wp.wrongPath(in, pc)
}

// WrongPathBlock fills dst with len(dst) consecutive wrong-path
// instructions starting at pc — the batch face of WrongPath (see
// BlockSource). The synthesiser's RNG is consumed in exactly the scalar
// order, so callers must only batch instructions that will all be fetched.
//
//rarlint:hot
func (g *Generator) WrongPathBlock(dst []isa.Inst, pc uint64) {
	g.wp.wrongPathBlock(dst, pc)
}

// WrongPathParams exposes the wrong-path synthesiser parameters for trace
// recording (see WriteTrace).
func (g *Generator) WrongPathParams() (seed, base uint64) { return g.wp.params() }
