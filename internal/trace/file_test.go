package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rarsim/internal/isa"
)

func TestTraceRoundTrip(t *testing.T) {
	b, err := ByName("gems")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	var buf bytes.Buffer
	if err := WriteTrace(&buf, b.Name, New(b, 7), n); err != nil {
		t.Fatal(err)
	}
	fs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Name() != "gems" || fs.Len() != n {
		t.Fatalf("name=%q len=%d", fs.Name(), fs.Len())
	}
	// Replayed instructions must be byte-identical to a fresh generation.
	ref := New(b, 7)
	var want, got isa.Inst
	for i := 0; i < n; i++ {
		ref.Next(&want)
		fs.Next(&got)
		if want != got {
			t.Fatalf("record %d differs:\n  want %+v\n  got  %+v", i, want, got)
		}
	}
	// The source loops: the next instruction is record 0 again.
	fs.Next(&got)
	fs2, _ := ReadTrace(mustTrace(t, b, 1))
	fs2.Next(&want)
	if got.PC != want.PC {
		t.Error("trace did not loop to the start")
	}
}

func mustTrace(t *testing.T, b Benchmark, n uint64) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, b.Name, New(b, 7), n); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestTraceFileGzip(t *testing.T) {
	b, err := ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.trace")
	zipped := filepath.Join(dir, "t.trace.gz")
	if err := WriteTraceFile(plain, b.Name, New(b, 3), 2000); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceFile(zipped, b.Name, New(b, 3), 2000); err != nil {
		t.Fatal(err)
	}
	a, err := OpenTraceFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	z, err := OpenTraceFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	var ia, iz isa.Inst
	for i := 0; i < 2000; i++ {
		a.Next(&ia)
		z.Next(&iz)
		if ia != iz {
			t.Fatalf("gzip round-trip differs at %d", i)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short header must error")
	}
	if _, err := ReadTrace(bytes.NewReader(append([]byte("BADMAG"), make([]byte, 18)...))); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := OpenTraceFile("/nonexistent/x.trace"); err == nil {
		t.Error("missing file must error")
	}
}

// hostileHeader builds a syntactically valid trace header claiming count
// records and carrying no body at all.
func hostileHeader(count uint64) []byte {
	head := []byte(traceMagic)
	var hdr [34]byte
	binary.LittleEndian.PutUint16(hdr[0:2], traceVersion)
	binary.LittleEndian.PutUint64(hdr[2:10], count)
	binary.LittleEndian.PutUint64(hdr[26:34], 0) // empty name
	return append(head, hdr[:]...)
}

// TestReadTraceHostileCount: the count field is attacker-controlled, so a
// header claiming 2^60 records backed by nothing must fail with a parse
// error — not commit petabytes of memory up front and die on an
// allocation panic the caller cannot recover from.
func TestReadTraceHostileCount(t *testing.T) {
	for _, count := range []uint64{1 << 60, 1 << 40, ^uint64(0)} {
		fs, err := ReadTrace(bytes.NewReader(hostileHeader(count)))
		if err == nil {
			t.Fatalf("count=%d: hostile header must error, got %d insts", count, fs.Len())
		}
		if !strings.Contains(err.Error(), "short record") {
			t.Errorf("count=%d: want a short-record parse error, got: %v", count, err)
		}
	}
}

// TestReadTraceTruncated: a real trace chopped mid-body must surface a
// short-record error naming how far the parse got, never a panic or a
// silently shortened replay.
func TestReadTraceTruncated(t *testing.T) {
	b, err := ByName("gems")
	if err != nil {
		t.Fatal(err)
	}
	whole := mustTrace(t, b, 100).Bytes()
	for _, cut := range []int{1, recordBytes / 2, 50 * recordBytes} {
		_, err := ReadTrace(bytes.NewReader(whole[:len(whole)-cut]))
		if err == nil {
			t.Fatalf("cut=%d: truncated trace must error", cut)
		}
		if !strings.Contains(err.Error(), "short record") {
			t.Errorf("cut=%d: want a short-record error, got: %v", cut, err)
		}
	}
}

// TestWriteTraceFileAtomic: a failed write must leave the target path
// exactly as it was — no partial file, no leftover temp files — and a
// successful write must replace an existing file in one step. This pins
// the temp-file+rename discipline WriteTraceFile shares with the
// simulation cache's diskStore.
func TestWriteTraceFileAtomic(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "out.trace")
	if err := os.WriteFile(target, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	if err := atomicWriteFile(target, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage")); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("injected write failure must surface, got: %v", err)
	}
	got, err := os.ReadFile(target)
	if err != nil || string(got) != "precious" {
		t.Fatalf("failed write must leave the target untouched, got %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("failed write must clean up its temp file, dir has %d entries", len(ents))
	}
	// The success path replaces the old content wholesale.
	b, err := ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceFile(target, b.Name, New(b, 3), 50); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenTraceFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 50 {
		t.Fatalf("replaced trace has %d insts, want 50", fs.Len())
	}
}

func TestFileSourceWrongPath(t *testing.T) {
	b, _ := ByName("gems")
	fs, err := ReadTrace(mustTrace(t, b, 100))
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	fs.WrongPath(&in, 0x999000)
	if !in.WrongPath || in.PC != 0x999000 {
		t.Errorf("wrong-path synthesis: %+v", in)
	}
}
