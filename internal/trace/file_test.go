package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"rarsim/internal/isa"
)

func TestTraceRoundTrip(t *testing.T) {
	b, err := ByName("gems")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	var buf bytes.Buffer
	if err := WriteTrace(&buf, b.Name, New(b, 7), n); err != nil {
		t.Fatal(err)
	}
	fs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Name() != "gems" || fs.Len() != n {
		t.Fatalf("name=%q len=%d", fs.Name(), fs.Len())
	}
	// Replayed instructions must be byte-identical to a fresh generation.
	ref := New(b, 7)
	var want, got isa.Inst
	for i := 0; i < n; i++ {
		ref.Next(&want)
		fs.Next(&got)
		if want != got {
			t.Fatalf("record %d differs:\n  want %+v\n  got  %+v", i, want, got)
		}
	}
	// The source loops: the next instruction is record 0 again.
	fs.Next(&got)
	fs2, _ := ReadTrace(mustTrace(t, b, 1))
	fs2.Next(&want)
	if got.PC != want.PC {
		t.Error("trace did not loop to the start")
	}
}

func mustTrace(t *testing.T, b Benchmark, n uint64) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, b.Name, New(b, 7), n); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestTraceFileGzip(t *testing.T) {
	b, err := ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.trace")
	zipped := filepath.Join(dir, "t.trace.gz")
	if err := WriteTraceFile(plain, b.Name, New(b, 3), 2000); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceFile(zipped, b.Name, New(b, 3), 2000); err != nil {
		t.Fatal(err)
	}
	a, err := OpenTraceFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	z, err := OpenTraceFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	var ia, iz isa.Inst
	for i := 0; i < 2000; i++ {
		a.Next(&ia)
		z.Next(&iz)
		if ia != iz {
			t.Fatalf("gzip round-trip differs at %d", i)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short header must error")
	}
	if _, err := ReadTrace(bytes.NewReader(append([]byte("BADMAG"), make([]byte, 18)...))); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := OpenTraceFile("/nonexistent/x.trace"); err == nil {
		t.Error("missing file must error")
	}
}

func TestFileSourceWrongPath(t *testing.T) {
	b, _ := ByName("gems")
	fs, err := ReadTrace(mustTrace(t, b, 100))
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	fs.WrongPath(&in, 0x999000)
	if !in.WrongPath || in.PC != 0x999000 {
		t.Errorf("wrong-path synthesis: %+v", in)
	}
}
