package trace

import (
	"testing"

	"rarsim/internal/isa"
)

func TestSuiteRegistry(t *testing.T) {
	all := All()
	if len(all) != len(MemoryIntensive())+len(ComputeIntensive()) {
		t.Error("suite split does not partition All()")
	}
	if len(MemoryIntensive()) != 11 {
		t.Errorf("expected the paper's 11 memory-intensive benchmarks, got %d",
			len(MemoryIntensive()))
	}
	if len(ComputeIntensive()) < 6 {
		t.Errorf("expected at least 6 compute-intensive foils, got %d",
			len(ComputeIntensive()))
	}
	// Memory-intensive come first, each group sorted by name.
	for i, b := range all {
		if i > 0 && all[i-1].MemoryIntensive == b.MemoryIntensive &&
			all[i-1].Name >= b.Name {
			t.Errorf("suite not sorted at %q", b.Name)
		}
		if i > 0 && !all[i-1].MemoryIntensive && b.MemoryIntensive {
			t.Error("memory-intensive must sort before compute-intensive")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mcf", "lbm", "libquantum", "fotonik", "x264"} {
		b, err := ByName(name)
		if err != nil || b.Name != name {
			t.Errorf("ByName(%q): %v %v", name, b.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark must error")
	}
	if len(Names()) != len(All()) {
		t.Error("Names() length mismatch")
	}
}

// TestSuiteSpecsValid builds a generator for every benchmark (spec panics
// would fire here) and generates a window of instructions.
func TestSuiteSpecsValid(t *testing.T) {
	for _, b := range All() {
		g := New(b, 42)
		var in isa.Inst
		loads, branches := 0, 0
		for i := 0; i < 20000; i++ {
			g.Next(&in)
			if in.IsLoad() {
				loads++
			}
			if in.IsBranch() {
				branches++
			}
		}
		if loads == 0 {
			t.Errorf("%s: no loads generated", b.Name)
		}
		if branches == 0 {
			t.Errorf("%s: no branches generated", b.Name)
		}
		if frac := float64(loads) / 20000; frac > 0.45 {
			t.Errorf("%s: load fraction %.2f too high (LQ would throttle the ROB)",
				b.Name, frac)
		}
	}
}

// TestMemoryIntensiveHavePhases checks that every memory-intensive
// benchmark mixes in a compute phase (DESIGN.md: phase behaviour carries
// the residual ABC that no flush-based mechanism can remove).
func TestMemoryIntensiveHavePhases(t *testing.T) {
	for _, b := range MemoryIntensive() {
		found := false
		for _, k := range b.Kernels {
			if k.Name == "compute" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: missing compute phase kernel", b.Name)
		}
	}
}

// TestWorkingSets checks the suite's region sizing rule: memory-intensive
// main kernels must touch regions beyond the 1 MiB LLC; compute-intensive
// benchmarks must stay cache-resident.
func TestWorkingSets(t *testing.T) {
	const llc = 1 << 20
	for _, b := range All() {
		var maxRegion uint64
		for _, k := range b.Kernels {
			if k.Name == "compute" {
				continue
			}
			for _, s := range k.Streams {
				if s.Region > maxRegion {
					maxRegion = s.Region
				}
			}
		}
		if b.MemoryIntensive && maxRegion < llc {
			t.Errorf("%s: memory-intensive but max region %d < LLC", b.Name, maxRegion)
		}
		if !b.MemoryIntensive && maxRegion > llc {
			t.Errorf("%s: compute-intensive but region %d > LLC", b.Name, maxRegion)
		}
	}
}
