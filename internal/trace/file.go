package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rarsim/internal/isa"
)

// Trace files: a compact binary recording of a dynamic instruction stream,
// so the simulator can replay external workloads (or snapshots of the
// synthetic ones) instead of generating on the fly. The format is
// deliberately boring — fixed-size little-endian records behind a small
// header — and transparently gzip-compressed when the filename ends in
// ".gz".
//
//	offset  size  field
//	0       6     magic "RARTRC"
//	6       2     version (1)
//	8       8     instruction count
//	16      8     wrong-path synthesiser seed
//	24      8     wrong-path synthesiser base address
//	32      8     name length n
//	40      n     workload name (UTF-8)
//	...           count records, 32 bytes each:
//	                pc u64 | addr u64 | target u64 |
//	                class u8 | flags u8 (bit0 taken) |
//	                src1 u8 | src2 u8 | dest u8 | size u8 | pad u16

const (
	traceMagic   = "RARTRC"
	traceVersion = 1
	recordBytes  = 32
)

// WriteTrace records n instructions from src into w. When src exposes
// WrongPathParams (Generator does), the parameters are recorded so the
// replay's synthetic wrong-path stream matches the original exactly.
func WriteTrace(w io.Writer, name string, src Source, n uint64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var wpSeed, wpBase uint64
	if p, ok := src.(interface{ WrongPathParams() (uint64, uint64) }); ok {
		wpSeed, wpBase = p.WrongPathParams()
	}
	var hdr [34]byte
	binary.LittleEndian.PutUint16(hdr[0:2], traceVersion)
	binary.LittleEndian.PutUint64(hdr[2:10], n)
	binary.LittleEndian.PutUint64(hdr[10:18], wpSeed)
	binary.LittleEndian.PutUint64(hdr[18:26], wpBase)
	binary.LittleEndian.PutUint64(hdr[26:34], uint64(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}

	var rec [recordBytes]byte
	var in isa.Inst
	for i := uint64(0); i < n; i++ {
		src.Next(&in)
		binary.LittleEndian.PutUint64(rec[0:8], in.PC)
		binary.LittleEndian.PutUint64(rec[8:16], in.Addr)
		binary.LittleEndian.PutUint64(rec[16:24], in.Target)
		rec[24] = byte(in.Class)
		rec[25] = 0
		if in.Taken {
			rec[25] = 1
		}
		rec[26] = byte(in.Src1)
		rec[27] = byte(in.Src2)
		rec[28] = byte(in.Dest)
		rec[29] = in.Size
		rec[30], rec[31] = 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// atomicWriteFile writes through write into a temp file in path's
// directory and renames it into place only after the write, sync and
// close have all succeeded, so a failure mid-write can never leave a
// truncated file at path — the same discipline as the simulation cache's
// diskStore. The temp file lives in the target directory so the final
// rename stays on one filesystem (and therefore atomic).
func atomicWriteFile(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".trace-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = write(f)
	// On a write path the sync/close errors are load-bearing: they are the
	// last chance to learn the data never fully reached disk.
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		//rarlint:allow errdiscipline best-effort cleanup of a temp file that never became the target
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// WriteTraceFile records n instructions from src into path, gzipping when
// the path ends in ".gz". The file is written atomically: on any error the
// target path is left untouched (no partial trace ever appears there), and
// the gzip footer is always completed before the file can be renamed into
// place.
func WriteTraceFile(path, name string, src Source, n uint64) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".gz") {
			gz := gzip.NewWriter(w)
			if err := WriteTrace(gz, name, src, n); err != nil {
				//rarlint:allow errdiscipline the write error takes precedence and the temp file is discarded
				gz.Close()
				return err
			}
			return gz.Close()
		}
		return WriteTrace(w, name, src, n)
	})
}

// FileSource replays a recorded trace. The recording is loaded into memory
// and looped, so the stream is infinite like a Generator's. FileSource
// implements Source.
type FileSource struct {
	name  string
	insts []isa.Inst
	pos   int
	wp    *wpSynth
}

// ReadTrace parses a trace from r.
func ReadTrace(r io.Reader) (*FileSource, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(traceMagic)+34)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:len(traceMagic)])
	}
	if v := binary.LittleEndian.Uint16(head[6:8]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	wpSeed := binary.LittleEndian.Uint64(head[16:24])
	wpBase := binary.LittleEndian.Uint64(head[24:32])
	nameLen := binary.LittleEndian.Uint64(head[32:40])
	if count == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: short name: %w", err)
	}

	// The header's count field is attacker-controlled: a corrupt or hostile
	// trace can claim 2^60 records backed by no data at all, and an
	// up-front make([]isa.Inst, count) would try to commit the whole claim
	// before a single record is verified. Cap the preallocation and grow
	// only as records actually arrive — a truncated body then fails with a
	// short-record error instead of an allocation panic.
	const maxPrealloc = 1 << 16
	fs := &FileSource{
		name:  string(nameBuf),
		insts: make([]isa.Inst, 0, min(count, maxPrealloc)),
	}
	var rec [recordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: short record %d: %w", i, err)
		}
		var in isa.Inst
		in.PC = binary.LittleEndian.Uint64(rec[0:8])
		in.Addr = binary.LittleEndian.Uint64(rec[8:16])
		in.Target = binary.LittleEndian.Uint64(rec[16:24])
		in.Class = isa.Class(rec[24])
		if in.Class >= isa.NumClasses {
			return nil, fmt.Errorf("trace: record %d has invalid class %d", i, rec[24])
		}
		in.Taken = rec[25]&1 != 0
		in.Src1 = isa.Reg(rec[26])
		in.Src2 = isa.Reg(rec[27])
		in.Dest = isa.Reg(rec[28])
		in.Size = rec[29]
		fs.insts = append(fs.insts, in)
	}
	fs.wp = newWpSynth(wpSeed, wpBase)
	return fs, nil
}

// OpenTraceFile opens a trace file, decompressing ".gz" paths.
func OpenTraceFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//rarlint:allow errdiscipline read-path close; read errors already surface via ReadTrace
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		//rarlint:allow errdiscipline read-path close; decompression errors already surface via ReadTrace
		defer gz.Close()
		r = gz
	}
	return ReadTrace(r)
}

// Name returns the workload name recorded in the trace.
func (fs *FileSource) Name() string { return fs.name }

// Len returns the number of recorded instructions (one loop).
func (fs *FileSource) Len() int { return len(fs.insts) }

// Next serves the next recorded instruction, looping at the end.
func (fs *FileSource) Next(in *isa.Inst) {
	*in = fs.insts[fs.pos]
	fs.pos++
	if fs.pos == len(fs.insts) {
		fs.pos = 0
	}
}

// NextBlock fills dst with the next len(dst) recorded instructions,
// looping at the end — the batch face of Next (see BlockSource). Each
// wrap-free stretch is one bulk copy instead of a per-record interface
// call, which is where replayed traces spend their synthesis time.
//
//rarlint:hot
func (fs *FileSource) NextBlock(dst []isa.Inst) {
	for len(dst) > 0 {
		n := copy(dst, fs.insts[fs.pos:])
		fs.pos += n
		if fs.pos == len(fs.insts) {
			fs.pos = 0
		}
		dst = dst[n:]
	}
}

// WrongPath synthesises wrong-path filler (recordings only contain the
// correct path).
func (fs *FileSource) WrongPath(in *isa.Inst, pc uint64) {
	fs.wp.wrongPath(in, pc)
}

// WrongPathBlock synthesises len(dst) consecutive wrong-path instructions
// starting at pc — the batch face of WrongPath (see BlockSource).
//
//rarlint:hot
func (fs *FileSource) WrongPathBlock(dst []isa.Inst, pc uint64) {
	fs.wp.wrongPathBlock(dst, pc)
}
