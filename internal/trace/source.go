package trace

import "rarsim/internal/isa"

// Source supplies a dynamic instruction stream to the simulated core: the
// correct path via Next and synthetic wrong-path filler via WrongPath.
// Generator (synthetic workloads) and FileSource (recorded traces) both
// implement it.
type Source interface {
	// Next fills in with the next correct-path instruction. The stream
	// is infinite; sources over finite recordings loop.
	Next(in *isa.Inst)
	// WrongPath fills in with a plausible wrong-path instruction at pc,
	// used when fetch runs down a mispredicted, non-reconvergent path.
	WrongPath(in *isa.Inst, pc uint64)
}

// wpSynth synthesises wrong-path instructions: a mix of ALU work and
// scattered loads into a hot region, using scratch registers that never
// alias correct-path dependences. Shared by Generator and FileSource.
type wpSynth struct {
	rnd  *rng
	ring [8]isa.Reg
	pos  int
	seed uint64
	base uint64
}

func newWpSynth(seed, base uint64) *wpSynth {
	return &wpSynth{rnd: newRNG(seed ^ 0xDEADBEEF), seed: seed, base: base}
}

// params returns the synthesiser's construction parameters, so trace
// recordings can reproduce the exact same wrong-path stream on replay.
func (w *wpSynth) params() (seed, base uint64) { return w.seed, w.base }

func (w *wpSynth) wrongPath(in *isa.Inst, pc uint64) {
	*in = isa.Inst{
		PC:        pc,
		Src1:      isa.NoReg,
		Src2:      isa.NoReg,
		Dest:      isa.NoReg,
		WrongPath: true,
	}
	roll := w.rnd.intn(100)
	switch {
	case roll < 50:
		in.Class = isa.IntAlu
		in.Dest = w.allocDest(false)
		in.Src1 = w.ring[w.rnd.intn(len(w.ring))]
	case roll < 60:
		// Wrong-path loads touch the hot working set: mostly cache hits,
		// occasional pollution, as on real mispredicted paths.
		in.Class = isa.Load
		region := uint64(128 << 10)
		in.Addr = w.base + (w.rnd.next64()%(region/CacheLine))*CacheLine
		in.Size = 8
		in.Dest = w.allocDest(false)
	case roll < 70:
		in.Class = isa.FpAdd
		in.Dest = w.allocDest(true)
	case roll < 80:
		in.Class = isa.Branch
		in.Taken = false
		in.Target = pc + isa.InstBytes
	default:
		in.Class = isa.IntAlu
		in.Dest = w.allocDest(false)
	}
	if in.Dest.Valid() {
		w.ring[w.pos] = in.Dest
		w.pos = (w.pos + 1) % len(w.ring)
	}
}

// allocDest hands out scratch registers r24..r31 / f24..f31.
func (w *wpSynth) allocDest(fp bool) isa.Reg {
	n := isa.Reg(w.rnd.intn(8))
	if fp {
		return isa.FirstFpReg + 24 + n
	}
	return 24 + n
}
