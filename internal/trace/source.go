package trace

import "rarsim/internal/isa"

// Source supplies a dynamic instruction stream to the simulated core: the
// correct path via Next and synthetic wrong-path filler via WrongPath.
// Generator (synthetic workloads) and FileSource (recorded traces) both
// implement it.
type Source interface {
	// Next fills in with the next correct-path instruction. The stream
	// is infinite; sources over finite recordings loop.
	Next(in *isa.Inst)
	// WrongPath fills in with a plausible wrong-path instruction at pc,
	// used when fetch runs down a mispredicted, non-reconvergent path.
	WrongPath(in *isa.Inst, pc uint64)
}

// BlockSource is the batch face of Source: a source that can fill a
// caller-owned slice in one call instead of being driven one virtual
// dispatch per instruction. The contract is byte-identical equivalence
// with the scalar face — NextBlock(dst) leaves the source in exactly the
// state of len(dst) consecutive Next calls and fills dst with exactly
// those instructions, and WrongPathBlock(dst, pc) matches len(dst)
// WrongPath calls at pc, pc+InstBytes, ... — so a consumer may freely mix
// block and scalar reads of the same stream. A zero-length dst is a no-op.
//
// Generator and FileSource both implement it; the core's stream buffer
// type-asserts for it and falls back to the scalar face otherwise (see
// ScalarOnly, which deliberately hides it for A/B equivalence tests).
type BlockSource interface {
	Source
	// NextBlock fills dst with the next len(dst) correct-path
	// instructions.
	NextBlock(dst []isa.Inst)
	// WrongPathBlock fills dst with len(dst) consecutive wrong-path
	// instructions starting at pc (PCs advance by isa.InstBytes).
	WrongPathBlock(dst []isa.Inst, pc uint64)
}

// ScalarOnly wraps src so only the scalar Source face is visible: the
// returned source never satisfies BlockSource even when src does. It
// exists for the batched-vs-scalar A/B equivalence harness — running the
// same workload through a ScalarOnly-wrapped generator forces every
// consumer onto the one-instruction-at-a-time path.
func ScalarOnly(src Source) Source { return scalarOnly{src} }

type scalarOnly struct{ src Source }

func (w scalarOnly) Next(in *isa.Inst)                 { w.src.Next(in) }
func (w scalarOnly) WrongPath(in *isa.Inst, pc uint64) { w.src.WrongPath(in, pc) }

// wpSynth synthesises wrong-path instructions: a mix of ALU work and
// scattered loads into a hot region, using scratch registers that never
// alias correct-path dependences. Shared by Generator and FileSource.
type wpSynth struct {
	rnd  *rng
	ring [8]isa.Reg
	pos  int
	seed uint64
	base uint64
}

func newWpSynth(seed, base uint64) *wpSynth {
	return &wpSynth{rnd: newRNG(seed ^ 0xDEADBEEF), seed: seed, base: base}
}

// params returns the synthesiser's construction parameters, so trace
// recordings can reproduce the exact same wrong-path stream on replay.
func (w *wpSynth) params() (seed, base uint64) { return w.seed, w.base }

// wrongPathBlock synthesises len(dst) consecutive wrong-path instructions
// starting at pc — the batch face of wrongPath, consuming the synthesiser's
// RNG in exactly the same order. Callers must only batch instructions that
// will all actually be fetched: the RNG state is shared across wrong-path
// episodes, so over-generating would perturb later episodes relative to the
// scalar path.
func (w *wpSynth) wrongPathBlock(dst []isa.Inst, pc uint64) {
	for i := range dst {
		w.wrongPath(&dst[i], pc)
		pc += isa.InstBytes
	}
}

func (w *wpSynth) wrongPath(in *isa.Inst, pc uint64) {
	*in = isa.Inst{
		PC:        pc,
		Src1:      isa.NoReg,
		Src2:      isa.NoReg,
		Dest:      isa.NoReg,
		WrongPath: true,
	}
	roll := w.rnd.intn(100)
	switch {
	case roll < 50:
		in.Class = isa.IntAlu
		in.Dest = w.allocDest(false)
		in.Src1 = w.ring[w.rnd.intn(len(w.ring))]
	case roll < 60:
		// Wrong-path loads touch the hot working set: mostly cache hits,
		// occasional pollution, as on real mispredicted paths.
		in.Class = isa.Load
		region := uint64(128 << 10)
		in.Addr = w.base + (w.rnd.next64()%(region/CacheLine))*CacheLine
		in.Size = 8
		in.Dest = w.allocDest(false)
	case roll < 70:
		in.Class = isa.FpAdd
		in.Dest = w.allocDest(true)
	case roll < 80:
		in.Class = isa.Branch
		in.Taken = false
		in.Target = pc + isa.InstBytes
	default:
		in.Class = isa.IntAlu
		in.Dest = w.allocDest(false)
	}
	if in.Dest.Valid() {
		w.ring[w.pos] = in.Dest
		w.pos = (w.pos + 1) % len(w.ring)
	}
}

// allocDest hands out scratch registers r24..r31 / f24..f31.
func (w *wpSynth) allocDest(fp bool) isa.Reg {
	n := isa.Reg(w.rnd.intn(8))
	if fp {
		return isa.FirstFpReg + 24 + n
	}
	return 24 + n
}
