package trace

import "rarsim/internal/isa"

// RandomBenchmark derives a random but valid synthetic benchmark from an
// arbitrary byte string: instruction mixes, dependence distances, stream
// patterns and branch placements all vary with raw, while staying inside
// the spec's validation rules. It is the shared generator behind the
// fast-forward equivalence fuzz harnesses (single-core and chip-level):
// the same raw bytes always produce the same benchmark, so a failing
// input reported by testing/quick reproduces exactly.
func RandomBenchmark(raw []byte) Benchmark {
	next := func(i int) int {
		if len(raw) == 0 {
			return 7
		}
		return int(raw[i%len(raw)])
	}
	bodyLen := 4 + next(0)%10
	var body []Op
	for i := 0; i < bodyLen; i++ {
		r := next(i+1) % 100
		dep := next(i+2)%4 + 1
		switch {
		case r < 25:
			body = append(body, Op{Class: isa.Load, Stream: next(i+3) % 2})
		case r < 35:
			body = append(body, Op{Class: isa.Store, Stream: next(i+3) % 2, Dep1: dep})
		case r < 45 && i+2 < bodyLen:
			body = append(body, Op{Class: isa.Branch,
				TakenProb: float64(next(i+4)%50) / 100, SkipLen: 1, DepLoad: r%2 == 0})
		case r < 60:
			body = append(body, Op{Class: isa.FpAdd, Dep1: dep})
		case r < 70:
			body = append(body, Op{Class: isa.IntDiv, Dep1: dep})
		default:
			body = append(body, Op{Class: isa.IntAlu, Dep1: dep, Dep2: next(i+5) % 3})
		}
	}
	patterns := []Pattern{Seq, Strided, Chase, Rand}
	return Benchmark{
		Name: "fuzz",
		Kernels: []Kernel{{
			Name:       "k",
			Iterations: 2 + next(6)%40,
			Streams: []StreamSpec{
				{Pattern: patterns[next(7)%4], Region: 1 << (14 + next(8)%10), Stride: 8},
				{Pattern: patterns[next(9)%4], Region: 1 << (14 + next(10)%8), Stride: 16},
			},
			Body: body,
		}},
	}
}
