// Package energy estimates the dynamic energy of a simulation run from its
// activity counters — a McPAT-flavoured event-energy model, not a circuit
// simulation. The paper argues that redundancy-based reliability schemes
// cost substantial energy while runahead's overhead is modest (§I, §VI-B);
// this model quantifies that trade-off for every evaluated scheme: the
// extra fetch/dispatch/issue activity of runahead and the refetch energy
// of the flush-based schemes, against the static energy saved by finishing
// sooner.
package energy

import "rarsim/internal/core"

// Model holds per-event dynamic energies (picojoules) and a static power
// term (picojoules per cycle). The defaults are representative 22nm-class
// values in the spirit of McPAT-derived numbers used by runahead papers;
// the *relative* scheme comparison is insensitive to their exact
// magnitudes.
type Model struct {
	FetchPJ    float64 //rarlint:unit joules/uops -- fetch + decode one instruction
	DispatchPJ float64 //rarlint:unit joules/uops -- rename + ROB/IQ allocation
	IssuePJ    float64 //rarlint:unit joules/uops -- wakeup/select + register read + execute
	L1PJ       float64 // L1 access
	LLCMissPJ  float64 // off-chip access (DRAM read or write)
	StaticPJ   float64 //rarlint:unit joules/cycles -- leakage + clock per cycle
}

// DefaultModel returns the representative event energies.
func DefaultModel() Model {
	return Model{
		FetchPJ:    12,
		DispatchPJ: 18,
		IssuePJ:    25,
		L1PJ:       10,
		LLCMissPJ:  2000,
		StaticPJ:   45,
	}
}

// Breakdown is the estimated energy of a run, in microjoules.
type Breakdown struct {
	FrontEnd float64 //rarlint:unit joules -- fetch + dispatch activity
	Execute  float64 //rarlint:unit joules -- issue/execute activity
	Memory   float64 //rarlint:unit joules -- cache and DRAM traffic
	Static   float64 //rarlint:unit joules -- leakage over the run's cycles
}

// Total returns the run's total energy in microjoules.
//
//rarlint:pure
//rarlint:unit joules
func (b Breakdown) Total() float64 {
	return b.FrontEnd + b.Execute + b.Memory + b.Static
}

// Estimate computes the energy breakdown of a run's statistics.
//
//rarlint:pure
func (m Model) Estimate(st core.Stats) Breakdown {
	const toMicro = 1e-6
	var b Breakdown
	b.FrontEnd = (float64(st.TotalFetched)*m.FetchPJ +
		float64(st.TotalDispatched)*m.DispatchPJ) * toMicro
	b.Execute = float64(st.TotalIssued) * m.IssuePJ * toMicro
	b.Memory = (float64(st.Mem.DemandLoads)*m.L1PJ +
		float64(st.Mem.DRAMReads+st.Mem.DRAMWrites)*m.LLCMissPJ) * toMicro
	b.Static = float64(st.Cycles) * m.StaticPJ * toMicro
	return b
}

// EPI returns the estimated energy per committed instruction in
// picojoules.
//
//rarlint:pure
//rarlint:unit joules/insts
func (m Model) EPI(st core.Stats) float64 {
	if st.Committed == 0 {
		return 0
	}
	return m.Estimate(st).Total() * 1e6 / float64(st.Committed)
}

// Overhead returns the scheme's total-energy ratio against a baseline run
// of the same work (>1 = costs energy, <1 = saves energy).
//
//rarlint:pure
//rarlint:unit 1
func (m Model) Overhead(baseline, scheme core.Stats) float64 {
	base := m.Estimate(baseline).Total()
	if base == 0 {
		return 0
	}
	return m.Estimate(scheme).Total() / base
}
