package energy

import (
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/mem"
	"rarsim/internal/trace"
)

func runStats(t *testing.T, scheme config.Scheme, benchName string) core.Stats {
	t.Helper()
	b, err := trace.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.New(config.Baseline(), scheme, b, 42).RunWarm(20_000, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBreakdownArithmetic(t *testing.T) {
	m := DefaultModel()
	st := core.Stats{
		Committed:       1000,
		Cycles:          2000,
		TotalFetched:    1500,
		TotalDispatched: 1400,
		TotalIssued:     1300,
		Mem:             mem.Stats{DemandLoads: 300, DRAMReads: 10, DRAMWrites: 5},
	}
	b := m.Estimate(st)
	wantFE := (1500*m.FetchPJ + 1400*m.DispatchPJ) * 1e-6
	if b.FrontEnd != wantFE {
		t.Errorf("front-end = %v, want %v", b.FrontEnd, wantFE)
	}
	if b.Total() != b.FrontEnd+b.Execute+b.Memory+b.Static {
		t.Error("total must sum the parts")
	}
	if m.EPI(st) <= 0 {
		t.Error("EPI must be positive")
	}
	if m.EPI(core.Stats{}) != 0 {
		t.Error("EPI of an empty run must be 0")
	}
}

// TestRunaheadEnergyProfile encodes the literature's energy story: PRE's
// extra speculative activity costs energy per instruction, but the shorter
// runtime claws static energy back — total overhead stays modest (the PRE
// paper reports a few percent), nothing like the 2x of full redundancy.
func TestRunaheadEnergyProfile(t *testing.T) {
	m := DefaultModel()
	base := runStats(t, config.OoO, "libquantum")
	pre := runStats(t, config.PRE, "libquantum")
	rar := runStats(t, config.RAR, "libquantum")

	for name, st := range map[string]core.Stats{"PRE": pre, "RAR": rar} {
		ov := m.Overhead(base, st)
		if ov > 1.5 {
			t.Errorf("%s energy overhead %.2fx implausibly high", name, ov)
		}
		if ov < 0.5 {
			t.Errorf("%s energy overhead %.2fx implausibly low", name, ov)
		}
	}
	// Runahead schemes do more front-end work per committed instruction.
	if pre.TotalFetched <= base.TotalFetched {
		t.Error("PRE must fetch more than the baseline (runahead refetch)")
	}
	if rar.TotalDispatched <= base.TotalDispatched {
		t.Error("RAR must dispatch more than the baseline (flush refill)")
	}
}

func TestOverheadDegenerate(t *testing.T) {
	m := DefaultModel()
	if m.Overhead(core.Stats{}, core.Stats{Cycles: 5}) != 0 {
		t.Error("zero baseline must yield 0")
	}
}
