package config

import (
	"testing"

	"rarsim/internal/mem"
)

// TestBaselineMatchesTableII pins the baseline core to the paper's Table II.
func TestBaselineMatchesTableII(t *testing.T) {
	c := Baseline()
	if c.ROB != 192 || c.IQ != 92 || c.LQ != 64 || c.SQ != 64 {
		t.Errorf("back-end sizes: %+v", c)
	}
	if c.Width != 4 || c.FrontEndDepth != 8 {
		t.Errorf("width/depth: %d/%d", c.Width, c.FrontEndDepth)
	}
	if c.IntRegs != 168 || c.FpRegs != 168 {
		t.Errorf("register files: %d/%d", c.IntRegs, c.FpRegs)
	}
	if c.SST != 128 || c.PRDQ != 192 {
		t.Errorf("SST/PRDQ: %d/%d", c.SST, c.PRDQ)
	}
	if c.IntAdd.Count != 3 || c.IntAdd.Latency != 1 || !c.IntAdd.Pipelined {
		t.Errorf("int add pool: %+v", c.IntAdd)
	}
	if c.IntDiv.Latency != 18 || c.IntDiv.Pipelined {
		t.Errorf("int div pool: %+v", c.IntDiv)
	}
	if c.FpMult.Latency != 5 || c.FpDiv.Latency != 6 || c.FpAdd.Latency != 3 {
		t.Error("FP latencies do not match Table II")
	}
	if c.RunaheadTimer != 15 {
		t.Errorf("runahead countdown = %d, want 15", c.RunaheadTimer)
	}
	if c.Mem.L1DSize != 32<<10 || c.Mem.L2Size != 256<<10 || c.Mem.L3Size != 1<<20 {
		t.Errorf("cache sizes: %+v", c.Mem)
	}
	if c.Mem.MSHRs != 20 {
		t.Errorf("MSHRs = %d, want 20", c.Mem.MSHRs)
	}
	if c.Mem.Prefetch != mem.PrefetchOff {
		t.Error("baseline must not have a prefetcher (§IV-A)")
	}
	if c.IntFUCount() != 5 || c.FpFUCount() != 3 {
		t.Errorf("FU counts: %d int, %d fp", c.IntFUCount(), c.FpFUCount())
	}
}

// TestScaledCoresMatchTableI pins the scaling configurations to Table I.
func TestScaledCoresMatchTableI(t *testing.T) {
	cores := ScaledCores()
	if len(cores) != 4 {
		t.Fatalf("expected 4 cores, got %d", len(cores))
	}
	type row struct{ rob, iq, lq, sq, regs int }
	want := []row{
		{128, 36, 48, 32, 120},
		{192, 92, 64, 64, 168},
		{224, 97, 64, 60, 180},
		{352, 128, 128, 72, 256},
	}
	for i, w := range want {
		c := cores[i]
		if c.ROB != w.rob || c.IQ != w.iq || c.LQ != w.lq || c.SQ != w.sq ||
			c.IntRegs != w.regs || c.FpRegs != w.regs {
			t.Errorf("core-%d = %+v, want %+v", i+1, c, w)
		}
		if c.PRDQ != c.ROB {
			t.Errorf("core-%d PRDQ should scale with ROB", i+1)
		}
	}
}

// TestSchemeMatrixMatchesTableIV pins the variant feature matrix.
func TestSchemeMatrixMatchesTableIV(t *testing.T) {
	type row struct{ early, flush, lean bool }
	want := map[string]row{
		"TR":        {false, true, false},
		"TR-EARLY":  {true, true, false},
		"PRE":       {false, false, true},
		"PRE-EARLY": {true, false, true},
		"RAR-LATE":  {false, true, true},
		"RAR":       {true, true, true},
	}
	for _, s := range RunaheadVariants() {
		w, ok := want[s.Name]
		if !ok {
			if s.Name != "FLUSH" {
				t.Errorf("unexpected variant %q", s.Name)
			}
			continue
		}
		if s.Early != w.early || s.FlushAtExit != w.flush || s.Lean != w.lean {
			t.Errorf("%s = early=%v flush=%v lean=%v, want %+v",
				s.Name, s.Early, s.FlushAtExit, s.Lean, w)
		}
		if !s.Runahead || s.FlushAtEntry {
			t.Errorf("%s must be a runahead scheme", s.Name)
		}
	}
	if !TR.IssueWindow || TREarly.IssueWindow {
		t.Error("only TR carries the issue-window filter")
	}
	if !FLUSH.FlushAtEntry || FLUSH.Runahead {
		t.Error("FLUSH is flush-at-entry, not runahead")
	}
	if OoO.Runahead || OoO.FlushAtEntry {
		t.Error("OoO is the plain baseline")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"OoO", "FLUSH", "TR", "TR-EARLY", "PRE", "PRE-EARLY", "RAR-LATE", "RAR"} {
		s, err := SchemeByName(name)
		if err != nil || s.Name != name {
			t.Errorf("SchemeByName(%q) = %v, %v", name, s.Name, err)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("unknown scheme must error")
	}
}

func TestWithPrefetch(t *testing.T) {
	c := Baseline().WithPrefetch(mem.PrefetchL3)
	if c.Mem.Prefetch != mem.PrefetchL3 || c.Mem.PrefetchDegree == 0 {
		t.Errorf("prefetch config: %+v", c.Mem)
	}
	if c.Name == Baseline().Name {
		t.Error("prefetch-enabled core must get a distinct name")
	}
	// The original is unaffected (value semantics).
	if Baseline().Mem.Prefetch != mem.PrefetchOff {
		t.Error("Baseline() mutated")
	}
}

func TestSchemesList(t *testing.T) {
	s := Schemes()
	if len(s) != 5 || s[0].Name != "OoO" || s[len(s)-1].Name != "RAR" {
		t.Errorf("Schemes() = %v", s)
	}
	if len(RunaheadVariants()) != 7 {
		t.Errorf("RunaheadVariants() has %d entries", len(RunaheadVariants()))
	}
}
