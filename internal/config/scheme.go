package config

import "fmt"

// Scheme describes one of the evaluated microarchitecture mechanisms: the
// baseline, Weaver-style Flushing, and the six runahead variants of the
// design-space exploration (Table IV).
type Scheme struct {
	// Name is the paper's name for the scheme.
	Name string

	// Runahead enables runahead execution.
	Runahead bool

	// Early triggers runahead (or the flush, for FLUSH) as soon as an
	// LLC-miss load blocks commit at the ROB head, detected by the
	// RunaheadTimer countdown. Without Early, runahead waits for a
	// full-ROB stall.
	Early bool

	// FlushAtExit flushes the entire back-end when leaving runahead mode
	// and refetches from the blocking load — RAR's first optimisation.
	// State accumulated during the runahead interval becomes un-ACE.
	FlushAtExit bool

	// Lean executes only the backward slices of loads during runahead
	// (PRE-style, via the SST); non-lean runahead executes every fetched
	// instruction (traditional runahead).
	Lean bool

	// FlushAtEntry is the Weaver et al. Flushing mechanism: squash
	// everything past the blocking load as soon as it is identified as a
	// long-latency miss, and stall fetch until the data returns. No
	// runahead.
	FlushAtEntry bool

	// IssueWindow applies traditional runahead's trigger filter: only
	// enter runahead if the blocking load was sent to memory less than
	// TRIssueWindow cycles before the stall.
	IssueWindow bool
}

// The evaluated schemes (§V).
var (
	// OoO is the unmodified baseline out-of-order core.
	OoO = Scheme{Name: "OoO"}

	// FLUSH is Weaver et al.'s flushing: flush when a memory access
	// blocks the ROB head, refill when it returns.
	FLUSH = Scheme{Name: "FLUSH", FlushAtEntry: true, Early: true}

	// TR is traditional runahead (Mutlu et al.): full-ROB trigger with
	// the 250-cycle issue window, executes everything, flushes at exit.
	TR = Scheme{Name: "TR", Runahead: true, FlushAtExit: true, IssueWindow: true}

	// TREarly is TR with the early-start trigger.
	TREarly = Scheme{Name: "TR-EARLY", Runahead: true, FlushAtExit: true, Early: true}

	// PRE is Precise Runahead Execution: full-ROB trigger, lean slice
	// execution, no flush at exit (the frozen ROB state is kept).
	PRE = Scheme{Name: "PRE", Runahead: true, Lean: true}

	// PREEarly is PRE with the early-start trigger.
	PREEarly = Scheme{Name: "PRE-EARLY", Runahead: true, Lean: true, Early: true}

	// RARLate is Reliability-Aware Runahead without the early start:
	// full-ROB trigger, lean, flush at exit.
	RARLate = Scheme{Name: "RAR-LATE", Runahead: true, Lean: true, FlushAtExit: true}

	// RAR is the paper's proposal: early start, lean, flush at exit.
	RAR = Scheme{Name: "RAR", Runahead: true, Lean: true, FlushAtExit: true, Early: true}
)

// Schemes returns the five headline configurations of §V in paper order.
func Schemes() []Scheme {
	return []Scheme{OoO, FLUSH, PRE, RARLate, RAR}
}

// RunaheadVariants returns the six-variant design space of Table IV plus
// FLUSH, as compared in Figure 9.
func RunaheadVariants() []Scheme {
	return []Scheme{FLUSH, TR, TREarly, PRE, PREEarly, RARLate, RAR}
}

// SchemeByName looks a scheme up by its paper name.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range append(Schemes(), RunaheadVariants()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("config: unknown scheme %q", name)
}
