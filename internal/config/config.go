// Package config holds the simulated machine configurations: the paper's
// baseline out-of-order core (Table II), the four scaling configurations
// (Table I), and the runahead scheme descriptors (the Table IV feature
// matrix).
package config

import "rarsim/internal/mem"

// FUPool describes one class of functional units.
type FUPool struct {
	// Count is the number of units in the pool.
	Count int
	// Latency is the execution latency in cycles.
	//rarlint:unit cycles
	Latency uint64
	// Pipelined units accept a new operation every cycle; unpipelined
	// units are busy for the full latency.
	Pipelined bool
}

// Core is a complete core configuration.
type Core struct {
	// Name identifies the configuration ("baseline", "core-1", ...).
	Name string

	// FrequencyGHz is the core clock (Table II: 2.66 GHz). The simulator
	// is cycle-based; the frequency only matters when converting cycle
	// counts to wall-clock time for absolute FIT/MTTF estimates.
	FrequencyGHz float64

	// Width is the pipeline width: fetch, decode/rename/dispatch, issue
	// and commit bandwidth per cycle.
	Width int
	// FrontEndDepth is the number of front-end stages (fetch to
	// dispatch); it sets the branch misprediction / flush refill penalty.
	FrontEndDepth int

	// Back-end structure sizes.
	ROB, IQ, LQ, SQ int
	IntRegs, FpRegs int

	// Runahead hardware (PRE/RAR).
	SST  int // stalling slice table entries
	PRDQ int // precise register deallocation queue entries

	// Functional units (Table II).
	IntAdd, IntMult, IntDiv FUPool
	FpAdd, FpMult, FpDiv    FUPool

	// RunaheadTimer is the ROB-head countdown used by the early-start
	// trigger and by FLUSH's long-latency-load detection: a load that has
	// blocked the head for this many cycles is assumed to be an LLC miss
	// (§III-D: L1+L2+L3 tag lookups are 1+3+10 cycles, so >14 cycles at
	// the head implies an LLC miss).
	//rarlint:unit cycles
	RunaheadTimer uint64

	// PostCommitStoreBuffer is the number of committed stores that may be
	// buffered while draining to the L1D.
	PostCommitStoreBuffer int

	// Mem is the cache/DRAM configuration.
	Mem mem.Config
}

// Baseline returns the Table II core: 4-wide, 8-stage front-end, 192-entry
// ROB, 92 IQ, 64 LQ, 64 SQ, 168+168 registers, TAGE-SC-L, no prefetcher.
func Baseline() Core {
	return Core{
		Name:          "baseline",
		FrequencyGHz:  2.66,
		Width:         4,
		FrontEndDepth: 8,
		ROB:           192,
		IQ:            92,
		LQ:            64,
		SQ:            64,
		IntRegs:       168,
		FpRegs:        168,
		SST:           128,
		PRDQ:          192,
		IntAdd:        FUPool{Count: 3, Latency: 1, Pipelined: true},
		IntMult:       FUPool{Count: 1, Latency: 3, Pipelined: true},
		IntDiv:        FUPool{Count: 1, Latency: 18, Pipelined: false},
		FpAdd:         FUPool{Count: 1, Latency: 3, Pipelined: true},
		FpMult:        FUPool{Count: 1, Latency: 5, Pipelined: true},
		FpDiv:         FUPool{Count: 1, Latency: 6, Pipelined: false},
		RunaheadTimer: 15,

		PostCommitStoreBuffer: 8,
		Mem:                   mem.DefaultConfig(),
	}
}

// ScaledCores returns the four configurations of Table I, modelled on the
// Nehalem → Haswell → Skylake → Ice Lake back-end growth. Core-2 matches
// the baseline's back-end sizes.
func ScaledCores() []Core {
	type row struct {
		name                 string
		rob, iq, lq, sq, rgs int
	}
	rows := []row{
		{"core-1", 128, 36, 48, 32, 120},
		{"core-2", 192, 92, 64, 64, 168},
		{"core-3", 224, 97, 64, 60, 180},
		{"core-4", 352, 128, 128, 72, 256},
	}
	out := make([]Core, 0, len(rows))
	for _, r := range rows {
		c := Baseline()
		c.Name = r.name
		c.ROB, c.IQ, c.LQ, c.SQ = r.rob, r.iq, r.lq, r.sq
		c.IntRegs, c.FpRegs = r.rgs, r.rgs
		c.PRDQ = r.rob
		out = append(out, c)
	}
	return out
}

// WithPrefetch returns a copy of c with the stride prefetcher enabled in
// the given mode (Figure 11).
func (c Core) WithPrefetch(mode mem.PrefetchMode) Core {
	c.Mem.Prefetch = mode
	if c.Mem.PrefetchDegree == 0 {
		c.Mem.PrefetchDegree = 4
	}
	c.Name = c.Name + mode.String()
	return c
}

// IntFUCount returns the number of integer functional units, for the AVF
// bit-count denominator.
func (c Core) IntFUCount() int { return c.IntAdd.Count + c.IntMult.Count + c.IntDiv.Count }

// FpFUCount returns the number of FP functional units.
func (c Core) FpFUCount() int { return c.FpAdd.Count + c.FpMult.Count + c.FpDiv.Count }
