package isa

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Nop: "nop", IntAlu: "ialu", IntMult: "imul", IntDiv: "idiv",
		FpAdd: "fadd", FpMult: "fmul", FpDiv: "fdiv",
		Load: "load", Store: "store", Branch: "branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("out-of-range class = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("Load/Store must be memory classes")
	}
	if IntAlu.IsMem() || Branch.IsMem() {
		t.Error("IntAlu/Branch must not be memory classes")
	}
	for _, c := range []Class{FpAdd, FpMult, FpDiv} {
		if !c.IsFp() {
			t.Errorf("%v must be FP", c)
		}
	}
	for _, c := range []Class{IntAlu, IntMult, IntDiv, Load, Store, Branch, Nop} {
		if c.IsFp() {
			t.Errorf("%v must not be FP", c)
		}
	}
}

func TestRegSpaces(t *testing.T) {
	if !Reg(0).IsInt() || !Reg(31).IsInt() {
		t.Error("r0..r31 are integer registers")
	}
	if Reg(31).IsFp() || !Reg(32).IsFp() || !Reg(63).IsFp() {
		t.Error("r32..r63 are FP registers")
	}
	if Reg(64).Valid() || NoReg.Valid() {
		t.Error("registers past 63 are invalid")
	}
	if got := Reg(3).String(); got != "r3" {
		t.Errorf("Reg(3) = %q", got)
	}
	if got := (FirstFpReg + 5).String(); got != "f5" {
		t.Errorf("f5 rendered as %q", got)
	}
	if got := NoReg.String(); got != "r?" {
		t.Errorf("NoReg rendered as %q", got)
	}
}

// Property: exactly one of IsInt, IsFp, !Valid holds for every register id.
func TestRegPartition(t *testing.T) {
	f := func(r uint8) bool {
		reg := Reg(r)
		n := 0
		if reg.IsInt() {
			n++
		}
		if reg.IsFp() {
			n++
		}
		if !reg.Valid() {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstHelpers(t *testing.T) {
	ld := Inst{Class: Load, Dest: 5, Addr: 0x1000, Size: 8, PC: 0x40}
	if !ld.IsLoad() || !ld.IsMem() || ld.IsStore() || !ld.HasDest() {
		t.Error("load predicates wrong")
	}
	if ld.NextPC() != 0x44 {
		t.Errorf("load NextPC = %#x", ld.NextPC())
	}

	br := Inst{Class: Branch, PC: 0x100, Taken: true, Target: 0x80}
	if br.NextPC() != 0x80 {
		t.Errorf("taken branch NextPC = %#x", br.NextPC())
	}
	br.Taken = false
	if br.NextPC() != 0x104 {
		t.Errorf("not-taken branch NextPC = %#x", br.NextPC())
	}

	st := Inst{Class: Store, Src1: 2, Src2: NoReg, Dest: NoReg, Addr: 0x2000}
	if st.HasDest() || !st.IsStore() {
		t.Error("store predicates wrong")
	}
	nop := Inst{Class: Nop, Src1: NoReg, Src2: NoReg, Dest: NoReg}
	if !nop.IsNop() || nop.HasDest() {
		t.Error("nop predicates wrong")
	}
}

func TestInstString(t *testing.T) {
	// Smoke-test the debug renderings; they must mention the key operands.
	cases := []Inst{
		{Class: Load, Dest: 1, Addr: 0xabc, PC: 4},
		{Class: Store, Src1: 2, Addr: 0xdef, PC: 8},
		{Class: Branch, Taken: true, Target: 0x20, PC: 12},
		{Class: IntAlu, Dest: 3, Src1: 1, Src2: 2, PC: 16},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Errorf("empty String() for %v", in.Class)
		}
	}
}
