package isa

import "fmt"

// Inst is one dynamic instruction as produced by a workload generator.
//
// An Inst is a value type: the pipeline copies it into its own bookkeeping
// structures (ROB entries and so on) and never mutates the generator's copy.
// Addresses and branch outcomes are resolved by the generator — the simulated
// core is a timing model, not a functional emulator — but the core only
// *learns* them at the pipeline stage where real hardware would (address
// generation for memory ops, execute for branches).
type Inst struct {
	// PC is the (synthetic) program counter of the instruction. Generators
	// assign stable PCs so that PC-indexed structures — the branch
	// predictor, the stalling slice table (SST), the prefetcher — see
	// realistic locality.
	PC uint64 //rarlint:quiescent fetch-path record: synthesized from the covered stream cursor when fetch resumes

	// Class is the instruction class.
	Class Class

	// Src1, Src2 are source operands; NoReg if absent.
	Src1, Src2 Reg //rarlint:quiescent fetch-path record: synthesized from the covered stream cursor when fetch resumes

	// Dest is the destination register; it must be set to NoReg
	// explicitly when the instruction produces no register result
	// (stores, branches, NOPs) — the zero value names r0. Generators
	// always initialise all three operand fields.
	Dest Reg

	// Addr is the effective address for loads and stores.
	Addr uint64 //rarlint:quiescent fetch-path record: synthesized from the covered stream cursor when fetch resumes

	// Size is the access size in bytes for loads and stores.
	Size uint8 //rarlint:quiescent fetch-path record: synthesized from the covered stream cursor when fetch resumes

	// Taken is the resolved direction for branches.
	Taken bool //rarlint:quiescent fetch-path record: synthesized from the covered stream cursor when fetch resumes

	// Target is the resolved target for taken branches; for not-taken
	// branches it is the fall-through PC.
	Target uint64 //rarlint:quiescent fetch-path record: synthesized from the covered stream cursor when fetch resumes

	// WrongPath marks instructions injected by the front-end while
	// fetching down a mispredicted path. Wrong-path instructions occupy
	// pipeline resources but are squashed and therefore un-ACE.
	WrongPath bool //rarlint:quiescent fetch-path record: synthesized from the covered stream cursor when fetch resumes
}

// HasDest reports whether the instruction writes a register.
func (in *Inst) HasDest() bool { return in.Dest.Valid() }

// IsLoad reports whether the instruction is a load.
func (in *Inst) IsLoad() bool { return in.Class == Load }

// IsStore reports whether the instruction is a store.
func (in *Inst) IsStore() bool { return in.Class == Store }

// IsBranch reports whether the instruction is a branch.
func (in *Inst) IsBranch() bool { return in.Class == Branch }

// IsMem reports whether the instruction accesses data memory.
func (in *Inst) IsMem() bool { return in.Class.IsMem() }

// IsNop reports whether the instruction is a NOP.
func (in *Inst) IsNop() bool { return in.Class == Nop }

// FallThrough returns the next sequential PC.
func (in *Inst) FallThrough() uint64 { return in.PC + InstBytes }

// NextPC returns the PC control flow continues at after this instruction:
// the branch target for taken branches, the fall-through PC otherwise.
func (in *Inst) NextPC() uint64 {
	if in.IsBranch() && in.Taken {
		return in.Target
	}
	return in.FallThrough()
}

// String renders a compact disassembly-like form, useful in tests and
// debug traces.
func (in *Inst) String() string {
	switch {
	case in.IsLoad():
		return fmt.Sprintf("%#x: load %s <- [%#x]", in.PC, in.Dest, in.Addr)
	case in.IsStore():
		return fmt.Sprintf("%#x: store [%#x] <- %s", in.PC, in.Addr, in.Src1)
	case in.IsBranch():
		dir := "nt"
		if in.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%#x: branch %s -> %#x", in.PC, dir, in.Target)
	default:
		return fmt.Sprintf("%#x: %s %s <- %s,%s", in.PC, in.Class, in.Dest, in.Src1, in.Src2)
	}
}

// InstBytes is the fixed encoded size of one instruction. Synthetic PCs
// advance by this much between sequential instructions.
const InstBytes = 4
