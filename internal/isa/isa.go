// Package isa defines the micro-operation vocabulary of the simulated
// machine: instruction classes, architectural register names, and the
// dynamic-instruction record that flows through the pipeline.
//
// The simulated ISA is a generic RISC-like load/store architecture with 32
// integer and 32 floating-point architectural registers. Workload generators
// (package trace) emit streams of dynamic Inst records; the out-of-order core
// (package core) renames, executes and commits them. The ISA is deliberately
// minimal: it carries exactly the information the microarchitecture — and the
// ACE-bit reliability analysis on top of it — needs, and nothing more.
package isa

import "fmt"

// Class enumerates the instruction classes recognised by the pipeline.
// The classes match the functional-unit mix of the paper's baseline core
// (Table II): integer add/multiply/divide, floating-point add/multiply/
// divide, loads, stores, branches, and NOPs.
type Class uint8

// Instruction classes.
const (
	// Nop performs no work. NOPs are un-ACE by definition (§IV-A).
	Nop Class = iota
	// IntAlu is a single-cycle integer operation (add, sub, logic, shift).
	IntAlu
	// IntMult is a pipelined integer multiply.
	IntMult
	// IntDiv is an unpipelined integer divide.
	IntDiv
	// FpAdd is a pipelined floating-point add/sub/convert.
	FpAdd
	// FpMult is a pipelined floating-point multiply.
	FpMult
	// FpDiv is a floating-point divide.
	FpDiv
	// Load reads memory into a register.
	Load
	// Store writes a register to memory.
	Store
	// Branch is a conditional or unconditional control transfer.
	Branch

	// NumClasses is the number of instruction classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"nop", "ialu", "imul", "idiv", "fadd", "fmul", "fdiv", "load", "store", "branch",
}

// String returns the mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFp reports whether the class executes on the floating-point cluster.
func (c Class) IsFp() bool { return c == FpAdd || c == FpMult || c == FpDiv }

// Reg names an architectural register. Registers 0..31 are the integer
// file, registers 32..63 the floating-point file. NoReg marks an absent
// operand.
type Reg uint8

// Register-space layout.
const (
	// NumIntRegs is the number of integer architectural registers.
	NumIntRegs = 32
	// NumFpRegs is the number of floating-point architectural registers.
	NumFpRegs = 32
	// NumRegs is the total architectural register count.
	NumRegs = NumIntRegs + NumFpRegs
	// FirstFpReg is the lowest floating-point register name.
	FirstFpReg Reg = NumIntRegs
	// NoReg marks an absent source or destination operand.
	NoReg Reg = 255
)

// IsInt reports whether r names an integer architectural register.
func (r Reg) IsInt() bool { return r < FirstFpReg }

// IsFp reports whether r names a floating-point architectural register.
func (r Reg) IsFp() bool { return r >= FirstFpReg && r < NumRegs }

// Valid reports whether r names a register at all.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns "rN" for integer registers and "fN" for FP registers.
func (r Reg) String() string {
	switch {
	case r.IsInt():
		return fmt.Sprintf("r%d", uint8(r))
	case r.IsFp():
		return fmt.Sprintf("f%d", uint8(r-FirstFpReg))
	default:
		return "r?"
	}
}
