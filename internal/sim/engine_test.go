package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

// matrixJSON renders every cell of a result set as canonical JSON, for
// byte-identity comparisons.
func matrixJSON(t *testing.T, rs *ResultSet, cores []config.Core, schemes []config.Scheme, benches []trace.Benchmark) []byte {
	t.Helper()
	var buf []byte
	for _, c := range cores {
		for _, s := range schemes {
			for _, b := range benches {
				data, err := json.Marshal(rs.MustStats(c.Name, s.Name, b.Name))
				if err != nil {
					t.Fatal(err)
				}
				buf = append(buf, data...)
				buf = append(buf, '\n')
			}
		}
	}
	return buf
}

// TestEngineMemoizes runs the same matrix twice through one engine: the
// second pass must be 100% cache hits with zero new simulations, and the
// result sets must be byte-identical.
func TestEngineMemoizes(t *testing.T) {
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO, config.RAR}
	benches := twoBenches(t)
	opt := smallOpt()

	e := NewEngine()
	rs1, err := e.RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	m1 := e.Metrics()
	want := uint64(len(cores) * len(schemes) * len(benches))
	if m1.Simulated != want || m1.Hits != 0 {
		t.Fatalf("first pass: simulated=%d hits=%d, want %d/0", m1.Simulated, m1.Hits, want)
	}

	rs2, err := e.RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	m2 := e.Metrics()
	if m2.Simulated != m1.Simulated {
		t.Errorf("second pass simulated %d new cells, want 0", m2.Simulated-m1.Simulated)
	}
	if m2.Hits != want {
		t.Errorf("second pass hits = %d, want %d", m2.Hits, want)
	}
	if !reflect.DeepEqual(rs1.cells, rs2.cells) {
		t.Error("cached pass differs from simulated pass")
	}
	j1 := matrixJSON(t, rs1, cores, schemes, benches)
	j2 := matrixJSON(t, rs2, cores, schemes, benches)
	if string(j1) != string(j2) {
		t.Error("cached result set is not byte-identical to the simulated one")
	}
}

// TestEngineDeterminism: two independent engines with the same seed must
// produce byte-identical result sets.
func TestEngineDeterminism(t *testing.T) {
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO, config.PRE}
	benches := twoBenches(t)
	opt := smallOpt()

	rs1, err := NewEngine().RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := NewEngine().RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	j1 := matrixJSON(t, rs1, cores, schemes, benches)
	j2 := matrixJSON(t, rs2, cores, schemes, benches)
	if string(j1) != string(j2) {
		t.Error("same seed must yield byte-identical result sets")
	}
}

// TestKeyInvalidation pins what identifies a cell: any change to the
// options, the core config, the scheme flags or the benchmark definition
// must move to a different cache slot; the parallelism knob must not.
func TestKeyInvalidation(t *testing.T) {
	cfg := config.Baseline()
	bench := twoBenches(t)[0]
	opt := smallOpt()
	base := KeyFor(cfg, config.RAR, bench, opt)

	if got := KeyFor(cfg, config.RAR, bench, opt); got != base {
		t.Error("identical inputs must map to the identical key")
	}
	par := opt
	par.Parallelism = 13
	if got := KeyFor(cfg, config.RAR, bench, par); got != base {
		t.Error("parallelism must not affect the key")
	}
	noFF := opt
	noFF.NoFastForward = true
	if got := KeyFor(cfg, config.RAR, bench, noFF); got != base {
		t.Error("the fast-forward toggle must not affect the key (results are identical by contract)")
	}

	mut := []struct {
		name string
		key  CellKey
	}{
		{"instructions", func() CellKey { o := opt; o.Instructions++; return KeyFor(cfg, config.RAR, bench, o) }()},
		{"warmup", func() CellKey { o := opt; o.Warmup++; return KeyFor(cfg, config.RAR, bench, o) }()},
		{"seed", func() CellKey { o := opt; o.Seed++; return KeyFor(cfg, config.RAR, bench, o) }()},
		{"scheme", KeyFor(cfg, config.RARLate, bench, opt)},
		{"core field", func() CellKey { c := cfg; c.ROB++; return KeyFor(c, config.RAR, bench, opt) }()},
		{"mem field", func() CellKey { c := cfg; c.Mem.MSHRs++; return KeyFor(c, config.RAR, bench, opt) }()},
		{"bench kernels", func() CellKey {
			b := bench
			b.Kernels = append([]trace.Kernel{}, b.Kernels...)
			b.Kernels[0].Iterations++
			return KeyFor(cfg, config.RAR, b, opt)
		}()},
	}
	for _, m := range mut {
		if m.key == base {
			t.Errorf("changing %s must change the cell key", m.name)
		}
	}

	// Same name, different content: the hash must still separate them.
	c2 := cfg
	c2.IQ++
	if KeyFor(c2, config.RAR, bench, opt) == base {
		t.Error("configs sharing a name but differing in content must not collide")
	}
}

// TestEngineSingleflight hammers one cell from many goroutines: exactly
// one simulation must run, everyone else waits for it. Run under -race
// this also exercises the engine's locking.
func TestEngineSingleflight(t *testing.T) {
	var sims atomic.Int64
	e := NewEngine()
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		sims.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the in-flight window
		return core.Stats{Cycles: 123, Committed: o.Instructions}, nil
	}
	cfg := config.Baseline()
	bench := twoBenches(t)[0]
	opt := smallOpt()

	const callers = 32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := e.Run(cfg, config.RAR, bench, opt)
			if err != nil || st.Cycles != 123 {
				t.Errorf("run: %v %d", err, st.Cycles)
			}
		}()
	}
	wg.Wait()
	if n := sims.Load(); n != 1 {
		t.Errorf("simulated %d times, want 1", n)
	}
	m := e.Metrics()
	if m.Simulated != 1 || m.Hits != callers-1 {
		t.Errorf("metrics = %+v, want 1 simulated / %d hits", m, callers-1)
	}
}

// TestEngineWaitersOnFailedCellAreNotHits pins the hit-accounting contract
// under concurrent failing cells: a waiter that piles onto an in-flight
// simulation which then FAILS has been served nothing — it must not count
// a cache hit (the engine used to increment Hits before waiting, so every
// waiter on a doomed cell inflated the hit rate), and the failure itself
// is counted exactly once, by the runner.
func TestEngineWaitersOnFailedCellAreNotHits(t *testing.T) {
	var sims atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	e := NewEngine()
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		if sims.Add(1) == 1 {
			close(started)
		}
		<-release
		return core.Stats{}, errors.New("boom")
	}
	cfg := config.Baseline()
	bench := twoBenches(t)[0]
	opt := smallOpt()

	var wg sync.WaitGroup
	var errCount atomic.Int64
	call := func() {
		defer wg.Done()
		if _, err := e.Run(cfg, config.RAR, bench, opt); err != nil {
			errCount.Add(1)
		}
	}
	wg.Add(1)
	go call()
	<-started // the runner is inside the (gated) simulation

	const waiters = 8
	var ready sync.WaitGroup
	ready.Add(waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			ready.Done()
			call()
		}()
	}
	ready.Wait()
	time.Sleep(20 * time.Millisecond) // let the waiters reach the in-flight entry
	close(release)
	wg.Wait()

	if got := errCount.Load(); got != waiters+1 {
		t.Errorf("%d of %d callers saw the error", got, waiters+1)
	}
	m := e.Metrics()
	if m.Hits != 0 {
		t.Errorf("failed cell produced %d cache hits, want 0", m.Hits)
	}
	if m.Simulated != 0 {
		t.Errorf("failed cell counted as %d successful simulations", m.Simulated)
	}
	// Stragglers that missed the in-flight window re-simulate (and re-fail);
	// every actual simulation attempt is an error, counted exactly once.
	if m.Errors != uint64(sims.Load()) {
		t.Errorf("errors=%d, want one per simulation attempt (%d)", m.Errors, sims.Load())
	}
	if m.Errors == 0 {
		t.Error("no error was counted at all")
	}
}

// TestEnginePersistence: a second engine over the same directory must
// warm-start from disk; a config change must miss.
func TestEnginePersistence(t *testing.T) {
	dir := t.TempDir()
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO}
	benches := twoBenches(t)[:1]
	opt := smallOpt()

	e1, err := NewPersistentEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e1.CacheDir(), "v-"+SchemaHash()) {
		t.Errorf("cache dir %q not schema-versioned", e1.CacheDir())
	}
	rs1, err := e1.RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(e1.CacheDir())
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %d (%v), want 1", len(files), err)
	}

	e2, err := NewPersistentEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := e2.RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := e2.Metrics()
	if m.Simulated != 0 || m.DiskHits != 1 {
		t.Errorf("warm start: simulated=%d diskHits=%d, want 0/1", m.Simulated, m.DiskHits)
	}
	if !reflect.DeepEqual(rs1.cells, rs2.cells) {
		t.Error("disk-loaded cells differ from simulated ones")
	}

	// A different seed must not be served by the persisted cell.
	opt2 := opt
	opt2.Seed++
	if _, err := e2.RunMatrix(cores, schemes, benches, opt2); err != nil {
		t.Fatal(err)
	}
	if m := e2.Metrics(); m.Simulated != 1 {
		t.Errorf("changed seed: simulated=%d, want 1", m.Simulated)
	}

	// A corrupt cache file is a plain miss, never an error.
	e3, err := NewPersistentEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(e3.cellPath(KeyFor(cores[0], schemes[0], benches[0], opt)), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e3.RunMatrix(cores, schemes, benches, opt); err != nil {
		t.Fatal(err)
	}
	if m := e3.Metrics(); m.Simulated != 1 || m.DiskHits != 0 {
		t.Errorf("corrupt entry: simulated=%d diskHits=%d, want 1/0", m.Simulated, m.DiskHits)
	}
}

// TestRunMatrixFailuresAreNotStored: a failed cell must neither appear
// in any result set nor poison the memo cache — a retry simulates it
// again.
func TestRunMatrixFailuresAreNotStored(t *testing.T) {
	fail := atomic.Bool{}
	fail.Store(true)
	e := NewEngine()
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		if s.Name == "RAR" && fail.Load() {
			return core.Stats{}, errors.New("boom")
		}
		return core.Stats{Cycles: 7, Committed: o.Instructions}, nil
	}
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO, config.RAR}
	benches := twoBenches(t)[:1]
	opt := smallOpt()
	opt.Parallelism = 1 // deterministic scheduling: OoO first, then RAR

	rs, err := e.RunMatrix(cores, schemes, benches, opt)
	if rs != nil || err == nil {
		t.Fatalf("rs=%v err=%v, want nil set and an error", rs, err)
	}
	if !strings.Contains(err.Error(), "baseline/RAR/"+benches[0].Name) {
		t.Errorf("error %q does not name the failed cell", err)
	}
	if m := e.Metrics(); m.Errors != 1 || m.Unique != 1 {
		t.Errorf("metrics after failure = %+v, want 1 error and only the OoO cell cached", m)
	}

	// The failure is not memoized: clearing the fault and retrying works,
	// reusing the successful cell and re-simulating the failed one.
	fail.Store(false)
	rs, err = e.RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Stats("baseline", "RAR", benches[0].Name); !ok {
		t.Error("retried cell missing from the result set")
	}
	if m := e.Metrics(); m.Simulated != 2 {
		t.Errorf("simulated=%d after retry, want 2", m.Simulated)
	}
}

// TestRunMatrixNamesEveryFailedCell: when several in-flight cells fail,
// the wrapped error must name each of them, not just the first.
func TestRunMatrixNamesEveryFailedCell(t *testing.T) {
	benches := twoBenches(t)
	// Both cells start before either finishes, so both failures are
	// in-flight when the first error lands.
	var barrier sync.WaitGroup
	barrier.Add(len(benches))
	e := NewEngine()
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		barrier.Done()
		barrier.Wait()
		return core.Stats{}, fmt.Errorf("fault in %s", b.Name)
	}
	opt := smallOpt()
	opt.Parallelism = len(benches)
	_, err := e.RunMatrix([]config.Core{config.Baseline()}, []config.Scheme{config.OoO}, benches, opt)
	if err == nil {
		t.Fatal("matrix with failing cells must error")
	}
	for _, b := range benches {
		if !strings.Contains(err.Error(), "baseline/OoO/"+b.Name) {
			t.Errorf("error %q does not name failed cell %s", err, b.Name)
		}
	}
	if !strings.Contains(err.Error(), "2 cell(s) failed") {
		t.Errorf("error %q does not count the failures", err)
	}
}

// TestRunMatrixFailureOrderDeterministic: workers append failures in
// completion order, which varies run to run; the reported error must
// list the failed cells in sorted order, byte-identical across runs.
func TestRunMatrixFailureOrderDeterministic(t *testing.T) {
	benches := twoBenches(t)
	schemes := []config.Scheme{config.OoO, config.PRE, config.RAR}
	cells := len(schemes) * len(benches)
	opt := smallOpt()
	opt.Parallelism = cells

	var first string
	for round := 0; round < 4; round++ {
		// Every cell is in flight before any failure lands, so all of
		// them fail and completion order is genuinely scrambled.
		var barrier sync.WaitGroup
		barrier.Add(cells)
		e := NewEngine()
		e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
			barrier.Done()
			barrier.Wait()
			return core.Stats{}, fmt.Errorf("fault in %s/%s", s.Name, b.Name)
		}
		_, err := e.RunMatrix([]config.Core{config.Baseline()}, schemes, benches, opt)
		if err == nil {
			t.Fatal("matrix with failing cells must error")
		}
		msg := err.Error()
		lines := strings.Split(msg, "\n")
		if len(lines) != cells {
			t.Fatalf("error names %d cells, want %d:\n%s", len(lines), cells, msg)
		}
		lines[0] = strings.TrimPrefix(lines[0], fmt.Sprintf("sim: %d cell(s) failed: ", cells))
		if !sort.StringsAreSorted(lines) {
			t.Errorf("failed cells not listed in sorted order:\n%s", msg)
		}
		if round == 0 {
			first = msg
		} else if msg != first {
			t.Errorf("round %d error differs from round 0:\n%s\nvs\n%s", round, msg, first)
		}
	}
}

// TestSchemaHashStable: the schema hash is deterministic within a build.
func TestSchemaHashStable(t *testing.T) {
	if SchemaHash() != SchemaHash() {
		t.Error("schema hash must be deterministic")
	}
	if len(SchemaHash()) != 16 {
		t.Errorf("schema hash %q not 16 hex chars", SchemaHash())
	}
}
