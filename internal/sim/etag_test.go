package sim

import (
	"strings"
	"testing"

	"rarsim/internal/config"
)

// TestETags pins the entity-tag contract: strong (quoted), stable for
// equal keys, different for any key difference, and sensitive to matrix
// composition and order.
func TestETags(t *testing.T) {
	cfg := config.Baseline()
	benches := twoBenches(t)
	opt := smallOpt()
	k1 := KeyFor(cfg, config.OoO, benches[0], opt)
	k2 := KeyFor(cfg, config.RAR, benches[0], opt)

	tag := k1.ETag()
	if !strings.HasPrefix(tag, `"`) || !strings.HasSuffix(tag, `"`) || len(tag) != 18 {
		t.Errorf("ETag %q not a quoted 16-hex strong tag", tag)
	}
	if k1.ETag() != tag {
		t.Error("ETag must be deterministic")
	}
	if k2.ETag() == tag {
		t.Error("different cells must carry different tags")
	}
	o2 := opt
	o2.Seed++
	if KeyFor(cfg, config.OoO, benches[0], o2).ETag() == tag {
		t.Error("a seed change must change the tag")
	}

	m1 := MatrixETag([]CellKey{k1, k2})
	if m1 != MatrixETag([]CellKey{k1, k2}) {
		t.Error("MatrixETag must be deterministic")
	}
	if m1 == MatrixETag([]CellKey{k2, k1}) {
		t.Error("cell order is part of the response body, so it must be part of the tag")
	}
	if m1 == MatrixETag([]CellKey{k1}) {
		t.Error("matrix composition must change the tag")
	}
}
