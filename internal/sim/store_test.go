package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

// stubEngine returns a persistent engine whose simulations are instant
// stubs producing per-benchmark-distinct statistics.
func stubEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := NewPersistentEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		return core.Stats{Cycles: uint64(100 + len(b.Name)), Committed: o.Instructions}, nil
	}
	return e
}

func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	list, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range list {
		names = append(names, de.Name())
	}
	return names
}

// TestTempFileSweep plants abandoned ".cell-*" temp files — the litter a
// process killed between CreateTemp and Rename leaves behind — and
// asserts that the next NewPersistentEngine removes them without
// touching valid cells.
func TestTempFileSweep(t *testing.T) {
	dir := t.TempDir()
	e1 := stubEngine(t, dir)
	bench := twoBenches(t)[0]
	opt := smallOpt()
	if _, err := e1.Run(config.Baseline(), config.OoO, bench, opt); err != nil {
		t.Fatal(err)
	}

	// Orphans from hypothetical killed writers, plus a decoy that merely
	// resembles one (no ".cell-" prefix) and must survive untouched.
	for _, name := range []string{".cell-123456", ".cell-999999"} {
		if err := os.WriteFile(filepath.Join(e1.CacheDir(), name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	e2 := stubEngine(t, dir)
	var cells int
	for _, name := range cacheFiles(t, e2.CacheDir()) {
		if strings.HasPrefix(name, ".cell-") {
			t.Errorf("orphan temp file %q survived the sweep", name)
		}
		if strings.HasSuffix(name, ".json") {
			cells++
		}
	}
	if cells != 1 {
		t.Errorf("%d cell files after sweep, want 1", cells)
	}
	// The surviving cell still serves warm starts.
	if _, err := e2.Run(config.Baseline(), config.OoO, bench, opt); err != nil {
		t.Fatal(err)
	}
	if m := e2.Metrics(); m.DiskHits != 1 || m.Simulated != 0 {
		t.Errorf("after sweep: diskHits=%d simulated=%d, want 1/0", m.DiskHits, m.Simulated)
	}
}

// TestDiskEviction pins the LRU contract: an entry-count budget evicts
// the least recently *used* cell (a disk hit refreshes recency, so the
// oldest-written-but-recently-read cell survives), eviction only forgets
// warm-start state, and the engine gauges report it.
func TestDiskEviction(t *testing.T) {
	dir := t.TempDir()
	e1 := stubEngine(t, dir)
	cfg := config.Baseline()
	benches := twoBenches(t)
	opt := smallOpt()

	// Three cells: (OoO, PRE, RAR) on one bench, written in that order.
	schemes := []config.Scheme{config.OoO, config.PRE, config.RAR}
	for _, s := range schemes {
		if _, err := e1.Run(cfg, s, benches[0], opt); err != nil {
			t.Fatal(err)
		}
	}
	// Force distinct, ordered mtimes so the next engine's LRU scan sees
	// the write order regardless of filesystem timestamp granularity.
	base := time.Unix(1_700_000_000, 0)
	for i, s := range schemes {
		path := e1.cellPath(KeyFor(cfg, s, benches[0], opt))
		if err := os.Chtimes(path, base.Add(time.Duration(i)*time.Second), base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	e2 := stubEngine(t, dir)
	e2.SetDiskBudget(0, 3)
	// A disk hit on the oldest cell (OoO) refreshes its LRU position...
	if _, err := e2.Run(cfg, config.OoO, benches[0], opt); err != nil {
		t.Fatal(err)
	}
	// ...so admitting a fourth cell must evict PRE, now least recent.
	if _, err := e2.Run(cfg, config.OoO, benches[1], opt); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(e2.cellPath(KeyFor(cfg, config.PRE, benches[0], opt))); !os.IsNotExist(err) {
		t.Errorf("LRU cell (PRE) not evicted: stat err = %v", err)
	}
	for _, want := range []CellKey{
		KeyFor(cfg, config.OoO, benches[0], opt),
		KeyFor(cfg, config.RAR, benches[0], opt),
		KeyFor(cfg, config.OoO, benches[1], opt),
	} {
		if _, err := os.Stat(e2.cellPath(want)); err != nil {
			t.Errorf("cell %s wrongly evicted: %v", want, err)
		}
	}
	m := e2.Metrics()
	if m.Evicted != 1 || m.DiskEntries != 3 || m.DiskBytes <= 0 {
		t.Errorf("gauges = evicted %d, entries %d, bytes %d; want 1/3/>0", m.Evicted, m.DiskEntries, m.DiskBytes)
	}

	// An evicted cell is not an error — it simply re-simulates.
	e3 := stubEngine(t, dir)
	if _, err := e3.Run(cfg, config.PRE, benches[0], opt); err != nil {
		t.Fatal(err)
	}
	if m := e3.Metrics(); m.Simulated != 1 {
		t.Errorf("evicted cell: simulated=%d, want 1 (re-simulated)", m.Simulated)
	}
}

// TestDiskByteBudget: a byte budget trims immediately on SetDiskBudget
// and holds on later writes.
func TestDiskByteBudget(t *testing.T) {
	dir := t.TempDir()
	e := stubEngine(t, dir)
	cfg := config.Baseline()
	benches := twoBenches(t)
	opt := smallOpt()
	for _, b := range benches {
		if _, err := e.Run(cfg, config.OoO, b, opt); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.DiskEntries != 2 || m.DiskBytes <= 0 {
		t.Fatalf("gauges before trim: %d entries, %d bytes", m.DiskEntries, m.DiskBytes)
	}
	// Budget below the total but above a single cell: exactly one must go.
	e.SetDiskBudget(m.DiskBytes-1, 0)
	m = e.Metrics()
	if m.DiskEntries != 1 || m.Evicted != 1 {
		t.Errorf("after trim: entries=%d evicted=%d, want 1/1", m.DiskEntries, m.Evicted)
	}
}
