package sim

// Pool is the bounded worker pool that caps how many simulations run at
// once *process-wide*. RunMatrix always bounded its own cells, but every
// matrix brought its own budget: two concurrent matrices (or, in the
// matrix server, two concurrent requests) would happily oversubscribe the
// machine 2x. A Pool is the extracted, shareable version of that budget:
// every simulation occupies one slot no matter which matrix or request
// asked for it, and the slot count — not the request count — decides how
// hard the host works. Combined with the Engine's cross-call singleflight
// this is what makes the server's concurrency story composable: requests
// fan out freely, dedup collapses identical cells, and the pool meters
// whatever survives onto the CPUs.
//
// Queued and Active are exposed as gauges so a server can report queueing
// pressure separately from simulation work (the "p99 dominated by
// simulation, not queueing" target needs both numbers).

import (
	"runtime"
	"sync/atomic"
)

// Pool bounds concurrent simulation work. The zero value is not usable;
// construct with NewPool. A nil *Pool is accepted by the methods below
// and means "no shared bound" (each matrix bounds only itself).
type Pool struct {
	sem    chan struct{} //rarlint:guardedby init
	queued atomic.Int64  //rarlint:guardedby atomic
	active atomic.Int64  //rarlint:guardedby atomic
}

// NewPool returns a pool with the given number of worker slots; size <= 0
// uses GOMAXPROCS.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, size)}
}

// Size returns the number of worker slots.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

// Do runs f from the calling goroutine once a worker slot is free,
// blocking while the pool is saturated. A nil pool runs f immediately.
func (p *Pool) Do(f func()) {
	if p == nil {
		f()
		return
	}
	p.queued.Add(1)
	p.sem <- struct{}{}
	p.queued.Add(-1)
	p.active.Add(1)
	defer func() {
		p.active.Add(-1)
		<-p.sem
	}()
	f()
}

// Queued reports how many callers are blocked waiting for a slot — the
// server's queue depth.
func (p *Pool) Queued() int {
	if p == nil {
		return 0
	}
	return int(p.queued.Load())
}

// Active reports how many slots are currently executing work.
func (p *Pool) Active() int {
	if p == nil {
		return 0
	}
	return int(p.active.Load())
}
