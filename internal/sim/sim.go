// Package sim drives experiment matrices: it runs (core config × scheme ×
// benchmark) cells in parallel, collects the per-run statistics, and
// derives the paper's normalised metrics (MTTF, ABC and IPC relative to
// the baseline OoO core on the same benchmark and configuration).
package sim

import (
	"fmt"

	"rarsim/internal/ace"
	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/metrics"
	"rarsim/internal/trace"
)

// Options controls a matrix run.
type Options struct {
	// Instructions is the number of committed instructions measured per
	// cell, after Warmup.
	Instructions uint64
	// Warmup is the number of committed instructions run before
	// measurement starts (caches and predictors stay trained; counters
	// reset) — the moral equivalent of the paper's SimPoint warmup.
	Warmup uint64
	// Seed drives workload generation; the same seed reproduces the run.
	Seed uint64
	// Parallelism caps concurrent simulations; <=0 uses GOMAXPROCS.
	Parallelism int
	// NoFastForward disables the core's stall fast-forward, forcing the
	// classic cycle-by-cycle loop. By the equivalence contract (ff.go,
	// DESIGN.md) it changes wall-clock time only, never results — which is
	// why, like Parallelism, it is excluded from the memo cache key.
	NoFastForward bool
}

// DefaultOptions returns a 1M-instruction measurement after a 200k
// warmup — small enough for interactive runs, long enough for steady
// state.
func DefaultOptions() Options {
	return Options{Instructions: 1_000_000, Warmup: 200_000, Seed: 42}
}

// Key identifies one cell of a result set.
type Key struct {
	Core   string
	Scheme string
	Bench  string
}

// ResultSet holds the statistics of a completed matrix.
type ResultSet struct {
	cells map[Key]core.Stats
}

// Run simulates one cell and returns its statistics.
func Run(cfg config.Core, scheme config.Scheme, bench trace.Benchmark, opt Options) (core.Stats, error) {
	c := core.New(cfg, scheme, bench, opt.Seed)
	if opt.NoFastForward {
		c.SetStallFastForward(false)
	}
	return c.RunWarm(opt.Warmup, opt.Instructions)
}

// RunMatrix simulates every (core, scheme, benchmark) combination in
// parallel and returns the result set. Identical cells within the matrix
// are simulated once. Cells are only stored on success; an error aborts
// the matrix and the returned error names every cell that failed. To
// memoize cells *across* matrices, share one Engine and call its
// RunMatrix method instead.
func RunMatrix(cores []config.Core, schemes []config.Scheme, benches []trace.Benchmark, opt Options) (*ResultSet, error) {
	return NewEngine().RunMatrix(cores, schemes, benches, opt)
}

// Stats returns the raw statistics of one cell.
func (rs *ResultSet) Stats(coreName, scheme, bench string) (core.Stats, bool) {
	st, ok := rs.cells[Key{coreName, scheme, bench}]
	return st, ok
}

// MustStats is Stats for cells known to exist; it panics otherwise (an
// experiment-definition bug).
func (rs *ResultSet) MustStats(coreName, scheme, bench string) core.Stats {
	st, ok := rs.Stats(coreName, scheme, bench)
	if !ok {
		panic(fmt.Sprintf("sim: missing cell %s/%s/%s", coreName, scheme, bench))
	}
	return st
}

// baseline returns the OoO cell for the benchmark on the same core.
func (rs *ResultSet) baseline(coreName, bench string) core.Stats {
	return rs.MustStats(coreName, config.OoO.Name, bench)
}

// MTTF returns the scheme's mean-time-to-failure normalised to the OoO
// baseline on the same core and benchmark (higher is better).
func (rs *ResultSet) MTTF(coreName, scheme, bench string) float64 {
	b := rs.baseline(coreName, bench)
	s := rs.MustStats(coreName, scheme, bench)
	return ace.MTTFRel(b.TotalABC, b.Cycles, s.TotalABC, s.Cycles)
}

// ABCNorm returns the scheme's ACE bit count as a fraction of the OoO
// baseline's for the same fixed unit of work (lower is better).
func (rs *ResultSet) ABCNorm(coreName, scheme, bench string) float64 {
	b := rs.baseline(coreName, bench)
	s := rs.MustStats(coreName, scheme, bench)
	return metrics.Ratio(float64(s.TotalABC), float64(b.TotalABC))
}

// IPCNorm returns the scheme's IPC relative to the OoO baseline
// (higher is better).
func (rs *ResultSet) IPCNorm(coreName, scheme, bench string) float64 {
	b := rs.baseline(coreName, bench)
	s := rs.MustStats(coreName, scheme, bench)
	return metrics.Ratio(s.IPC(), b.IPC())
}

// MLP returns the cell's memory-level parallelism.
func (rs *ResultSet) MLP(coreName, scheme, bench string) float64 {
	return rs.MustStats(coreName, scheme, bench).Mem.MLP()
}

// Aggregates over a benchmark list, following the paper's methodology:
// geomean for MTTF, arithmetic mean for ABC and MLP, harmonic mean for
// normalised IPC.

// MeanMTTF returns the geometric-mean normalised MTTF over benches.
func (rs *ResultSet) MeanMTTF(coreName, scheme string, benches []string) float64 {
	return metrics.GeoMean(rs.collect(rs.MTTF, coreName, scheme, benches))
}

// MeanABCNorm returns the arithmetic-mean normalised ABC over benches.
func (rs *ResultSet) MeanABCNorm(coreName, scheme string, benches []string) float64 {
	return metrics.ArithMean(rs.collect(rs.ABCNorm, coreName, scheme, benches))
}

// MeanIPCNorm returns the harmonic-mean normalised IPC over benches.
func (rs *ResultSet) MeanIPCNorm(coreName, scheme string, benches []string) float64 {
	return metrics.HarmMean(rs.collect(rs.IPCNorm, coreName, scheme, benches))
}

// MeanMLP returns the arithmetic-mean MLP over benches.
func (rs *ResultSet) MeanMLP(coreName, scheme string, benches []string) float64 {
	return metrics.ArithMean(rs.collect(rs.MLP, coreName, scheme, benches))
}

func (rs *ResultSet) collect(f func(string, string, string) float64, coreName, scheme string, benches []string) []float64 {
	out := make([]float64, 0, len(benches))
	for _, b := range benches {
		out = append(out, f(coreName, scheme, b))
	}
	return out
}

// BenchNames extracts the names of a benchmark slice.
func BenchNames(bs []trace.Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}
