package sim

// This file implements the memoizing simulation engine: every (core
// config, scheme, benchmark, options) cell is simulated at most once per
// Engine, no matter how many experiment matrices request it. Identity is
// the *full* cell configuration — a content hash over the core and scheme
// structs and the benchmark's kernels, not just their names — so two
// configs that share a name but differ in any field occupy different
// cache slots, and any config change invalidates naturally. An Engine can
// optionally persist cells to disk (JSON, one file per cell) under a
// directory versioned by a schema hash of the involved struct types, so
// cache entries from an older build self-invalidate instead of serving
// stale or misshapen statistics.

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

// CellKey is the full identity of one simulation cell. Two cells with
// equal keys are guaranteed to produce identical statistics (simulations
// are deterministic in the seed), which is what makes memoization sound.
type CellKey struct {
	// Core, Scheme and Bench are the display names, kept for human
	// consumption (log lines, cache filenames, error messages).
	Core   string
	Scheme string
	Bench  string
	// Instructions, Warmup and Seed are the Options fields that affect
	// the simulation outcome. Parallelism is deliberately excluded: it
	// only schedules work, it never changes a cell's result. So is
	// NoFastForward: the stall fast-forward's equivalence contract
	// guarantees identical statistics either way, so both variants of a
	// cell rightly share one cache slot.
	Instructions uint64
	Warmup       uint64
	Seed         uint64
	// ConfigHash fingerprints the complete core configuration, scheme
	// descriptor and benchmark definition, so cells are distinguished by
	// content even when names collide.
	ConfigHash uint64
}

// String renders the key as core/scheme/bench for log lines.
func (k CellKey) String() string {
	return fmt.Sprintf("%s/%s/%s", k.Core, k.Scheme, k.Bench)
}

// KeyFor computes the cache key of one cell. The hash covers every field
// of the core config (including the memory hierarchy and DRAM timing),
// the scheme feature flags, and the benchmark's kernel definitions, via
// their canonical Go-syntax representations — all three are plain value
// structs, so the representation is deterministic.
func KeyFor(cfg config.Core, scheme config.Scheme, bench trace.Benchmark, opt Options) CellKey {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v\x00%#v\x00%#v", cfg, scheme, bench)
	return CellKey{
		Core:         cfg.Name,
		Scheme:       scheme.Name,
		Bench:        bench.Name,
		Instructions: opt.Instructions,
		Warmup:       opt.Warmup,
		Seed:         opt.Seed,
		ConfigHash:   h.Sum64(),
	}
}

// SchemaHash fingerprints the shape (field names and types, recursively)
// of every struct that participates in a persisted cache entry. It
// changes whenever config.Core, config.Scheme, trace.Benchmark, Options
// or core.Stats gain, lose or retype a field, which silently retires any
// on-disk cache written by a previous build. The reflection walk is
// constant within a build, so the result is computed once (it sits on
// the server's per-request ETag path).
func SchemaHash() string {
	schemaHashOnce.Do(func() { schemaHash = computeSchemaHash() })
	return schemaHash
}

var (
	schemaHashOnce sync.Once
	schemaHash     string
)

func computeSchemaHash() string {
	h := fnv.New64a()
	seen := map[reflect.Type]bool{}
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		switch t.Kind() {
		case reflect.Struct:
			if seen[t] {
				fmt.Fprintf(h, "<%s>", t.String())
				return
			}
			seen[t] = true
			fmt.Fprintf(h, "%s{", t.String())
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				fmt.Fprintf(h, "%s:", f.Name)
				walk(f.Type)
				h.Write([]byte(";"))
			}
			h.Write([]byte("}"))
		case reflect.Slice, reflect.Array, reflect.Pointer:
			fmt.Fprintf(h, "%s[", t.String())
			walk(t.Elem())
			h.Write([]byte("]"))
		default:
			h.Write([]byte(t.String()))
		}
	}
	for _, t := range []reflect.Type{
		reflect.TypeOf(config.Core{}),
		reflect.TypeOf(config.Scheme{}),
		reflect.TypeOf(trace.Benchmark{}),
		reflect.TypeOf(Options{}),
		reflect.TypeOf(core.Stats{}),
	} {
		walk(t)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Metrics is a snapshot of an Engine's counters.
type Metrics struct {
	// Simulated counts cells that ran the cycle-level simulator.
	Simulated uint64
	// Hits counts requests *served* without simulating: from memory, from
	// disk, or by waiting on an identical in-flight simulation. Only
	// successful resolutions count — a waiter on a cell whose shared
	// simulation fails records neither a hit (it served nothing) nor an
	// error (the runner counts each failure exactly once).
	Hits uint64
	// DiskHits counts the subset of Hits loaded from the on-disk cache.
	DiskHits uint64
	// Errors counts failed simulations (never cached as results). Failures
	// already surface to callers through Run's error return; this counter
	// exists for engine observability and is consumed by engine clients.
	Errors uint64
	// ErrHits counts requests answered from the negative cache: the cell
	// failed recently and SetFailureTTL told the engine to remember that
	// instead of re-simulating (the server turns these into 503s).
	ErrHits uint64
	// Unique is the number of distinct cells currently held in memory
	// (including, under a failure TTL, cached failures).
	Unique int
	// SimTime is the cumulative wall-clock time spent inside the
	// simulator (summed across parallel workers).
	SimTime time.Duration
	// DiskEntries, DiskBytes and Evicted describe the persistent store:
	// current occupancy and how many cell files LRU eviction has removed.
	// All zero on a memory-only engine.
	DiskEntries int
	DiskBytes   int64
	Evicted     uint64
}

// CellProgress describes one completed cell lookup, for progress
// reporting.
type CellProgress struct {
	// Key identifies the cell.
	Key CellKey
	// Source is "sim" (freshly simulated), "mem" (memory or in-flight
	// hit) or "disk" (loaded from the persistent cache).
	Source string
	// Dur is the simulation wall-clock time; zero for cache hits.
	Dur time.Duration
	// IPC and MLP summarise the cell's result.
	IPC, MLP float64
	// Metrics is the engine counter snapshot after this cell.
	Metrics Metrics
}

// cellEntry is one memoized (or in-flight) cell. done is closed when
// stats/err are final; waiters block on it without holding the engine
// lock, so distinct cells simulate concurrently. stats and err are
// published under the engine lock before done is closed, so both the
// post-done read (ordered by the close) and the locked fast-path read in
// Run are race-free.
type cellEntry struct {
	done  chan struct{}
	stats core.Stats
	err   error
	// expires is the negative-cache deadline of a failed cell; zero for
	// successes and for failures recorded without a failure TTL.
	expires time.Time
}

// FailedCellError is the error returned for a cell under a failure TTL
// (SetFailureTTL): the simulation failed — just now, or recently enough
// that the negative cache is still holding the result — and the cell
// will not be retried until RetryAfter elapses. Servers map this onto
// HTTP 503 + Retry-After.
type FailedCellError struct {
	Key        CellKey
	Err        error
	RetryAfter time.Duration
}

func (e *FailedCellError) Error() string {
	return fmt.Sprintf("%s failed (retry after %s): %v", e.Key, e.RetryAfter.Round(time.Millisecond), e.Err)
}

func (e *FailedCellError) Unwrap() error { return e.Err }

// Engine memoizes simulation cells. It is safe for concurrent use; an
// engine shared across experiment matrices simulates each unique cell
// exactly once. The zero value is not usable — construct with NewEngine
// or NewPersistentEngine.
type Engine struct {
	// OnCell, when non-nil, is invoked (unlocked, from the requesting
	// goroutine) after every completed cell lookup. Set it before the
	// engine is first used.
	OnCell func(CellProgress) //rarlint:guardedby init

	mu    sync.Mutex
	cells map[CellKey]*cellEntry //rarlint:guardedby mu
	m     Metrics                //rarlint:guardedby mu
	dir   string                 //rarlint:guardedby init  versioned persistence directory; "" = memory only
	store *diskStore             //rarlint:guardedby init  LRU index over dir; nil = memory only (internally locked)

	// failTTL > 0 keeps failed cells in a negative cache for that long
	// (see SetFailureTTL); 0 restores the historical delete-and-retry.
	failTTL time.Duration //rarlint:guardedby init

	// now is the wall clock used for negative-cache expiry; replaced in
	// tests. It is host-side timing only: expiry never enters simulated
	// state or the cache key.
	now func() time.Time //rarlint:guardedby init

	// runCell performs one simulation; replaced in tests.
	runCell func(config.Core, config.Scheme, trace.Benchmark, Options) (core.Stats, error) //rarlint:guardedby init
}

// NewEngine returns a memory-only memoizing engine.
func NewEngine() *Engine {
	return &Engine{
		cells:   make(map[CellKey]*cellEntry),
		runCell: Run,
		now:     time.Now,
	}
}

// SetFailureTTL enables negative-result caching: a failed cell's error is
// remembered for d, and every request inside that window is answered
// with a FailedCellError immediately instead of re-running a simulation
// that just demonstrably failed. Without it, N queued requests for a
// failing cell retry the full simulation back-to-back — a thundering
// herd a long-running server cannot afford. d <= 0 restores the
// historical behaviour (failures forgotten immediately, every request
// retries). Set before the engine is shared across goroutines.
func (e *Engine) SetFailureTTL(d time.Duration) { e.failTTL = d }

// NewPersistentEngine returns an engine that additionally persists every
// simulated cell as JSON under dir/v-<schema hash>/, and warm-starts
// from entries found there. Entries written by a build with different
// struct shapes live under a different schema directory and are never
// read. Startup sweeps ".cell-*" temp files abandoned by a process
// killed mid-write and indexes the surviving cells for LRU eviction
// (budgets default to unbounded; see SetDiskBudget).
func NewPersistentEngine(dir string) (*Engine, error) {
	sub := filepath.Join(dir, "v-"+SchemaHash())
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return nil, fmt.Errorf("sim: cache dir: %w", err)
	}
	store, err := newDiskStore(sub)
	if err != nil {
		return nil, fmt.Errorf("sim: cache scan: %w", err)
	}
	e := NewEngine()
	e.dir = sub
	e.store = store
	return e, nil
}

// SetDiskBudget bounds the persistent store: at most maxEntries cell
// files totalling at most maxBytes (0 = unbounded for either). Once a
// write pushes the store over budget, least-recently-used cells are
// evicted; an evicted cell simply re-simulates on next request, so the
// budget bounds disk, never correctness. No-op on a memory-only engine.
func (e *Engine) SetDiskBudget(maxBytes int64, maxEntries int) {
	if e.store != nil {
		e.store.setBudget(maxBytes, maxEntries)
	}
}

// CacheDir returns the engine's versioned persistence directory, or ""
// for a memory-only engine.
func (e *Engine) CacheDir() string { return e.dir }

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.m
	m.Unique = len(e.cells)
	if e.store != nil {
		m.DiskEntries, m.DiskBytes, m.Evicted = e.store.gauges()
	}
	return m
}

// Run returns the statistics of one cell, simulating it only if no
// earlier call (or persisted entry) already did. Concurrent calls with
// the same key share a single simulation. Errors are returned to every
// waiter; under a failure TTL (SetFailureTTL) they are additionally held
// in a negative cache for the TTL and surfaced as *FailedCellError, so
// at most one simulation of a failing cell runs per retry window.
// Without a TTL a failure is forgotten immediately and a later call
// retries.
func (e *Engine) Run(cfg config.Core, scheme config.Scheme, bench trace.Benchmark, opt Options) (core.Stats, error) {
	key := KeyFor(cfg, scheme, bench, opt)

	e.mu.Lock()
	ent, ok := e.cells[key]
	if ok && ent.err != nil {
		// A resolved failure sits in the negative cache (only failure
		// entries outlive their runner with err set; in-flight entries
		// publish err strictly under this lock, before closing done).
		if rem := ent.expires.Sub(e.now()); rem > 0 {
			e.m.ErrHits++
			e.mu.Unlock()
			return core.Stats{}, &FailedCellError{Key: key, Err: ent.err, RetryAfter: rem}
		}
		ok = false // retry window over: fall through and re-simulate
	}
	if ok {
		e.mu.Unlock()
		<-ent.done
		if ent.err != nil {
			// The shared simulation failed. The runner counted the error;
			// this waiter served nothing, so it must not count a hit.
			if e.failTTL > 0 {
				return core.Stats{}, &FailedCellError{Key: key, Err: ent.err, RetryAfter: e.failTTL}
			}
			return core.Stats{}, ent.err
		}
		e.mu.Lock()
		e.m.Hits++
		e.mu.Unlock()
		e.progress(key, "mem", 0, ent.stats)
		return ent.stats, nil
	}
	ent = &cellEntry{done: make(chan struct{})}
	e.cells[key] = ent
	e.mu.Unlock()

	// Miss: try the persistent cache, then simulate.
	if st, ok := e.loadDisk(key); ok {
		e.mu.Lock()
		ent.stats = st
		e.m.Hits++
		e.m.DiskHits++
		e.mu.Unlock()
		close(ent.done)
		e.progress(key, "disk", 0, st)
		return st, nil
	}
	// Host-side wall-clock timing of the simulation, for the SimTime
	// metric and progress lines only. It never feeds a cell's Stats or
	// the cache key, so it is outside the simulated-state determinism
	// boundary.
	start := time.Now() //rarlint:allow determinism host-side timing; never enters simulated state or the cache
	st, err := e.runCell(cfg, scheme, bench, opt)
	dur := time.Since(start) //rarlint:allow determinism host-side timing; never enters simulated state or the cache

	e.mu.Lock()
	ent.stats, ent.err = st, err
	if err != nil {
		e.m.Errors++
		if e.failTTL > 0 {
			// Hold the failure: requests inside the window are answered
			// from the negative cache instead of re-simulating.
			ent.expires = e.now().Add(e.failTTL)
		} else {
			// A failed cell must never serve its zero-value stats: drop
			// the entry entirely so later requests retry rather than
			// reading garbage.
			delete(e.cells, key)
		}
	} else {
		e.m.Simulated++
		e.m.SimTime += dur
	}
	e.mu.Unlock()
	close(ent.done)
	if err != nil {
		if e.failTTL > 0 {
			return core.Stats{}, &FailedCellError{Key: key, Err: err, RetryAfter: e.failTTL}
		}
		return core.Stats{}, err
	}
	e.storeDisk(key, st, dur)
	e.progress(key, "sim", dur, st)
	return st, nil
}

func (e *Engine) progress(key CellKey, source string, dur time.Duration, st core.Stats) {
	if e.OnCell == nil {
		return
	}
	e.OnCell(CellProgress{
		Key:     key,
		Source:  source,
		Dur:     dur,
		IPC:     st.IPC(),
		MLP:     st.Mem.MLP(),
		Metrics: e.Metrics(),
	})
}

// diskCell is the persisted form of one cell.
type diskCell struct {
	Key        CellKey    `json:"key"`
	Stats      core.Stats `json:"stats"`
	SimSeconds float64    `json:"simSeconds"`
}

// cellPath maps a key to its cache file. The name hashes every key field
// (the human-readable names are prefixed for browsability).
func (e *Engine) cellPath(key CellKey) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", key)
	return filepath.Join(e.dir, fmt.Sprintf("%s_%s_%s_%016x.json",
		sanitize(key.Core), sanitize(key.Scheme), sanitize(key.Bench), h.Sum64()))
}

// sanitize keeps cache filenames portable.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// loadDisk reads a persisted cell, validating that the stored key is
// exactly the requested one (guarding against filename collisions and
// hand-edited files). Any failure is a plain miss. A hit refreshes the
// cell's LRU position.
func (e *Engine) loadDisk(key CellKey) (core.Stats, bool) {
	if e.dir == "" {
		return core.Stats{}, false
	}
	path := e.cellPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Stats{}, false
	}
	var dc diskCell
	if err := json.Unmarshal(data, &dc); err != nil || dc.Key != key {
		return core.Stats{}, false
	}
	if e.store != nil {
		e.store.touch(path)
	}
	return dc.Stats, true
}

// storeDisk persists one simulated cell, best-effort: a full disk or
// read-only directory degrades to memory-only caching rather than
// failing the run. The write is atomic (temp file + rename) so a
// concurrent reader never sees a torn entry.
func (e *Engine) storeDisk(key CellKey, st core.Stats, dur time.Duration) {
	if e.dir == "" {
		return
	}
	data, err := json.Marshal(diskCell{Key: key, Stats: st, SimSeconds: dur.Seconds()})
	if err != nil {
		return
	}
	path := e.cellPath(key)
	tmp, err := os.CreateTemp(e.dir, ".cell-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		//rarlint:allow errdiscipline best-effort temp-file cleanup on an already-degraded path
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		//rarlint:allow errdiscipline best-effort temp-file cleanup on an already-degraded path
		os.Remove(tmp.Name())
		return
	}
	if e.store != nil {
		e.store.add(path, int64(len(data)))
	}
}

// RunMatrix simulates every (core, scheme, benchmark) combination,
// consulting the memo cache before spawning any simulation, and returns
// the result set. Cells are only stored on success, and once any cell
// has failed all further writes are dropped: a partially-built set can
// never serve zero-value statistics. The returned error names every
// failed cell (scheduling of new cells stops at the first failure, but
// in-flight cells that also fail are reported too).
func (e *Engine) RunMatrix(cores []config.Core, schemes []config.Scheme, benches []trace.Benchmark, opt Options) (*ResultSet, error) {
	return e.RunMatrixOn(nil, cores, schemes, benches, opt)
}

// RunMatrixOn is RunMatrix gated by a shared worker pool: the matrix
// still schedules at most opt.Parallelism cells of its own, but every
// simulation additionally occupies a pool slot, so concurrent matrices —
// the server's concurrent requests — share one process-wide concurrency
// budget instead of each bringing their own. A nil pool reproduces
// RunMatrix exactly.
func (e *Engine) RunMatrixOn(pool *Pool, cores []config.Core, schemes []config.Scheme, benches []trace.Benchmark, opt Options) (*ResultSet, error) {
	type job struct {
		cfg    config.Core
		scheme config.Scheme
		bench  trace.Benchmark
	}
	var jobs []job
	for _, cfg := range cores {
		for _, s := range schemes {
			for _, b := range benches {
				jobs = append(jobs, job{cfg, s, b})
			}
		}
	}

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(jobs) {
		par = len(jobs)
	}

	rs := &ResultSet{cells: make(map[Key]core.Stats, len(jobs))}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next int
		errs []error
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if len(errs) > 0 || next >= len(jobs) {
				mu.Unlock()
				return
			}
			j := jobs[next]
			next++
			mu.Unlock()

			var st core.Stats
			var err error
			pool.Do(func() { st, err = e.Run(j.cfg, j.scheme, j.bench, opt) })
			mu.Lock()
			switch {
			case err != nil:
				errs = append(errs, fmt.Errorf("%s/%s/%s: %w", j.cfg.Name, j.scheme.Name, j.bench.Name, err))
			case len(errs) == 0:
				rs.cells[Key{j.cfg.Name, j.scheme.Name, j.bench.Name}] = st
			}
			mu.Unlock()
		}
	}
	wg.Add(par)
	for i := 0; i < par; i++ {
		go worker()
	}
	wg.Wait()
	if len(errs) > 0 {
		// Workers append in completion order, which varies run to run;
		// sort so the diagnostic names failed cells deterministically.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, fmt.Errorf("sim: %d cell(s) failed: %w", len(errs), errors.Join(errs...))
	}
	return rs, nil
}
