package sim

// Disk persistence for the memoizing engine, promoted from "write-only
// JSON dump" to a content-addressed cache an always-on server can live
// with:
//
//   - orphan sweep: storeDisk writes are atomic (temp file + rename), but
//     a process killed between CreateTemp and Rename leaves a ".cell-*"
//     file behind forever. NewPersistentEngine sweeps them on startup —
//     any temp file present before this process created its first one is
//     by definition abandoned.
//   - LRU eviction: optional size and entry-count budgets
//     (SetDiskBudget). The store indexes every cell file with a logical
//     access clock (seeded from file mtimes at startup, bumped on every
//     load and store), and evicts least-recently-used files once a write
//     pushes it over budget. Eviction only forgets warm-start state — an
//     evicted cell re-simulates and is re-admitted — so budgets bound
//     disk, never correctness.
//
// The index has its own lock and is touched only outside the engine
// lock, except for the read-only gauge snapshot in Engine.Metrics.

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// diskStore indexes the cell files under one versioned cache directory.
type diskStore struct {
	mu         sync.Mutex
	maxBytes   int64               //rarlint:guardedby mu  0 = unbounded
	maxEntries int                 //rarlint:guardedby mu  0 = unbounded
	clock      uint64              //rarlint:guardedby mu
	entries    map[string]*diskEnt //rarlint:guardedby mu  keyed by absolute path
	totalBytes int64               //rarlint:guardedby mu
	evicted    uint64              //rarlint:guardedby mu
}

type diskEnt struct {
	path   string
	size   int64
	access uint64 // logical LRU clock; larger = more recent
}

// newDiskStore scans dir: it sweeps abandoned ".cell-*" temp files and
// indexes every existing cell file, ordering their initial LRU positions
// by modification time so eviction starts from genuinely old entries.
func newDiskStore(dir string) (*diskStore, error) {
	list, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type scanned struct {
		path  string
		size  int64
		mtime int64
	}
	var cells []scanned
	for _, de := range list {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".cell-") {
			// Abandoned atomic-write temp file: nothing will ever rename
			// it into place, so it is pure litter.
			//rarlint:allow errdiscipline best-effort sweep; a surviving orphan only wastes bytes
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent eviction/removal: skip
		}
		cells = append(cells, scanned{filepath.Join(dir, name), info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].mtime != cells[j].mtime {
			return cells[i].mtime < cells[j].mtime
		}
		return cells[i].path < cells[j].path
	})
	s := &diskStore{entries: make(map[string]*diskEnt, len(cells))}
	for _, c := range cells {
		s.clock++
		s.entries[c.path] = &diskEnt{path: c.path, size: c.size, access: s.clock}
		s.totalBytes += c.size
	}
	return s, nil
}

// touch marks path as most recently used.
func (s *diskStore) touch(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.entries[path]; ok {
		s.clock++
		ent.access = s.clock
	}
}

// add records a freshly written cell file and evicts least-recently-used
// entries until the store is back under budget. The new entry is most
// recent, so it is only evicted if it alone exceeds the byte budget.
func (s *diskStore) add(path string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[path]; ok {
		s.totalBytes -= old.size // rewrite of an existing cell
	}
	s.clock++
	s.entries[path] = &diskEnt{path: path, size: size, access: s.clock}
	s.totalBytes += size
	s.evictOverBudget()
}

// setBudget installs the eviction budgets and immediately trims to them.
func (s *diskStore) setBudget(maxBytes int64, maxEntries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes, s.maxEntries = maxBytes, maxEntries
	s.evictOverBudget()
}

// evictOverBudget removes LRU entries while over either budget. Linear
// minimum scans keep the index trivially correct; cell files number in
// the thousands, and eviction runs only on writes.
//
//rarlint:locked mu
func (s *diskStore) evictOverBudget() {
	for len(s.entries) > 0 &&
		((s.maxEntries > 0 && len(s.entries) > s.maxEntries) ||
			(s.maxBytes > 0 && s.totalBytes > s.maxBytes)) {
		var lru *diskEnt
		// The (access, path) comparison is a total order over entries, so
		// this min-scan picks the same victim under every map iteration
		// order.
		//rarlint:allow determinism order-independent min-scan: (access, path) is a total order
		for _, ent := range s.entries {
			if lru == nil || ent.access < lru.access ||
				(ent.access == lru.access && ent.path < lru.path) {
				lru = ent
			}
		}
		//rarlint:allow errdiscipline best-effort eviction; a file that refuses to die is dropped from the index and retried on a later scan
		os.Remove(lru.path)
		delete(s.entries, lru.path)
		s.totalBytes -= lru.size
		s.evicted++
	}
}

// gauges returns the store's current occupancy and eviction counters.
func (s *diskStore) gauges() (entries int, bytes int64, evicted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.totalBytes, s.evicted
}
