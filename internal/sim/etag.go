package sim

// HTTP entity tags for simulation results. Simulations are deterministic
// in their CellKey and the build's struct schema — that is the exact
// soundness condition the memo cache already rests on — so a strong ETag
// can be derived purely from the *request identity*, before any cell is
// computed: equal tags imply byte-identical result matrices. That lets
// the matrix server answer If-None-Match revalidations with 304 without
// touching the cache, the pool, or the simulator, even for cells it has
// never simulated.

import (
	"fmt"
	"hash/fnv"
)

// ETag returns a strong entity tag identifying this cell's result
// content: the engine schema hash (the build's struct shapes, which
// decide the result's JSON form) combined with the full cell key (names,
// options and the content hash of core config, scheme and benchmark).
func (k CellKey) ETag() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%#v", SchemaHash(), k)
	return fmt.Sprintf("\"%016x\"", h.Sum64())
}

// MatrixETag combines the cell keys of one matrix request, in request
// order, into a single strong entity tag for the whole response.
func MatrixETag(keys []CellKey) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s", SchemaHash())
	for _, k := range keys {
		fmt.Fprintf(h, "\x00%#v", k)
	}
	return fmt.Sprintf("\"%016x\"", h.Sum64())
}
