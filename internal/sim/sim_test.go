package sim

import (
	"math"
	"testing"

	"rarsim/internal/config"
	"rarsim/internal/trace"
)

func smallOpt() Options {
	return Options{Instructions: 20_000, Warmup: 5_000, Seed: 42, Parallelism: 4}
}

func twoBenches(t *testing.T) []trace.Benchmark {
	t.Helper()
	var out []trace.Benchmark
	for _, n := range []string{"libquantum", "fotonik"} {
		b, err := trace.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestRunMatrixCompleteness(t *testing.T) {
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO, config.RAR}
	rs, err := RunMatrix(cores, schemes, twoBenches(t), smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemes {
		for _, b := range twoBenches(t) {
			st, ok := rs.Stats("baseline", s.Name, b.Name)
			if !ok {
				t.Fatalf("missing cell %s/%s", s.Name, b.Name)
			}
			if st.Committed != 20_000 {
				t.Errorf("%s/%s committed %d", s.Name, b.Name, st.Committed)
			}
		}
	}
}

func TestMatrixMatchesSerialRuns(t *testing.T) {
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO, config.PRE}
	benches := twoBenches(t)
	opt := smallOpt()
	rs, err := RunMatrix(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemes {
		for _, b := range benches {
			serial, err := Run(config.Baseline(), s, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			parallel := rs.MustStats("baseline", s.Name, b.Name)
			if serial.Cycles != parallel.Cycles || serial.TotalABC != parallel.TotalABC {
				t.Errorf("%s/%s: parallel run differs from serial", s.Name, b.Name)
			}
		}
	}
}

func TestNormalisedMetrics(t *testing.T) {
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO, config.RAR}
	benches := twoBenches(t)
	rs, err := RunMatrix(cores, schemes, benches, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	// The baseline normalised against itself is exactly 1.0 everywhere.
	for _, b := range BenchNames(benches) {
		if m := rs.MTTF("baseline", "OoO", b); math.Abs(m-1) > 1e-12 {
			t.Errorf("%s: baseline MTTF = %v", b, m)
		}
		if a := rs.ABCNorm("baseline", "OoO", b); math.Abs(a-1) > 1e-12 {
			t.Errorf("%s: baseline ABC = %v", b, a)
		}
		if i := rs.IPCNorm("baseline", "OoO", b); math.Abs(i-1) > 1e-12 {
			t.Errorf("%s: baseline IPC = %v", b, i)
		}
	}
	names := BenchNames(benches)
	if rs.MeanMTTF("baseline", "RAR", names) <= 1 {
		t.Error("RAR mean MTTF must beat baseline on memory-intensive benchmarks")
	}
	if rs.MeanABCNorm("baseline", "RAR", names) >= 1 {
		t.Error("RAR mean ABC must be below baseline")
	}
	if rs.MeanMLP("baseline", "OoO", names) <= 0 {
		t.Error("MLP must be positive")
	}
}

func TestMustStatsPanics(t *testing.T) {
	rs := &ResultSet{cells: nil}
	defer func() {
		if recover() == nil {
			t.Error("MustStats on a missing cell must panic")
		}
	}()
	rs.MustStats("baseline", "OoO", "nope")
}

func TestBenchNames(t *testing.T) {
	names := BenchNames(twoBenches(t))
	if len(names) != 2 || names[0] != "libquantum" || names[1] != "fotonik" {
		t.Errorf("names = %v", names)
	}
}
