package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

// TestEngineNegativeCache pins the failed-cell thundering-herd fix: with
// a failure TTL, N concurrent requests for a deliberately failing cell
// run exactly one simulation per retry window — the runner fails once,
// waiters share that failure, and every request inside the window is
// answered from the negative cache as a FailedCellError with retry-after
// semantics. Advancing past the TTL permits exactly one more attempt.
func TestEngineNegativeCache(t *testing.T) {
	var sims atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	e := NewEngine()
	e.SetFailureTTL(time.Minute)
	var clockMu sync.Mutex
	now := time.Unix(1_000_000, 0)
	e.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		if sims.Add(1) == 1 {
			close(started)
		}
		<-release
		return core.Stats{}, errors.New("boom")
	}
	cfg := config.Baseline()
	bench := twoBenches(t)[0]
	opt := smallOpt()

	var wg sync.WaitGroup
	var failedCellErrs atomic.Int64
	call := func() {
		defer wg.Done()
		_, err := e.Run(cfg, config.RAR, bench, opt)
		var fce *FailedCellError
		if !errors.As(err, &fce) {
			t.Errorf("err = %v (%T), want *FailedCellError", err, err)
			return
		}
		if fce.RetryAfter <= 0 || fce.RetryAfter > time.Minute {
			t.Errorf("RetryAfter = %v, want in (0, 1m]", fce.RetryAfter)
		}
		failedCellErrs.Add(1)
	}

	// One runner enters the (gated) failing simulation; N more pile on
	// while it is in flight.
	wg.Add(1)
	go call()
	<-started
	const waiters = 8
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go call()
	}
	time.Sleep(20 * time.Millisecond) // let the waiters reach the entry
	close(release)
	wg.Wait()
	if n := sims.Load(); n != 1 {
		t.Fatalf("simulated %d times during the first window, want exactly 1", n)
	}
	if n := failedCellErrs.Load(); n != waiters+1 {
		t.Errorf("%d callers saw FailedCellError, want %d", n, waiters+1)
	}

	// Still inside the window: requests are negative-cache hits, with a
	// RetryAfter that shrinks as the clock advances.
	clockMu.Lock()
	now = now.Add(40 * time.Second)
	clockMu.Unlock()
	const inWindow = 5
	for i := 0; i < inWindow; i++ {
		_, err := e.Run(cfg, config.RAR, bench, opt)
		var fce *FailedCellError
		if !errors.As(err, &fce) {
			t.Fatalf("in-window err = %v, want *FailedCellError", err)
		}
		if fce.RetryAfter != 20*time.Second {
			t.Errorf("RetryAfter = %v, want 20s remaining", fce.RetryAfter)
		}
	}
	if n := sims.Load(); n != 1 {
		t.Fatalf("in-window requests re-simulated (%d sims)", n)
	}
	m := e.Metrics()
	if m.ErrHits != inWindow || m.Errors != 1 || m.Hits != 0 {
		t.Errorf("metrics = %+v, want %d errHits, 1 error, 0 hits", m, inWindow)
	}

	// Past the TTL: concurrent retries collapse onto exactly one new
	// simulation (window two).
	clockMu.Lock()
	now = now.Add(time.Minute)
	clockMu.Unlock()
	const retriers = 6
	for i := 0; i < retriers; i++ {
		wg.Add(1)
		go call()
	}
	wg.Wait()
	if n := sims.Load(); n != 2 {
		t.Errorf("simulated %d times across two windows, want exactly 2", n)
	}
}

// TestEngineFailureTTLZeroKeepsRetrySemantics: without a TTL the engine
// behaves as it always has — failures are forgotten immediately, errors
// are plain (not FailedCellError), and a retry re-simulates.
func TestEngineFailureTTLZeroKeepsRetrySemantics(t *testing.T) {
	var sims atomic.Int64
	e := NewEngine()
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		sims.Add(1)
		return core.Stats{}, errors.New("boom")
	}
	cfg := config.Baseline()
	bench := twoBenches(t)[0]
	opt := smallOpt()
	for i := 0; i < 3; i++ {
		_, err := e.Run(cfg, config.RAR, bench, opt)
		var fce *FailedCellError
		if errors.As(err, &fce) {
			t.Fatalf("TTL-less engine returned FailedCellError: %v", err)
		}
		if err == nil {
			t.Fatal("failing cell returned nil error")
		}
	}
	if n := sims.Load(); n != 3 {
		t.Errorf("simulated %d times, want 3 (every request retries)", n)
	}
	if m := e.Metrics(); m.Unique != 0 {
		t.Errorf("failed cells left %d entries in memory, want 0", m.Unique)
	}
}
