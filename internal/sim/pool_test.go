package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/trace"
)

// TestPoolBoundsConcurrency saturates a 2-slot pool with 8 tasks and
// checks the gauges: exactly 2 active, 6 queued, and never more than 2
// inside Do at once.
func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(2)
	if p.Size() != 2 {
		t.Fatalf("Size = %d, want 2", p.Size())
	}
	var cur, peak atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(func() {
				c := cur.Add(1)
				for {
					m := peak.Load()
					if c <= m || peak.CompareAndSwap(m, c) {
						break
					}
				}
				<-gate
				cur.Add(-1)
			})
		}()
	}
	// Wait for the pool to reach steady state: 2 running, 6 blocked.
	for i := 0; i < 1000 && !(p.Active() == 2 && p.Queued() == 6); i++ {
		time.Sleep(time.Millisecond)
	}
	if p.Active() != 2 || p.Queued() != 6 {
		t.Errorf("active=%d queued=%d, want 2/6", p.Active(), p.Queued())
	}
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrency %d exceeded pool size 2", got)
	}
	if p.Active() != 0 || p.Queued() != 0 {
		t.Errorf("after drain: active=%d queued=%d, want 0/0", p.Active(), p.Queued())
	}
}

// TestNilPool: a nil pool is the "unbounded" degenerate case every
// call site may pass.
func TestNilPool(t *testing.T) {
	var p *Pool
	ran := false
	p.Do(func() { ran = true })
	if !ran {
		t.Error("nil pool must still run the task")
	}
	if p.Size() != 0 || p.Active() != 0 || p.Queued() != 0 {
		t.Error("nil pool gauges must be zero")
	}
}

// TestRunMatrixOnSharedPool runs two concurrent matrices through one
// single-slot pool: both must complete correctly, and the pool — not the
// matrices' own parallelism — must bound simulation concurrency to 1.
func TestRunMatrixOnSharedPool(t *testing.T) {
	var cur, peak atomic.Int64
	e := NewEngine()
	e.runCell = func(cfg config.Core, s config.Scheme, b trace.Benchmark, o Options) (core.Stats, error) {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen the overlap window
		cur.Add(-1)
		return core.Stats{Cycles: 100, Committed: o.Instructions}, nil
	}
	pool := NewPool(1)
	cores := []config.Core{config.Baseline()}
	schemes := []config.Scheme{config.OoO, config.PRE, config.RAR}
	benches := twoBenches(t)
	opt := smallOpt()
	opt.Parallelism = 4 // each matrix would run 4-wide on its own

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.RunMatrixOn(pool, cores, schemes, benches, opt)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("matrix %d: %v", i, err)
		}
	}
	if got := peak.Load(); got != 1 {
		t.Errorf("peak simulation concurrency %d, want 1 (pool-bounded)", got)
	}
	want := uint64(len(schemes) * len(benches))
	if m := e.Metrics(); m.Simulated != want {
		t.Errorf("simulated %d cells, want %d (cross-matrix dedup)", m.Simulated, want)
	}
}
