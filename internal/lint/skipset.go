package lint

// The skipset analyzer pins the bulk-advance write set. Fast-forwarding
// replaces N iterations of the blocked-cycle path (tickBlocked plus the
// loop bookkeeping) with one n-scaled bulk update, and the byte-identical
// contract demands the two paths touch exactly the same state: a stat
// counter added to the per-cycle path but forgotten in bulkAdvance is a
// silent divergence that today only surfaces if an A/B matrix happens to
// exercise it. The analyzer computes, over the static call graph,
//
//	B = fields written by the bulk-advance closures
//	    (SkipTo/skipStall/bulkAdvance at core level, skipQuietGap at
//	    chip level, following helpers like the ledger's Advance),
//	T = fields written by the per-cycle blocked path (tickBlocked),
//
// and checks both against the *declared* n-scalable set: every field
// carrying //rarlint:nscaled <reason> on its declaration. Three ways to
// be wrong, each a finding at the field's declaration:
//
//   - a field in B without an nscaled declaration (the bulk path writes
//     state nobody vouched scales linearly),
//   - an nscaled declaration on a field outside B (the declaration rot:
//     the bulk path no longer maintains it),
//   - a field in T but not in B (the forgotten-counter divergence: the
//     per-cycle path advances it, the skip path does not).
//
// Like survives and quiescent, stale or unattached nscaled directives
// are findings in their own right and cannot be suppressed.

import (
	"fmt"
)

// skipBulkNames seed the bulk-advance write set B.
var skipBulkNames = map[string]bool{
	"SkipTo":       true,
	"skipStall":    true,
	"bulkAdvance":  true,
	"skipQuietGap": true,
}

// skipTickNames seed the per-cycle blocked-path write set T.
var skipTickNames = map[string]bool{
	"tickBlocked": true,
}

func skipSet(m *Module) []Diagnostic {
	fi := buildFuncIndex(m)
	bulks, bulkPkgs := seedFuncs(m, fi, skipBulkNames)
	ticks, tickPkgs := seedFuncs(m, fi, skipTickNames)
	if len(bulks) == 0 {
		return nil // no bulk-advance path: nothing to pin
	}

	fe := newFlowEngine(fi)
	bulkW, _, bulkFuncs := fe.closure(bulks)
	tickW := flowSet{}
	if len(ticks) > 0 {
		tickW = fe.writeClosure(ticks)
	}

	// Audited packages: wherever the bulk or per-cycle closures live or
	// reach (core, chip, and the ACE ledger they both advance).
	pkgs := bulkPkgs
	for p := range tickPkgs {
		pkgs[p] = true
	}
	for _, info := range bulkFuncs {
		pkgs[info.pkg] = true
	}
	fields, owner := auditedFields(m, pkgs)

	// nscaled claims like quiescent: trailing, or up to two lines above,
	// so it stacks with unit/survives directives on the same field.
	attached := map[*nscaled]int{}
	claim := func(filename string, fieldLine int) *nscaled {
		for _, l := range []int{fieldLine, fieldLine - 1, fieldLine - 2} {
			for _, d := range m.nscaleds[filename][l] {
				if d.reason == "" {
					continue // malformed, already a lint finding
				}
				if at, ok := attached[d]; ok && at != fieldLine {
					continue
				}
				attached[d] = fieldLine
				return d
			}
		}
		return nil
	}

	var diags []Diagnostic
	for _, fv := range fields {
		pos := m.Fset.Position(fv.Pos())
		d := claim(pos.Filename, pos.Line)
		bulkSite, inBulk := bulkW[fv]
		tickSite, inTick := tickW[fv]
		switch {
		case inBulk && d != nil:
			d.used = true
		case inBulk:
			diags = append(diags, Diagnostic{Pos: pos, Check: "skipset",
				Message: fmt.Sprintf("field %s.%s is written by the bulk-advance closure (by %s) but not declared n-scalable: annotate //rarlint:nscaled <reason> or stop writing it on the skip path",
					owner[fv], fv.Name(), bulkSite.fn)})
		case d != nil:
			diags = append(diags, Diagnostic{Pos: pos, Check: "skipset",
				Message: fmt.Sprintf("stale rarlint:nscaled on %s.%s: the bulk-advance closure does not write the field; remove the annotation",
					owner[fv], fv.Name())})
		}
		if inTick && !inBulk {
			diags = append(diags, Diagnostic{Pos: pos, Check: "skipset",
				Message: fmt.Sprintf("field %s.%s is written by the per-cycle blocked path (by %s) but not by the bulk-advance closure: skipping a stall would silently diverge from ticking through it",
					owner[fv], fv.Name(), tickSite.fn)})
		}
	}

	diags = append(diags, unattachedDirectives(m, verbNscaled, "skipset", m.nscaleds,
		func(d *nscaled) bool { _, ok := attached[d]; return ok || d.reason == "" })...)
	return diags
}
