package lint

// A module-wide function index and static call resolution, shared by the
// purity and flushreset analyzers. Both reason transitively: purity must
// catch a mutation added three calls below a //rarlint:pure root, and
// flushreset must credit a restore performed by a helper of exitRunahead.
// The index maps every function and method *declared in the module* (test
// files excluded) to its declaration, so a resolved static callee can be
// followed into its body; calls that cannot be resolved statically
// (function values, interface methods) resolve to nil and each analyzer
// decides how conservative to be about them.

import (
	"go/ast"
	"go/types"
)

// funcInfo is one module-declared function or method.
type funcInfo struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
}

// funcIndex maps declared functions to their bodies across the module.
type funcIndex struct {
	mod   *Module
	decls map[*types.Func]*funcInfo
}

// buildFuncIndex indexes every function declared in a non-test file of
// the module.
func buildFuncIndex(m *Module) *funcIndex {
	fi := &funcIndex{mod: m, decls: map[*types.Func]*funcInfo{}}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					fi.decls[fn] = &funcInfo{fn: fn, pkg: p, decl: fd}
				}
			}
		}
	}
	return fi
}

// lookup returns the module declaration of fn, or nil when fn is
// external, interface-abstract, or declared in a test file.
func (fi *funcIndex) lookup(fn *types.Func) *funcInfo {
	if fn == nil {
		return nil
	}
	return fi.decls[fn]
}

// callees returns, in source order, the statically resolved module
// functions called (directly, deferred, or via go) anywhere in the body
// of info's function, including inside function literals.
func (fi *funcIndex) callees(info *funcInfo) []*funcInfo {
	var out []*funcInfo
	seen := map[*funcInfo]bool{}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := fi.lookup(calleeFunc(info.pkg, call)); callee != nil && !seen[callee] {
			seen[callee] = true
			out = append(out, callee)
		}
		return true
	})
	return out
}

// referencedFuncs returns, in source order, every module function the body
// of info's function can transfer control to: direct static callees plus
// functions and methods referenced as *values* — a method value stored in
// a variable or passed as an argument escapes the static call graph, so a
// conservative closure must assume it runs. The two sets overlap on plain
// calls; the result is deduplicated.
func (fi *funcIndex) referencedFuncs(info *funcInfo) []*funcInfo {
	var out []*funcInfo
	seen := map[*funcInfo]bool{}
	add := func(fn *types.Func) {
		if callee := fi.lookup(fn); callee != nil && !seen[callee] {
			seen[callee] = true
			out = append(out, callee)
		}
	}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			add(calleeFunc(info.pkg, n))
		case *ast.SelectorExpr:
			// Method values: x.M used as a value (the call case above
			// resolves x.M() too; dedup makes the overlap harmless).
			if s := info.pkg.Info.Selections[n]; s != nil && s.Kind() == types.MethodVal {
				if fn, ok := s.Obj().(*types.Func); ok {
					add(fn)
				}
			} else if fn, ok := info.pkg.Info.Uses[n.Sel].(*types.Func); ok {
				add(fn)
			}
		case *ast.Ident:
			if fn, ok := info.pkg.Info.Uses[n].(*types.Func); ok {
				add(fn)
			}
		}
		return true
	})
	return out
}

// funcName renders a function's name for diagnostics: "Type.Method" for
// methods, plain name otherwise, qualified with the package name when it
// is not the one the diagnostic is reported from.
func funcName(from *Package, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && (from == nil || fn.Pkg() != from.Types) {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
