package lint

// The statshygiene analyzer cross-references the statistics structs that
// become report columns. A simulator statistic is only meaningful if the
// simulator both produces it (writes it somewhere) and something consumes
// it (a reporter, a derived metric, an error message). The two failure
// modes are exactly the silent-zero bug class PR 1 fixed by hand:
//
//   - written but never read: the core spends cycles maintaining a
//     counter no table ever shows — dead weight at best, a stale copy of
//     a real metric at worst;
//   - read but never written: a reporter renders a field nothing ever
//     sets, producing an always-zero column that looks like data.
//
// Audited structs are the named types "Stats" and "Metrics" declared
// under <module>/internal/. Counter-wise plumbing (warmup subtraction,
// sample aggregation — `out.Cycles -= w.Cycles`) counts as neither a
// read nor a write; see fieldflow.go. Serialization of a whole struct
// (encoding/json et al.) does not count as a read: a field whose only
// consumer is a JSON dump still needs an allow directive explaining who
// reads that JSON.

import (
	"fmt"
	"go/types"
	"sort"
)

func statsHygiene(m *Module) []Diagnostic {
	audited := map[*types.Var]bool{}
	var fields []*types.Var // declaration order for deterministic output
	owner := map[*types.Var]string{}

	for _, p := range m.Pkgs {
		if !m.IsInternal(p) {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			if name != "Stats" && name != "Metrics" {
				continue
			}
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || m.isTestPos(tn.Pos()) {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				audited[fv] = true
				fields = append(fields, fv)
				owner[fv] = p.Types.Name() + "." + name
			}
		}
	}
	if len(audited) == 0 {
		return nil
	}

	ff := &fieldFlow{mod: m, audited: audited}
	ff.run()

	reads := map[*types.Var]int{}
	writes := map[*types.Var]int{}
	for _, u := range ff.uses {
		if u.kind == accRead {
			reads[u.field]++
		} else {
			writes[u.field]++
		}
	}

	var diags []Diagnostic
	for _, fv := range fields {
		r, w := reads[fv], writes[fv]
		var msg string
		switch {
		case r == 0 && w == 0:
			msg = fmt.Sprintf("field %s.%s is never written and never read", owner[fv], fv.Name())
		case r == 0:
			msg = fmt.Sprintf("field %s.%s is written but never read by any reporter or metric (dead statistic)", owner[fv], fv.Name())
		case w == 0:
			msg = fmt.Sprintf("field %s.%s is read/reported but never written (always-zero column)", owner[fv], fv.Name())
		default:
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:     m.Fset.Position(fv.Pos()),
			Check:   "statshygiene",
			Message: msg,
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
	return diags
}
