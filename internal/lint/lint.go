// Package lint implements rarlint, a repo-specific static analyzer that
// enforces the simulator's correctness contracts: determinism of
// everything feeding the memoized simulation cache, hygiene of the
// statistics structs that become report columns, coverage of every
// config knob the experiment sweeps claim to vary, error-return
// discipline in the simulator packages, purity of the stall
// fast-forward's event computation and the report read paths,
// completeness of the runahead exit/flush restore set (the paper's
// un-ACE argument), dimensional consistency of the metric pipeline,
// guarded-by lock discipline of the concurrent engine front-end,
// allocation-freedom of the per-cycle hot loop, next-event coverage of
// every stage-written field (the fast-forward quiescence contract), and
// exact agreement between the bulk-advance write set and the declared
// n-scalable fields.
//
// The analyses are whole-module: rarlint loads and type-checks every
// package of the module with go/parser and go/types (standard library
// only — no external dependencies; _test.go files join in with -tests),
// then runs each analyzer over the typed ASTs. Findings carry
// file:line:column positions; the source tree talks back through
// //rarlint: directives —
//
//	//rarlint:allow <check> <reason>     suppress one audited finding
//	//rarlint:pure                       declare a function side-effect-free
//	//rarlint:survives <reason>          waive one runahead-residue field
//	//rarlint:unit <unit-expr>           declare a field's or result's dimension
//	//rarlint:guardedby <mu|atomic|init> declare a field's synchronization story
//	//rarlint:locked <mu>                a method called only with mu held
//	//rarlint:hot                        root the zero-alloc hot-loop closure
//	//rarlint:quiescent <reason>         waive next-event coverage for one
//	                                     stage-written field
//	//rarlint:nscaled <reason>           declare a field part of the
//	                                     bulk-advance write set
//
// each attached to the governed line or the line directly above it.
// Malformed and stale directives are themselves findings. rarlint
// complements the *runtime* invariant auditor in internal/core/audit.go:
// the auditor checks microarchitectural state while a simulation runs,
// rarlint proves source-level contracts before anything runs at all.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Check names the analyzer that produced it.
	Check string
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// An Analyzer is one named check over a loaded module.
type Analyzer struct {
	// Name is the check name used in -checks and in allow directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the analyzer's findings on the module.
	Run func(m *Module) []Diagnostic
}

// Analyzers returns every rarlint check, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{
			Name: "determinism",
			Doc:  "wall-clock, global math/rand and order-dependent map iteration in cache-feeding simulator packages",
			Run:  determinism,
		},
		{
			Name: "statshygiene",
			Doc:  "Stats/Metrics fields that are written but never reported, or reported but never written",
			Run:  statsHygiene,
		},
		{
			Name: "configcoverage",
			Doc:  "config knobs declared in internal/config but never read by the simulator",
			Run:  configCoverage,
		},
		{
			Name: "errdiscipline",
			Doc:  "discarded error returns in non-test internal packages",
			Run:  errDiscipline,
		},
		{
			Name: "purity",
			Doc:  "side effects reachable from //rarlint:pure functions (the stall fast-forward's next-event contract)",
			Run:  purity,
		},
		{
			Name: "flushreset",
			Doc:  "state written on runahead paths but not restored by exit/flush (the flush-at-exit un-ACE contract)",
			Run:  flushReset,
		},
		{
			Name: "units",
			Doc:  "dimensional analysis over //rarlint:unit-annotated stats, energy and metrics expressions",
			Run:  unitsCheck,
		},
		{
			Name: "lockcheck",
			Doc:  "guarded-by discipline of //rarlint:guardedby fields: mutex held at every access, no double lock, no return-while-held",
			Run:  lockcheck,
		},
		{
			Name: "hotalloc",
			Doc:  "allocation-freedom of every function reachable from //rarlint:hot roots (the zero-alloc per-cycle loop contract)",
			Run:  hotalloc,
		},
		{
			Name: "ffsound",
			Doc:  "next-event coverage of every stage-written field (the fast-forward quiescence contract)",
			Run:  ffSound,
		},
		{
			Name: "skipset",
			Doc:  "exact agreement between the bulk-advance write set, the per-cycle blocked path, and the declared //rarlint:nscaled fields",
			Run:  skipSet,
		},
	}
}

// AnalyzerNames returns the names of every check.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run loads nothing itself: it runs the named checks (all of them when
// checks is empty) over an already loaded module, applies //rarlint:allow
// suppressions, and returns the surviving findings sorted by position.
func Run(m *Module, checks []string) ([]Diagnostic, error) {
	enabled := map[string]bool{}
	for _, c := range checks {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !knownCheck(c) {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", c, strings.Join(AnalyzerNames(), ", "))
		}
		enabled[c] = true
	}

	// The analyzers are independent and run concurrently: each consumes
	// the shared read-only typed ASTs (token.FileSet is internally
	// synchronized) and each mutable directive kind is claimed by exactly
	// one analyzer (pures by purity, survives by flushreset, quiescents
	// by ffsound, nscaleds by skipset, units by units, guardeds/lockeds
	// by lockcheck, hots and allow-barriers by hotalloc). Suppression and
	// staleness accounting stay sequential, after the barrier. Findings
	// are collected per-analyzer and ordering is restored by the final
	// position sort, so the output is deterministic regardless of
	// scheduling.
	all := Analyzers()
	results := make([][]Diagnostic, len(all))
	var wg sync.WaitGroup
	for i, a := range all {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			results[i] = a.Run(m)
		}(i, a)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	diags = append(diags, m.checkDirectives()...)
	diags = m.suppress(diags)
	if len(enabled) == 0 || len(enabled) == len(all) {
		// Staleness is decidable only when every check ran: under a
		// -checks filter an allow for a disabled check is dormant, not
		// stale.
		diags = append(diags, m.staleAllows()...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// knownCheck reports whether name is a registered analyzer.
func knownCheck(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}
