package lint

// Field-access classification shared by statshygiene and configcoverage.
// Both analyzers reason about how struct fields flow through the module:
// which fields are genuinely written (produced), genuinely read
// (consumed), and which accesses are mere plumbing — counter-wise
// copies/subtractions like `out.Cycles -= w.Cycles` that move a field
// between snapshots of the same shape without ever consuming it. Without
// the plumbing rule, a warmup-subtraction helper that touches every field
// would mark the whole struct "read" and the analysis would be blind.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// access kinds.
const (
	accRead = iota
	accWrite
)

// fieldUse records one classified access to an audited field.
type fieldUse struct {
	field *types.Var
	kind  int
	pos   token.Pos
}

// fieldFlow walks every file of every module package and classifies
// accesses to the audited fields. countInner controls whether interior
// components of a selector chain count as reads: statshygiene turns it
// off (in `st.Mem.DemandLoads` only DemandLoads is consumed),
// configcoverage turns it on (any appearance of a knob on a read path
// means the knob reaches the model).
type fieldFlow struct {
	mod        *Module
	audited    map[*types.Var]bool
	countInner bool
	uses       []fieldUse

	// handled marks selector/ident nodes consumed by write or plumbing
	// classification so the generic read pass skips them.
	handled map[ast.Node]bool
}

// run classifies every access in the module. Test files (present only
// in -tests mode) are out of scope: a test reading a counter does not
// make the counter a reported metric, and a test writing a knob does
// not make the knob covered.
func (ff *fieldFlow) run() {
	ff.handled = map[ast.Node]bool{}
	for _, p := range ff.mod.Pkgs {
		for _, f := range p.Files {
			if ff.mod.isTestFile(f) {
				continue
			}
			ff.file(p, f)
		}
	}
}

func (ff *fieldFlow) file(p *Package, f *ast.File) {
	// First pass: classify write contexts and mark their nodes.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ff.assign(p, n)
		case *ast.IncDecStmt:
			if fv, sel := ff.outermostField(p, n.X); fv != nil {
				ff.record(fv, accWrite, n.X.Pos())
				ff.markChain(sel)
			}
		case *ast.CompositeLit:
			ff.composite(p, n)
		}
		return true
	})
	// Second pass: everything left is a read.
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || ff.handled[sel] {
			return true
		}
		fv := ff.fieldOf(p, sel)
		if fv == nil {
			return true
		}
		ff.record(fv, accRead, sel.Pos())
		if !ff.countInner {
			// The interior of the chain is an access path, not a
			// consumption of the interior fields.
			markInner(sel, ff.handled)
		}
		return true
	})
}

// assign classifies one assignment statement, applying the plumbing rule
// when LHS and RHS move the same audited field.
func (ff *fieldFlow) assign(p *Package, n *ast.AssignStmt) {
	pairwise := len(n.Lhs) == len(n.Rhs)
	for i, lhs := range n.Lhs {
		fv, sel := ff.outermostField(p, lhs)
		if fv == nil {
			continue
		}
		ff.markChain(sel)
		var rhs ast.Expr
		if pairwise {
			rhs = n.Rhs[i]
		}
		if rhs != nil {
			rhsFields, rhsSels := ff.auditedReads(p, rhs)
			if len(rhsFields) > 0 && allSame(rhsFields, fv) {
				// Pure plumbing: the field is moved, neither produced
				// nor consumed. Mark the RHS chains so the read pass
				// skips them.
				for _, s := range rhsSels {
					ff.markChain(s)
				}
				continue
			}
		}
		ff.record(fv, accWrite, lhs.Pos())
	}
}

// composite records writes for keyed fields of audited struct literals.
func (ff *fieldFlow) composite(p *Package, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := p.Info.Uses[key].(*types.Var)
		if !ok || !obj.IsField() || !ff.audited[obj] {
			continue
		}
		ff.record(obj, accWrite, key.Pos())
		ff.handled[key] = true
	}
}

// auditedReads collects the outermost audited fields read anywhere in
// expr, together with their selector nodes.
func (ff *fieldFlow) auditedReads(p *Package, expr ast.Expr) ([]*types.Var, []*ast.SelectorExpr) {
	var fields []*types.Var
	var sels []*ast.SelectorExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fv := ff.fieldOf(p, sel); fv != nil {
			fields = append(fields, fv)
			sels = append(sels, sel)
			return false // the chain's interior is an access path
		}
		return true
	})
	return fields, sels
}

// outermostField resolves expr to the outermost audited field it writes
// through: for `s.Mem.PrefetchIssued` that is PrefetchIssued, with the
// interior Mem treated as the access path. Index and star expressions
// are unwrapped (`st.ABC[i]` writes through field ABC).
func (ff *fieldFlow) outermostField(p *Package, expr ast.Expr) (*types.Var, *ast.SelectorExpr) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if fv := ff.fieldOf(p, e); fv != nil {
				return fv, e
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// fieldOf resolves a selector to an audited field, or nil.
func (ff *fieldFlow) fieldOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok || !ff.audited[fv] {
		return nil
	}
	return fv
}

// markChain marks every selector in the chain rooted at sel as handled.
func (ff *fieldFlow) markChain(sel *ast.SelectorExpr) {
	if sel == nil {
		return
	}
	ff.handled[sel] = true
	markInner(sel, ff.handled)
}

// markInner marks the interior selectors of a chain.
func markInner(sel *ast.SelectorExpr, handled map[ast.Node]bool) {
	for {
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return
		}
		handled[inner] = true
		sel = inner
	}
}

// record appends one classified use.
func (ff *fieldFlow) record(fv *types.Var, kind int, pos token.Pos) {
	ff.uses = append(ff.uses, fieldUse{field: fv, kind: kind, pos: pos})
}

// allSame reports whether every field in fields is fv.
func allSame(fields []*types.Var, fv *types.Var) bool {
	for _, f := range fields {
		if f != fv {
			return false
		}
	}
	return true
}
