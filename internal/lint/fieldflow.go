package lint

// Field-access classification shared by statshygiene and configcoverage.
// Both analyzers reason about how struct fields flow through the module:
// which fields are genuinely written (produced), genuinely read
// (consumed), and which accesses are mere plumbing — counter-wise
// copies/subtractions like `out.Cycles -= w.Cycles` that move a field
// between snapshots of the same shape without ever consuming it. Without
// the plumbing rule, a warmup-subtraction helper that touches every field
// would mark the whole struct "read" and the analysis would be blind.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// access kinds.
const (
	accRead = iota
	accWrite
)

// fieldUse records one classified access to an audited field.
type fieldUse struct {
	field *types.Var
	kind  int
	pos   token.Pos
}

// fieldFlow walks every file of every module package and classifies
// accesses to the audited fields. countInner controls whether interior
// components of a selector chain count as reads: statshygiene turns it
// off (in `st.Mem.DemandLoads` only DemandLoads is consumed),
// configcoverage turns it on (any appearance of a knob on a read path
// means the knob reaches the model).
type fieldFlow struct {
	mod        *Module
	audited    map[*types.Var]bool
	countInner bool
	uses       []fieldUse

	// handled marks selector/ident nodes consumed by write or plumbing
	// classification so the generic read pass skips them.
	handled map[ast.Node]bool
}

// run classifies every access in the module. Test files (present only
// in -tests mode) are out of scope: a test reading a counter does not
// make the counter a reported metric, and a test writing a knob does
// not make the knob covered.
func (ff *fieldFlow) run() {
	ff.handled = map[ast.Node]bool{}
	for _, p := range ff.mod.Pkgs {
		for _, f := range p.Files {
			if ff.mod.isTestFile(f) {
				continue
			}
			ff.file(p, f)
		}
	}
}

func (ff *fieldFlow) file(p *Package, f *ast.File) {
	// First pass: classify write contexts and mark their nodes.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ff.assign(p, n)
		case *ast.IncDecStmt:
			if fv, sel := ff.outermostField(p, n.X); fv != nil {
				ff.record(fv, accWrite, n.X.Pos())
				ff.markChain(sel)
			}
		case *ast.CompositeLit:
			ff.composite(p, n)
		}
		return true
	})
	// Second pass: everything left is a read.
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || ff.handled[sel] {
			return true
		}
		fv := ff.fieldOf(p, sel)
		if fv == nil {
			return true
		}
		ff.record(fv, accRead, sel.Pos())
		if !ff.countInner {
			// The interior of the chain is an access path, not a
			// consumption of the interior fields.
			markInner(sel, ff.handled)
		}
		return true
	})
}

// assign classifies one assignment statement, applying the plumbing rule
// when LHS and RHS move the same audited field.
func (ff *fieldFlow) assign(p *Package, n *ast.AssignStmt) {
	pairwise := len(n.Lhs) == len(n.Rhs)
	for i, lhs := range n.Lhs {
		fv, sel := ff.outermostField(p, lhs)
		if fv == nil {
			continue
		}
		ff.markChain(sel)
		var rhs ast.Expr
		if pairwise {
			rhs = n.Rhs[i]
		}
		if rhs != nil {
			rhsFields, rhsSels := ff.auditedReads(p, rhs)
			if len(rhsFields) > 0 && allSame(rhsFields, fv) {
				// Pure plumbing: the field is moved, neither produced
				// nor consumed. Mark the RHS chains so the read pass
				// skips them.
				for _, s := range rhsSels {
					ff.markChain(s)
				}
				continue
			}
		}
		ff.record(fv, accWrite, lhs.Pos())
	}
}

// composite records writes for keyed fields of audited struct literals.
func (ff *fieldFlow) composite(p *Package, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := p.Info.Uses[key].(*types.Var)
		if !ok || !obj.IsField() || !ff.audited[obj] {
			continue
		}
		ff.record(obj, accWrite, key.Pos())
		ff.handled[key] = true
	}
}

// auditedReads collects the outermost audited fields read anywhere in
// expr, together with their selector nodes.
func (ff *fieldFlow) auditedReads(p *Package, expr ast.Expr) ([]*types.Var, []*ast.SelectorExpr) {
	var fields []*types.Var
	var sels []*ast.SelectorExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fv := ff.fieldOf(p, sel); fv != nil {
			fields = append(fields, fv)
			sels = append(sels, sel)
			return false // the chain's interior is an access path
		}
		return true
	})
	return fields, sels
}

// outermostField resolves expr to the outermost audited field it writes
// through: for `s.Mem.PrefetchIssued` that is PrefetchIssued, with the
// interior Mem treated as the access path. Index and star expressions
// are unwrapped (`st.ABC[i]` writes through field ABC).
func (ff *fieldFlow) outermostField(p *Package, expr ast.Expr) (*types.Var, *ast.SelectorExpr) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if fv := ff.fieldOf(p, e); fv != nil {
				return fv, e
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// fieldOf resolves a selector to an audited field, or nil.
func (ff *fieldFlow) fieldOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok || !ff.audited[fv] {
		return nil
	}
	return fv
}

// markChain marks every selector in the chain rooted at sel as handled.
func (ff *fieldFlow) markChain(sel *ast.SelectorExpr) {
	if sel == nil {
		return
	}
	ff.handled[sel] = true
	markInner(sel, ff.handled)
}

// markInner marks the interior selectors of a chain.
func markInner(sel *ast.SelectorExpr, handled map[ast.Node]bool) {
	for {
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return
		}
		handled[inner] = true
		sel = inner
	}
}

// record appends one classified use.
func (ff *fieldFlow) record(fv *types.Var, kind int, pos token.Pos) {
	ff.uses = append(ff.uses, fieldUse{field: fv, kind: kind, pos: pos})
}

// allSame reports whether every field in fields is fv.
func allSame(fields []*types.Var, fv *types.Var) bool {
	for _, f := range fields {
		if f != fv {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Generalized interprocedural field-flow engine.
//
// Where fieldFlow above classifies accesses file by file for the
// struct-hygiene checks, the flowEngine computes *transitive closures*:
// starting from a set of seed functions it walks the static call graph
// (plain calls plus functions and methods referenced as values) and
// accumulates, with leaf-field attribution, every struct field the
// closure can write and every struct field whose value it can read.
// Whole-struct writes (`*u = uop{}`, `c.chk = checkpoint{...}`) expand
// to every field of the struct, recursively through nested structs and
// pointers; reads through embedded promotions credit each field along
// the selection path. flushreset, ffsound and skipset all build on it:
// flushreset diffs two write closures, ffsound diffs a write closure
// against a read closure, skipset diffs two write closures against a
// declared field set.

// flowSite records where a closure first observed an access to a field.
type flowSite struct {
	// fn is the rendered name of the function the access occurred in.
	fn string
	// pos is the position of the access.
	pos token.Pos
}

// flowSet is a transitive field-access closure: each accessed field
// mapped to the first site the closure walk observed.
type flowSet map[*types.Var]flowSite

// flowFacts caches one function's local field-flow: leaf-attributed
// writes, reads, and the module functions its body can transfer control
// to (including method values — see funcIndex.referencedFuncs).
type flowFacts struct {
	writes  []fieldUse
	reads   []fieldUse
	callees []*funcInfo
}

// flowEngine computes transitive per-function field write and read sets
// over a module's static call graph.
type flowEngine struct {
	fi    *funcIndex
	facts map[*funcInfo]*flowFacts
}

func newFlowEngine(fi *funcIndex) *flowEngine {
	return &flowEngine{fi: fi, facts: map[*funcInfo]*flowFacts{}}
}

// closure walks the call graph from seeds in BFS order and returns the
// union of every reachable function's write and read sets, each field
// attributed to the first function observed accessing it, plus the
// visited functions themselves (seeds first, then discovery order).
func (fe *flowEngine) closure(seeds []*funcInfo) (writes, reads flowSet, funcs []*funcInfo) {
	writes, reads = flowSet{}, flowSet{}
	visited := map[*funcInfo]bool{}
	queue := append([]*funcInfo(nil), seeds...)
	for _, s := range seeds {
		visited[s] = true
	}
	for len(queue) > 0 {
		info := queue[0]
		queue = queue[1:]
		funcs = append(funcs, info)
		ft := fe.facts[info]
		if ft == nil {
			ft = computeFlowFacts(fe.fi, info)
			fe.facts[info] = ft
		}
		name := funcName(nil, info.fn)
		for _, u := range ft.writes {
			if _, ok := writes[u.field]; !ok {
				writes[u.field] = flowSite{fn: name, pos: u.pos}
			}
		}
		for _, u := range ft.reads {
			if _, ok := reads[u.field]; !ok {
				reads[u.field] = flowSite{fn: name, pos: u.pos}
			}
		}
		for _, callee := range ft.callees {
			if !visited[callee] {
				visited[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return writes, reads, funcs
}

// writeClosure is closure returning only the write set.
func (fe *flowEngine) writeClosure(seeds []*funcInfo) flowSet {
	w, _, _ := fe.closure(seeds)
	return w
}

// computeFlowFacts scans one function body and classifies every struct
// field access: assignment and inc/dec targets resolve to their leaf
// field (with whole-struct expansion), everything else that selects a
// field is a read, crediting each field along the selection path so
// embedded promotions count their intermediates.
func computeFlowFacts(fi *funcIndex, info *funcInfo) *flowFacts {
	p, fd := info.pkg, info.decl
	ft := &flowFacts{}
	// writeLeaves marks the selector node carrying a write target's leaf
	// field, so the read pass does not also classify it as a read.
	writeLeaves := map[ast.Node]bool{}

	recordWrite := func(lhs ast.Expr) {
		fields, leaf := flowWriteTarget(p, lhs)
		for _, fv := range fields {
			ft.writes = append(ft.writes, fieldUse{field: fv, kind: accWrite, pos: lhs.Pos()})
		}
		if leaf != nil {
			writeLeaves[leaf] = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // new locals; selector targets cannot appear
			}
			for _, lhs := range n.Lhs {
				recordWrite(lhs)
				if n.Tok != token.ASSIGN {
					// Op-assigns (+=, -=, ...) read the old value too.
					if fv, _ := flowLeafField(p, lhs); fv != nil {
						ft.reads = append(ft.reads, fieldUse{field: fv, kind: accRead, pos: lhs.Pos()})
					}
				}
			}
		case *ast.IncDecStmt:
			recordWrite(n.X)
			if fv, _ := flowLeafField(p, n.X); fv != nil {
				ft.reads = append(ft.reads, fieldUse{field: fv, kind: accRead, pos: n.X.Pos()})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || writeLeaves[sel] {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		for _, fv := range selectionFields(s) {
			ft.reads = append(ft.reads, fieldUse{field: fv, kind: accRead, pos: sel.Pos()})
		}
		return true
	})

	ft.callees = fi.referencedFuncs(info)
	return ft
}

// flowWriteTarget resolves one assignment target to the struct fields it
// writes — the leaf field of the selector chain, expanded to every field
// of the struct when the write replaces a whole struct value — plus the
// selector node carrying the leaf (nil when the target is no field at
// all: a plain local or global variable).
func flowWriteTarget(p *Package, lhs ast.Expr) ([]*types.Var, *ast.SelectorExpr) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X // element write reaches the container field
		case *ast.StarExpr:
			// *ptr = v replaces the whole pointee.
			if tv, ok := p.Info.Types[e.X]; ok {
				if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
					return structFields(ptr.Elem(), nil, nil), nil
				}
			}
			return nil, nil
		case *ast.SelectorExpr:
			s := p.Info.Selections[e]
			if s == nil || s.Kind() != types.FieldVal {
				return nil, nil
			}
			fv, ok := s.Obj().(*types.Var)
			if !ok {
				return nil, nil
			}
			return structFields(fv.Type(), nil, []*types.Var{fv}), e
		default:
			return nil, nil
		}
	}
}

// flowLeafField resolves lhs to the leaf field it accesses, without
// whole-struct expansion, or nil.
func flowLeafField(p *Package, lhs ast.Expr) (*types.Var, *ast.SelectorExpr) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			s := p.Info.Selections[e]
			if s == nil || s.Kind() != types.FieldVal {
				return nil, nil
			}
			if fv, ok := s.Obj().(*types.Var); ok {
				return fv, e
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// seedFuncs collects, in deterministic source order, every module
// function whose name is in names, along with the set of packages the
// seeds were found in. Names absent from the module are simply not
// seeds.
func seedFuncs(m *Module, fi *funcIndex, names map[string]bool) ([]*funcInfo, map[*Package]bool) {
	var seeds []*funcInfo
	pkgs := map[*Package]bool{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !names[fd.Name.Name] {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if info := fi.lookup(fn); info != nil {
					seeds = append(seeds, info)
					pkgs[p] = true
				}
			}
		}
	}
	return seeds, pkgs
}

// auditedFields returns every field of every named struct declared in
// one of the given packages, sorted by file and offset (so a directive
// trailing one field is claimed by it before the next field looks
// upward), plus each field's "pkg.Type" owner for diagnostics.
func auditedFields(m *Module, pkgs map[*Package]bool) ([]*types.Var, map[*types.Var]string) {
	owner := map[*types.Var]string{}
	var fields []*types.Var
	for _, p := range m.Pkgs {
		if !pkgs[p] {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || m.isTestPos(tn.Pos()) {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				fields = append(fields, fv)
				owner[fv] = p.Types.Name() + "." + name
			}
		}
	}
	sort.Slice(fields, func(i, j int) bool {
		pi, pj := m.Fset.Position(fields[i].Pos()), m.Fset.Position(fields[j].Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return fields, owner
}

// selectionFields returns every struct field along a field selection's
// path, outermost first: for `x.F` promoted through embedded E it yields
// [E, F], so reads through embeddings credit their intermediates.
func selectionFields(s *types.Selection) []*types.Var {
	t := s.Recv()
	var out []*types.Var
	for _, idx := range s.Index() {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			break
		}
		fv := st.Field(idx)
		out = append(out, fv)
		t = fv.Type()
	}
	return out
}
