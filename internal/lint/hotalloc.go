package lint

// The hotalloc analyzer enforces the zero-steady-state-allocation
// contract of the per-cycle simulation loop: any garbage created per
// cycle turns the "10x the hot loop" throughput work into a GC
// benchmark. Functions carry //rarlint:hot on their declaration; the
// analyzer closes the set over the static call graph (like purity) and
// rejects every construct that heap-allocates on each execution:
//
//   - make, new, map and slice composite literals, &T{...}
//   - append whose result is not assigned back to its own source slice
//     (a self-append reuses capacity once the warmup has grown it; any
//     other append builds a fresh backing array), and self-appends to a
//     function-local slice declared empty (no capacity to reuse — it
//     allocates on every call)
//   - function literals (closure headers escape)
//   - non-constant string concatenation, []byte/string conversions
//   - boxing a non-pointer concrete value into an interface
//   - storing the address of a local into non-local state (forces the
//     local to the heap)
//   - calls that cannot be proven allocation-free: function values,
//     interface methods, and externals outside a small whitelist
//     (math, math/bits, sync/atomic)
//
// Module functions are followed transitively. An audited cold path —
// warmup growth, error exits, opt-in diagnostics — is cut out of the
// closure with //rarlint:allow hotalloc <reason> on the call line: the
// callee is not followed and no finding is reported there. Such barrier
// allows are marked used directly (they suppress traversal, not a
// diagnostic), so they never go stale. Non-call findings (literals,
// closures, concats) are ordinary diagnostics and interact with allow
// directives the usual way.
//
// hotalloc skips _test.go files: tests allocate freely.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotExternalPkgs whitelists external packages whose functions do not
// allocate.
var hotExternalPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allocFacts caches the per-function analysis: allocation sites and the
// module callees to follow (barrier-allowed call sites excluded).
type allocFacts struct {
	ops     []impureOp
	callees []*funcInfo
}

func hotalloc(m *Module) []Diagnostic {
	fi := buildFuncIndex(m)

	var roots []*funcInfo
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				funcLine := m.Fset.Position(fd.Pos()).Line
				first := funcLine - 1
				if fd.Doc != nil {
					first = m.Fset.Position(fd.Doc.Pos()).Line
				}
				if !m.hotAt(m.fileName(f), first, funcLine) {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if info := fi.lookup(fn); info != nil {
					roots = append(roots, info)
				}
			}
		}
	}

	var diags []Diagnostic
	facts := map[*funcInfo]*allocFacts{}
	reported := map[impureOp]bool{}
	for _, root := range roots {
		rootName := funcName(root.pkg, root.fn)
		visited := map[*funcInfo]bool{root: true}
		queue := []*funcInfo{root}
		for len(queue) > 0 {
			info := queue[0]
			queue = queue[1:]
			ft := facts[info]
			if ft == nil {
				ft = computeAllocFacts(m, fi, info)
				facts[info] = ft
			}
			for _, op := range ft.ops {
				if reported[op] {
					continue
				}
				reported[op] = true
				msg := fmt.Sprintf("//rarlint:hot function %s %s", rootName, op.what)
				if info != root {
					msg = fmt.Sprintf("function %s %s, reachable from //rarlint:hot %s",
						funcName(info.pkg, info.fn), op.what, rootName)
				}
				diags = append(diags, Diagnostic{
					Pos: m.Fset.Position(op.pos), Check: "hotalloc", Message: msg,
				})
			}
			for _, callee := range ft.callees {
				if !visited[callee] {
					visited[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}

	diags = append(diags, unattachedDirectives(m, verbHot, "hotalloc", m.hots,
		func(d *hotDecl) bool { return d.used })...)
	return diags
}

// computeAllocFacts scans one function body for allocating constructs
// and the module callees to follow.
func computeAllocFacts(m *Module, fi *funcIndex, info *funcInfo) *allocFacts {
	p, fd := info.pkg, info.decl
	filename := m.Fset.Position(fd.Pos()).Filename
	ft := &allocFacts{}
	alloc := func(pos token.Pos, format string, args ...any) {
		ft.ops = append(ft.ops, impureOp{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	calleeSeen := map[*funcInfo]bool{}

	// Local slices declared with no initializer have nil backing storage:
	// even a self-append to them allocates on every call.
	emptyLocals := map[*types.Var]bool{}
	// Appends claimed by a self-assignment check below; any append seen
	// outside that shape allocates a fresh backing array.
	handledAppend := map[*ast.CallExpr]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
						emptyLocals[v] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAllocAssign(p, fd, n, emptyLocals, handledAppend, alloc)
		case *ast.CompositeLit:
			switch p.Info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				alloc(n.Pos(), "allocates a map literal")
			case *types.Slice:
				alloc(n.Pos(), "allocates a slice literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					alloc(n.Pos(), "heap-allocates %s", types.ExprString(n))
				}
			}
		case *ast.FuncLit:
			alloc(n.Pos(), "creates a closure")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := p.Info.Types[n]; ok && tv.Value == nil && isStringType(tv.Type) {
					alloc(n.Pos(), "concatenates strings")
				}
			}
		case *ast.CallExpr:
			classifyAllocCall(m, fi, info, filename, n, handledAppend, alloc, calleeSeen, &ft.callees)
		}
		return true
	})
	return ft
}

// checkAllocAssign handles the assignment-shaped rules: self-append
// recognition, interface boxing, and address-of-local escapes.
func checkAllocAssign(p *Package, fd *ast.FuncDecl, n *ast.AssignStmt,
	emptyLocals map[*types.Var]bool, handledAppend map[*ast.CallExpr]bool,
	alloc func(token.Pos, string, ...any)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		lhs := n.Lhs[i]
		if call := appendCall(p, rhs); call != nil {
			handledAppend[call] = true
			if len(call.Args) == 0 {
				continue
			}
			src := ast.Unparen(call.Args[0])
			for {
				if se, ok := src.(*ast.SliceExpr); ok {
					src = ast.Unparen(se.X)
					continue
				}
				break
			}
			if types.ExprString(ast.Unparen(lhs)) != types.ExprString(src) {
				alloc(call.Pos(), "append result assigned to %s, not back to %s (allocates a fresh backing array)",
					types.ExprString(lhs), types.ExprString(src))
				continue
			}
			if id, ok := src.(*ast.Ident); ok {
				if v, ok := identVar(p, id); ok && emptyLocals[v] {
					alloc(call.Pos(), "appends to %s, a local slice declared empty (allocates every call)", id.Name)
				}
			}
			continue
		}
		// Boxing: a concrete non-pointer value stored into an interface
		// allocates the interface data word.
		ltv, lok := p.Info.Types[lhs]
		rtv, rok := p.Info.Types[rhs]
		if lok && rok && n.Tok == token.ASSIGN && ltv.Type != nil && rtv.Type != nil {
			if _, isIface := ltv.Type.Underlying().(*types.Interface); isIface &&
				rtv.Value == nil && !rtv.IsNil() && boxAllocates(rtv.Type) {
				alloc(rhs.Pos(), "boxes %s into interface %s", types.ExprString(rhs), ltv.Type)
			}
		}
		// Escape: storing &local into non-local state forces the local to
		// the heap, re-allocating it on every call.
		if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok {
				if v, ok := identVar(p, id); ok &&
					v.Pos() >= fd.Pos() && v.Pos() <= fd.End() && !localWritable(p, fd, lhs) {
					alloc(ue.Pos(), "stores &%s into %s, forcing the local to the heap",
						id.Name, types.ExprString(lhs))
				}
			}
		}
	}
}

// classifyAllocCall decides what a call means for allocation freedom.
func classifyAllocCall(m *Module, fi *funcIndex, info *funcInfo, filename string,
	call *ast.CallExpr, handledAppend map[*ast.CallExpr]bool,
	alloc func(token.Pos, string, ...any), seen map[*funcInfo]bool, callees *[]*funcInfo) {
	p := info.pkg

	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		checkAllocConversion(p, call, tv.Type, alloc)
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "min", "max", "copy", "delete", "clear", "recover",
				"real", "imag", "complex":
				// Allocation-free builtins.
			case "make":
				alloc(call.Pos(), "allocates with make")
			case "new":
				alloc(call.Pos(), "allocates with new")
			case "append":
				if !handledAppend[call] {
					alloc(call.Pos(), "append outside a self-assignment (allocates a fresh backing array)")
				}
			case "panic":
				// panic(constant) reuses the constant; anything else boxes
				// its argument on the way out. Unwinding paths are usually
				// fatal anyway, but the boxing happens before the throw.
				if len(call.Args) == 1 {
					if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value == nil && !tv.IsNil() && boxAllocates(tv.Type) {
						alloc(call.Pos(), "panic boxes its non-constant argument")
					}
				}
			default: // print, println, unsafe helpers, ...
				alloc(call.Pos(), "calls builtin %s", id.Name)
			}
			return
		}
	}

	fn := calleeFunc(p, call)
	if fn == nil {
		alloc(call.Pos(), "calls %s, a function value (cannot prove allocation-free)",
			types.ExprString(call.Fun))
		return
	}
	if callee := fi.lookup(fn); callee != nil {
		line := m.Fset.Position(call.Pos()).Line
		if m.allowBarrier("hotalloc", filename, line) {
			return // audited cold path: cut out of the hot closure
		}
		if !seen[callee] {
			seen[callee] = true
			*callees = append(*callees, callee)
		}
		return
	}
	name := funcName(p, fn)
	if fn.Pkg() != nil {
		if hotExternalPkgs[fn.Pkg().Path()] {
			return
		}
		alloc(call.Pos(), "calls %s, which is outside the hotalloc whitelist", name)
		return
	}
	alloc(call.Pos(), "calls interface method %s (cannot prove allocation-free)", name)
}

// checkAllocConversion flags conversions that copy their operand into a
// fresh allocation: string <-> byte/rune slice, and conversion to an
// interface type (boxing).
func checkAllocConversion(p *Package, call *ast.CallExpr, dst types.Type,
	alloc func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	_, dstSlice := dst.Underlying().(*types.Slice)
	_, srcSlice := src.Underlying().(*types.Slice)
	switch {
	case isStringType(dst) && srcSlice, dstSlice && isStringType(src):
		alloc(call.Pos(), "allocating conversion %s", types.ExprString(call))
	default:
		if _, isIface := dst.Underlying().(*types.Interface); isIface &&
			tv.Value == nil && !tv.IsNil() && boxAllocates(src) {
			alloc(call.Pos(), "boxes %s into interface %s", types.ExprString(call.Args[0]), dst)
		}
	}
}

// appendCall returns e as a call to the append builtin, or nil.
func appendCall(p *Package, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return call
}

// isStringType reports whether t is a string type.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxAllocates reports whether storing a value of concrete type t into
// an interface allocates: pointer-shaped types (pointers, channels,
// maps, funcs, unsafe pointers) fit in the interface data word directly.
func boxAllocates(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer
	}
	return true
}

// allowBarrier marks a hotalloc allow on the call line (or the line
// above) as used and reports whether one exists. Barrier allows gate
// call-graph traversal rather than suppressing a diagnostic, so they are
// consumed here to keep staleness accounting honest.
func (m *Module) allowBarrier(check, filename string, line int) bool {
	hit := false
	for _, l := range []int{line, line - 1} {
		for _, a := range m.allows[filename][l] {
			if a.check == check && a.reason != "" {
				a.used = true
				hit = true
			}
		}
	}
	return hit
}
