package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// Each directory under testdata/ is a tiny Go module exercising one
// analyzer (when the directory is named after a check) or the full
// analyzer set plus directive validation (otherwise). Expectations are
// //lintwant comments in the corpus sources:
//
//	expr() //lintwant check            this line must be flagged
//	//lintwant check                   (standalone) the NEXT line must be
//
// The first field after //lintwant is a comma-separated list of check
// names; anything after it is commentary. The corpus must produce
// exactly the expected (file, line, check) set — a missing finding is a
// false negative, an extra one a false positive, and both fail.
func TestCorpora(t *testing.T) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			mod, err := LoadModule(dir)
			if err != nil {
				t.Fatalf("LoadModule: %v", err)
			}
			var checks []string
			if knownCheck(name) {
				checks = []string{name}
			}
			diags, err := Run(mod, checks)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}

			want, err := collectWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			for _, d := range diags {
				rel, err := filepath.Rel(dir, d.Pos.Filename)
				if err != nil {
					t.Fatal(err)
				}
				got[wantKey(rel, d.Pos.Line, d.Check)] = true
			}
			for k := range want {
				if !got[k] {
					t.Errorf("missing finding: %s", k)
				}
			}
			for _, d := range diags {
				rel, _ := filepath.Rel(dir, d.Pos.Filename)
				if !want[wantKey(rel, d.Pos.Line, d.Check)] {
					t.Errorf("unexpected finding: %s:%d: %s: %s", rel, d.Pos.Line, d.Check, d.Message)
				}
			}
		})
	}
	if ran == 0 {
		t.Fatal("no corpora found under testdata/")
	}
}

func wantKey(rel string, line int, check string) string {
	return fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), line, check)
}

// collectWants parses the //lintwant expectations out of every non-test
// Go file under root (mirroring the loader's file set).
func collectWants(root string) (map[string]bool, error) {
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !goSource(d.Name()) {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			// gofmt's doc-comment formatter rewrites a standalone
			// //lintwant in doc position to "// lintwant", so both
			// spellings are accepted.
			idx, tag := -1, ""
			for _, t := range []string{"//lintwant", "// lintwant"} {
				if j := strings.Index(line, t); j >= 0 {
					idx, tag = j, t
					break
				}
			}
			if idx < 0 {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(line[idx:], tag))
			if len(fields) == 0 {
				return fmt.Errorf("%s:%d: //lintwant without a check name", rel, i+1)
			}
			target := i + 1 // a trailing comment expects its own line
			if strings.TrimSpace(line[:idx]) == "" {
				// A standalone comment expects the next line, skipping
				// the bare "//" separators gofmt inserts between doc
				// text and //rarlint: directives.
				target = i + 2
				for target-1 < len(lines) && strings.TrimSpace(lines[target-1]) == "//" {
					target++
				}
			}
			for _, c := range strings.Split(fields[0], ",") {
				want[wantKey(rel, target, c)] = true
			}
		}
		return nil
	})
	return want, err
}

// TestCorpusCoverage pins the corpus inventory: every analyzer has a
// dedicated want/nowant corpus, and each corpus actually expects
// findings of its check (an empty corpus would vacuously pass).
func TestCorpusCoverage(t *testing.T) {
	for _, a := range Analyzers() {
		dir, err := filepath.Abs(filepath.Join("testdata", a.Name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(dir); err != nil {
			t.Errorf("analyzer %s has no corpus: %v", a.Name, err)
			continue
		}
		want, err := collectWants(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for k := range want {
			if strings.HasSuffix(k, ":"+a.Name) {
				n++
			}
		}
		if n == 0 {
			t.Errorf("corpus %s expects no %s findings", a.Name, a.Name)
		}
	}
}

// TestConcurrencyChecksSkipTestFiles pins the -tests contract of
// lockcheck and hotalloc: test files join the type-checked module but
// contribute no findings, no annotations and no hot roots — the corpus
// test files hold lock-free accesses and allocations on purpose, and
// the finding set must be identical with and without them loaded.
func TestConcurrencyChecksSkipTestFiles(t *testing.T) {
	for _, name := range []string{"lockcheck", "hotalloc"} {
		t.Run(name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			render := func(mod *Module) []string {
				diags, err := Run(mod, []string{name})
				if err != nil {
					t.Fatal(err)
				}
				var out []string
				for _, d := range diags {
					out = append(out, d.String())
				}
				return out
			}
			plain, err := LoadModule(dir)
			if err != nil {
				t.Fatal(err)
			}
			withTests, err := LoadModuleWithTests(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, want := render(withTests), render(plain)
			if !slices.Equal(got, want) {
				t.Errorf("-tests changed the %s finding set:\nwith tests: %v\nwithout:    %v", name, got, want)
			}
		})
	}
}
