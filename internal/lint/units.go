package lint

// The units analyzer runs a dimensional analysis over the simulator's
// statistics, energy and metrics code. Struct fields and functions carry
//
//	//rarlint:unit <expr>
//
// where <expr> is a product/quotient of the base units cycles, insts,
// uops, bits, joules and bytes (plus the derived bitcycles = bits*cycles
// and the dimensionless 1): "cycles", "insts/cycles", "joules/uops".
// Dimensions propagate bottom-up through expressions — selectors of
// annotated fields, calls of annotated functions, conversions,
// multiplication and division — and three rules are enforced:
//
//   - add/sub/compare/% of two *known* mismatched dimensions is an error
//     (cycles + insts is never meaningful);
//   - assigning (including += / -=) a known dimension into a field of a
//     different known dimension is an error;
//   - a function annotated with a unit must return that dimension — this
//     is how the declared ratio sinks (IPC = insts/cycles, EPI =
//     joules/insts, MPKI = uops/insts, AVF = 1) are proven to divide the
//     right numerators by the right denominators.
//
// Untyped constants are unit-polymorphic (cycles+1 is fine) and plain
// local variables are unknown (no intraprocedural inference): the
// analysis only speaks where it can be certain, so every finding is a
// genuine dimensional clash.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// dim is a dimension vector: base-unit name -> exponent.
type dim map[string]int

// baseUnits is the directive vocabulary.
var baseUnits = map[string]dim{
	"cycles":    {"cycles": 1},
	"insts":     {"insts": 1},
	"uops":      {"uops": 1},
	"bits":      {"bits": 1},
	"joules":    {"joules": 1},
	"bytes":     {"bytes": 1},
	"bitcycles": {"bits": 1, "cycles": 1},
}

// parseUnit parses a unit expression: "1", a base unit, or a
// numerator/denominator pair of '*'-separated base units.
func parseUnit(s string) (dim, error) {
	if s == "" {
		return nil, fmt.Errorf("missing unit expression")
	}
	parts := strings.Split(s, "/")
	if len(parts) > 2 {
		return nil, fmt.Errorf("unit %q has more than one '/'", s)
	}
	d := dim{}
	for i, part := range parts {
		sign := 1
		if i == 1 {
			sign = -1
		}
		for _, tok := range strings.Split(part, "*") {
			if tok == "1" {
				continue
			}
			base, ok := baseUnits[tok]
			if !ok {
				return nil, fmt.Errorf("unknown unit %q (have cycles, insts, uops, bits, bitcycles, joules, bytes, 1)", tok)
			}
			for k, v := range base {
				d[k] += sign * v
			}
		}
	}
	return normDim(d), nil
}

// normDim drops zero exponents.
func normDim(d dim) dim {
	for k, v := range d {
		if v == 0 {
			delete(d, k)
		}
	}
	return d
}

// renderDim renders a dimension vector canonically ("1", "cycles",
// "insts/cycles", "bits*cycles").
func renderDim(d dim) string {
	var num, den []string
	var keys []string
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		part := k
		if e := d[k]; e > 1 || e < -1 {
			part = fmt.Sprintf("%s^%d", k, max(e, -e))
		}
		if d[k] > 0 {
			num = append(num, part)
		} else {
			den = append(den, part)
		}
	}
	out := strings.Join(num, "*")
	if out == "" {
		out = "1"
	}
	if len(den) > 0 {
		out += "/" + strings.Join(den, "*")
	}
	return out
}

// sameDim reports dimension equality.
func sameDim(a, b dim) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// dimval is the inferred dimension of an expression: known (with d),
// poly (an untyped-constant-like value that matches any dimension), or
// unknown (the analysis cannot tell; never reported).
type dimval struct {
	known bool
	poly  bool
	d     dim
}

var (
	unknownVal = dimval{}
	polyVal    = dimval{poly: true}
)

func knownVal(d dim) dimval { return dimval{known: true, d: d} }

// unitsAnalysis holds the annotation maps for one run.
type unitsAnalysis struct {
	m          *Module
	fieldUnits map[*types.Var]dim
	funcUnits  map[*types.Func]dim
}

func unitsCheck(m *Module) []Diagnostic {
	a := &unitsAnalysis{
		m:          m,
		fieldUnits: map[*types.Var]dim{},
		funcUnits:  map[*types.Func]dim{},
	}
	a.collect()

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: m.Fset.Position(pos), Check: "units",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.isTestFile(f) {
				continue
			}
			a.checkFile(p, f, report)
		}
	}
	diags = append(diags, unattachedDirectives(m, verbUnit, "units", m.units,
		func(d *unitDecl) bool { return d.used })...)
	return diags
}

// collect walks every non-test file matching unit directives to struct
// fields (same line, else the line above) and to function declarations
// (func line or doc comment). Fields are matched in line order so a
// directive trailing one field is never mistaken for a standalone
// directive above the next.
func (a *unitsAnalysis) collect() {
	for _, p := range a.m.Pkgs {
		for _, f := range p.Files {
			if a.m.isTestFile(f) {
				continue
			}
			filename := a.m.fileName(f)
			type fieldAt struct {
				line int
				vars []*types.Var
			}
			var fields []fieldAt
			var funcs []*ast.FuncDecl
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					funcs = append(funcs, n)
					return true
				case *ast.StructType:
					for _, fld := range n.Fields.List {
						var vars []*types.Var
						for _, name := range fld.Names {
							if v, ok := p.Info.Defs[name].(*types.Var); ok {
								vars = append(vars, v)
							}
						}
						if len(vars) > 0 {
							fields = append(fields, fieldAt{line: a.m.Fset.Position(fld.Pos()).Line, vars: vars})
						}
					}
				}
				return true
			})
			sort.Slice(fields, func(i, j int) bool { return fields[i].line < fields[j].line })
			for _, fld := range fields {
				if d, ok := a.takeUnit(filename, fld.line, fld.line); ok {
					for _, v := range fld.vars {
						a.fieldUnits[v] = d
					}
				} else if d, ok := a.takeUnit(filename, fld.line-1, fld.line-1); ok {
					for _, v := range fld.vars {
						a.fieldUnits[v] = d
					}
				}
			}
			for _, fd := range funcs {
				funcLine := a.m.Fset.Position(fd.Pos()).Line
				first := funcLine - 1
				if fd.Doc != nil {
					first = a.m.Fset.Position(fd.Doc.Pos()).Line
				}
				if d, ok := a.takeUnit(filename, first, funcLine); ok {
					if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						a.funcUnits[fn] = d
					}
				}
			}
		}
	}
}

// takeUnit consumes the first unused, parseable unit directive in the
// line range. Unparseable directives are consumed too — they are
// already lint findings — but yield no annotation.
func (a *unitsAnalysis) takeUnit(filename string, firstLine, lastLine int) (dim, bool) {
	byLine := a.m.units[filename]
	for line := firstLine; line <= lastLine; line++ {
		for _, u := range byLine[line] {
			if u.used {
				continue
			}
			u.used = true
			if d, err := parseUnit(u.expr); err == nil {
				return d, true
			}
			return nil, false
		}
	}
	return nil, false
}

// checkFile enforces the three unit rules over one file.
func (a *unitsAnalysis) checkFile(p *Package, f *ast.File, report func(token.Pos, string, ...any)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			a.checkBinary(p, n, report)
		case *ast.AssignStmt:
			a.checkAssign(p, n, report)
		case *ast.FuncDecl:
			a.checkReturns(p, n, report)
		}
		return true
	})
}

// checkBinary rejects same-dimension operators over mismatched known
// dimensions.
func (a *unitsAnalysis) checkBinary(p *Package, e *ast.BinaryExpr, report func(token.Pos, string, ...any)) {
	var verb string
	switch e.Op {
	case token.ADD:
		verb = "adds %s to %s"
	case token.SUB:
		verb = "subtracts %s from %s"
	case token.REM:
		verb = "mixes %s and %s in %%"
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		verb = "compares %s with %s"
	default:
		return
	}
	l, r := a.dimOf(p, e.X), a.dimOf(p, e.Y)
	if l.known && r.known && !sameDim(l.d, r.d) {
		report(e.OpPos, verb+" (operands of mismatched units)", renderDim(l.d), renderDim(r.d))
	}
}

// checkAssign rejects assigning a known dimension into a target of a
// different known dimension.
func (a *unitsAnalysis) checkAssign(p *Package, n *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if n.Tok == token.DEFINE || len(n.Lhs) != len(n.Rhs) {
		return
	}
	switch n.Tok {
	case token.ASSIGN, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	for i, lhs := range n.Lhs {
		l, r := a.dimOf(p, lhs), a.dimOf(p, n.Rhs[i])
		if l.known && r.known && !sameDim(l.d, r.d) {
			report(lhs.Pos(), "assigns a %s value into %s, declared //rarlint:unit %s",
				renderDim(r.d), types.ExprString(lhs), renderDim(l.d))
		}
	}
}

// checkReturns enforces a function's declared unit on its return
// statements (single-result functions only; nested function literals
// are out of scope).
func (a *unitsAnalysis) checkReturns(p *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok || fd.Body == nil {
		return
	}
	declared, ok := a.funcUnits[fn]
	if !ok {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if got := a.dimOf(p, ret.Results[0]); got.known && !sameDim(got.d, declared) {
			report(ret.Pos(), "returns %s but %s declares //rarlint:unit %s",
				renderDim(got.d), fd.Name.Name, renderDim(declared))
		}
		return true
	})
}

// dimOf infers the dimension of an expression bottom-up.
func (a *unitsAnalysis) dimOf(p *Package, e ast.Expr) dimval {
	e = ast.Unparen(e)
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return polyVal // constants are unit-polymorphic
	}
	switch ex := e.(type) {
	case *ast.UnaryExpr:
		if ex.Op == token.ADD || ex.Op == token.SUB || ex.Op == token.XOR {
			return a.dimOf(p, ex.X)
		}
	case *ast.SelectorExpr:
		if s := p.Info.Selections[ex]; s != nil && s.Kind() == types.FieldVal {
			if fv, ok := s.Obj().(*types.Var); ok {
				if d, ok := a.fieldUnits[fv]; ok {
					return knownVal(d)
				}
			}
		}
	case *ast.IndexExpr:
		// An element of an annotated array/slice/map field carries the
		// field's unit.
		return a.dimOf(p, ex.X)
	case *ast.CallExpr:
		if tv, ok := p.Info.Types[ex.Fun]; ok && tv.IsType() && len(ex.Args) == 1 {
			return a.dimOf(p, ex.Args[0]) // conversions preserve dimension
		}
		if fn := calleeFunc(p, ex); fn != nil {
			if d, ok := a.funcUnits[fn]; ok {
				return knownVal(d)
			}
		}
	case *ast.BinaryExpr:
		l, r := a.dimOf(p, ex.X), a.dimOf(p, ex.Y)
		switch ex.Op {
		case token.MUL:
			return combineDims(l, r, 1)
		case token.QUO:
			return combineDims(l, r, -1)
		case token.ADD, token.SUB, token.REM, token.AND, token.OR, token.XOR, token.AND_NOT:
			// Same-dimension operators: any known side names the result
			// (mismatches are reported separately by checkBinary).
			if l.known {
				return l
			}
			if r.known {
				return r
			}
			if l.poly && r.poly {
				return polyVal
			}
		case token.SHL, token.SHR:
			return l // a shift scales the value, not the dimension
		}
	}
	return unknownVal
}

// combineDims multiplies (sign=1) or divides (sign=-1) two inferred
// dimensions. Poly operands act as dimensionless scale factors.
func combineDims(l, r dimval, sign int) dimval {
	if l.poly && r.poly {
		return polyVal
	}
	scale := func(d dim, s int) dim {
		out := dim{}
		for k, v := range d {
			out[k] = s * v
		}
		return out
	}
	switch {
	case l.known && r.known:
		out := scale(l.d, 1)
		for k, v := range r.d {
			out[k] += sign * v
		}
		return knownVal(normDim(out))
	case l.known && r.poly:
		return l
	case l.poly && r.known:
		return knownVal(normDim(scale(r.d, sign)))
	}
	return unknownVal
}
