// Command tool shows the scope boundary: errdiscipline covers only
// internal/ packages, so a discarded error here is not flagged.
package main

import "errors"

func fallible() error { return errors.New("boom") }

func main() {
	fallible()
}
