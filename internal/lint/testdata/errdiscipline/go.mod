module errcorpus

go 1.24
