// Test files are outside rarlint's scope: the loader never parses
// _test.go, so this discarded error produces no finding.
package work

import "testing"

func TestScope(t *testing.T) {
	fallible()
}
