// Package work exercises the discarded-error check: internal packages
// must handle, explicitly discard, or allow-annotate every error
// return.
package work

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func multi() (int, error) { return 0, errors.New("boom") }

func clean() {}

// Discarded returns are flagged in all three statement forms.
func discards(f *os.File) {
	fallible()      //lintwant errdiscipline
	multi()         //lintwant errdiscipline
	defer f.Close() //lintwant errdiscipline
	go fallible()   //lintwant errdiscipline
}

// Handled, explicitly discarded, and error-free calls are clean: an
// explicit `_ =` is a visible, greppable decision.
func handled() error {
	if err := fallible(); err != nil {
		return err
	}
	clean()
	_ = fallible()
	_, err := multi()
	return err
}

// fmt printers and never-failing writers (strings.Builder,
// bytes.Buffer, the hash.Hash family) are exempt.
func exempt(buf *bytes.Buffer) string {
	var b strings.Builder
	fmt.Fprintln(&b, "hello")
	b.WriteString("x")
	buf.WriteString("y")
	crc32.NewIEEE().Write([]byte("z"))
	fmt.Println(b.Len(), buf.Len())
	return b.String()
}

// Best-effort cleanup with the reason on record is suppressed.
func cleanup(name string) {
	os.Remove(name) //rarlint:allow errdiscipline best-effort corpus cleanup
}
