// Package sim exercises the hotalloc analyzer: functions rooted with
// //rarlint:hot must be allocation-free, transitively over the module
// call graph, with //rarlint:allow hotalloc call-site barriers cutting
// audited cold paths out of the closure.
package sim

import (
	"math"
	"strconv"
	"sync/atomic"
)

// gen is the corpus's interface dependency: interface methods cannot be
// proven allocation-free.
type gen interface {
	next() int
}

type core struct {
	buf   []int
	log   []int
	out   any
	ptr   *int
	fn    func() int
	src   gen
	ticks atomic.Uint64
	name  string
}

// The per-cycle root: every construct below allocates.
//
//rarlint:hot
func (c *core) step(v int, label string) {
	scratch := make([]int, 4) //lintwant hotalloc
	_ = scratch
	idx := map[string]int{} //lintwant hotalloc
	_ = idx
	pair := []int{v, v} //lintwant hotalloc
	_ = pair
	n := new(int) //lintwant hotalloc
	_ = n
	h := &core{} //lintwant hotalloc
	_ = h
	c.fn = func() int { return v } //lintwant hotalloc
	c.name = label + "!"           //lintwant hotalloc
	c.buf = append(c.log, v)       //lintwant hotalloc
	c.out = v                      //lintwant hotalloc
	c.ptr = &v                     //lintwant hotalloc
	_ = []byte(label)              //lintwant hotalloc
}

// panic(constant) reuses the constant, but a non-constant argument is
// boxed on the way out.
//
//rarlint:hot
func mustPositive(v int) {
	if v < 0 {
		panic(v) //lintwant hotalloc
	}
}

// tick pulls record and sum into the closure: record's growing append
// is reported against this root, sum keeps the closure quiet.
//
//rarlint:hot
func tick(c *core, v int) int {
	c.log = append(c.log, v)
	record(c, v)
	return sum(c.log)
}

func record(c *core, v int) {
	c.buf = append(c.buf, v) // clean: a self-append reuses capacity
	c.log = append(c.buf, v) //lintwant hotalloc
}

func sum(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}

// A self-append to a local slice declared empty has no capacity to
// reuse; a re-slice of persistent state does.
//
//rarlint:hot
func collect(c *core) int {
	var tmp []int
	tmp = append(tmp, 1) //lintwant hotalloc
	pool := c.buf[:0]
	pool = append(pool, 2) // clean: reuses c.buf's backing array
	return tmp[0] + pool[0]
}

// math and sync/atomic are whitelisted externals; strconv is not.
//
//rarlint:hot
func mix(c *core, v float64) float64 {
	c.ticks.Add(1)
	r := math.Sqrt(v)
	s := strconv.Itoa(int(v)) //lintwant hotalloc
	_ = s
	return r
}

// Function values and interface methods cannot be proven
// allocation-free.
//
//rarlint:hot
func advance(c *core) int {
	a := c.fn()       //lintwant hotalloc
	b := c.src.next() //lintwant hotalloc
	return a + b
}

// A barrier allow on the call line cuts grow out of the closure: its
// allocations are audited cold-path growth, not per-cycle garbage.
//
//rarlint:hot
func warm(c *core) {
	//rarlint:allow hotalloc one-time warmup growth, audited
	grow(c)
	c.buf = append(c.buf, 0)
}

func grow(c *core) {
	c.buf = make([]int, 0, 1024)
}

// An ordinary allow suppresses a non-call finding the usual way.
//
//rarlint:hot
func seed(c *core) {
	c.log = append(c.log, len(c.buf))
	c.out = len(c.buf) //rarlint:allow hotalloc out is written once per run and read cold
}

// The exported skip pattern (a contract-checked fast-forward wrapper): a
// hot function whose contract-violation panic — message formatting and
// all — is waived on the line above the panic. It can only fire on a run
// that is already dead, so its allocations are not per-cycle garbage;
// the healthy path must still be clean.
//
//rarlint:hot
func skipTo(c *core, target int) {
	if target < len(c.buf) {
		//rarlint:allow hotalloc contract-violation panic, never taken on a healthy run
		panic("skipTo: " + strconv.Itoa(target))
	}
	c.buf = append(c.buf, target)
}

// A hot directive must sit on a function declaration.
// lintwant hotalloc
//
//rarlint:hot
var budget = 64

// coldSetup is reachable from no hot root: it may allocate freely.
func coldSetup() *core {
	return &core{buf: make([]int, 0, budget)}
}
