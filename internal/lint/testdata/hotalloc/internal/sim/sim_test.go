package sim

import "testing"

// Tests allocate freely: hotalloc ignores _test.go files even when the
// -tests loader includes them, so nothing here is a finding or a root.
func TestStepRuns(t *testing.T) {
	c := coldSetup()
	c.src = fakeGen{}
	c.step(1, "x")
	spare := make([]int, 8)
	if c.out == nil || len(spare) != 8 {
		t.Fatal("step")
	}
}

type fakeGen struct{}

func (fakeGen) next() int { return 1 }
