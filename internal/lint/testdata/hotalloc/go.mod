module hotalloccorpus

go 1.24
