module puritycorpus

go 1.24
