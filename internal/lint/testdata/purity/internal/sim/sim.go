// Package sim exercises the purity analyzer: //rarlint:pure closes over
// the static call graph, so a mutation any number of helpers deep is
// caught, while writes to locals and value-receiver copies pass.
package sim

import (
	"fmt"
	"math"
	"strconv"
)

type counter struct {
	n     uint64
	hist  []uint64
	index map[string]int
}

// Clean: value-receiver writes are copies, whitelisted externals are
// value-pure.
//
//rarlint:pure
func (c counter) score() float64 {
	c.n++ // value receiver: mutates a copy
	return math.Sqrt(float64(c.n))
}

// Clean: reads through a pointer and Sprintf/Itoa are fine.
//
//rarlint:pure
func label(c *counter) string {
	return fmt.Sprintf("n=%s", strconv.FormatUint(c.n, 10))
}

// Direct mutation through a pointer receiver.
//
//rarlint:pure
func (c *counter) bump() uint64 {
	c.n++ //lintwant purity
	return c.n
}

// Transitive: the mutation sits three calls below the annotation and
// depth2/depth3 carry no directive of their own.
//
//rarlint:pure
func depth1(c *counter) uint64 { return depth2(c) }

func depth2(c *counter) uint64 { return depth3(c) }

func depth3(c *counter) uint64 {
	c.n = 0 //lintwant purity
	return c.n
}

// Appending to a slice that is visible to the caller.
//
//rarlint:pure
func record(c *counter) int {
	c.hist = append(c.hist, c.n) //lintwant purity
	return len(c.hist)
}

// Map storage is shared no matter how it is reached.
//
//rarlint:pure
func index(c *counter, k string) int {
	c.index[k] = 1 //lintwant purity
	return c.index[k]
}

//rarlint:pure
func drop(c *counter, k string) bool {
	delete(c.index, k) //lintwant purity
	return len(c.index) == 0
}

type reader interface{ value() uint64 }

// An interface method's dynamic target is unknowable statically.
//
//rarlint:pure
func viaInterface(r reader) uint64 {
	return r.value() //lintwant purity
}

// So is a function value's.
//
//rarlint:pure
func viaFuncValue(f func() uint64) uint64 {
	return f() //lintwant purity
}

//rarlint:pure
func notify(ch chan uint64) {
	ch <- 1 //lintwant purity
}

// An external call outside the whitelist.
//
//rarlint:pure
func shout(c *counter) {
	fmt.Println(c.n) //lintwant purity
}

// Suppression interplay: an audited waiver silences one finding.
//
//rarlint:pure
func waived(c *counter) uint64 {
	c.n++ //rarlint:allow purity corpus example of an audited waiver
	return c.n
}

// The exported next-event pattern (a pure scan behind a pure exported
// wrapper): the closure follows the whole helper chain across the export
// boundary and finds only reads, so the wrapper stays clean.
//
//rarlint:pure
func NextEvent(c *counter) uint64 { return clampNext(c, scanNext(c)) }

func scanNext(c *counter) uint64 {
	t := c.n + 1
	for _, v := range c.hist {
		if v < t {
			t = v
		}
	}
	return t
}

func clampNext(c *counter, target uint64) uint64 {
	if len(c.index) > 0 && target > c.n {
		return c.n
	}
	return target
}

// The same wrapper shape is still closed over: a mutation hidden two
// helpers below the exported annotation is caught.
//
//rarlint:pure
func NextEventDirty(c *counter) uint64 { return scanAndBump(c) }

func scanAndBump(c *counter) uint64 {
	c.n++ //lintwant purity
	return c.n
}

type grid struct{ cells [4]uint64 }

// Clean: an array write through a value receiver stays in the copy.
//
//rarlint:pure
func (g grid) sum() uint64 {
	var t uint64
	for _, v := range g.cells {
		t += v
	}
	g.cells[0] = t
	return t
}

// A floating directive governs nothing and is reported.
func plain() uint64 {
	x := uint64(1)
	//lintwant purity
	//rarlint:pure
	x++
	return x
}
