module lockcheckcorpus

go 1.24
