package sim

import "testing"

// Tests exercise the engine single-threaded and under the race
// detector: lockcheck ignores _test.go files even when the -tests
// loader includes them, so these lock-free accesses are not findings.
func TestRacyByDesign(t *testing.T) {
	e := newEngine("t")
	e.count++
	e.cells["k"] = e.count
	if e.racyCount() != 2 {
		t.Fatal("count")
	}
}
