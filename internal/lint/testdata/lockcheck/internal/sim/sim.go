// Package sim exercises the lockcheck analyzer: //rarlint:guardedby
// fields may only be touched while their mutex is statically held,
// //rarlint:locked methods carry the lock as an entry contract, and a
// struct with a mutex field must declare a synchronization story for
// every other field.
package sim

import (
	"sync"
	"sync/atomic"
)

// engine is fully annotated: a mutex-guarded map and counter, an atomic
// hit counter, and an init-only name.
type engine struct {
	mu    sync.Mutex
	cells map[string]int //rarlint:guardedby mu
	count int            //rarlint:guardedby mu
	hits  atomic.Uint64  //rarlint:guardedby atomic
	name  string         //rarlint:guardedby init
}

// Clean: lock, touch, unlock.
func (e *engine) inc(key string) {
	e.mu.Lock()
	e.cells[key]++
	e.count++
	e.mu.Unlock()
}

// Clean: the deferred unlock both covers the accesses and excuses the
// return-while-held.
func (e *engine) get(key string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cells[key]
}

// Clean: atomic and init-only fields need no lock.
func (e *engine) observe() string {
	e.hits.Add(1)
	return e.name
}

// Reading a guarded field without the lock.
func (e *engine) racyCount() int {
	return e.count //lintwant lockcheck
}

// Writing through an index expression without the lock.
func (e *engine) racyCell(key string) {
	e.cells[key] = 0 //lintwant lockcheck
}

// Acquiring a held write lock is a guaranteed deadlock.
func (e *engine) deadlock() {
	e.mu.Lock()
	e.mu.Lock() //lintwant lockcheck
	e.count++
	e.mu.Unlock()
	e.mu.Unlock()
}

// Returning with the mutex held and no deferred unlock.
func (e *engine) leak() int {
	e.mu.Lock()
	n := e.count
	return n //lintwant lockcheck
}

// A lock taken on only one branch does not survive the merge: held
// states intersect.
func (e *engine) halfLocked(c bool) int {
	if c {
		e.mu.Lock()
	}
	n := e.count //lintwant lockcheck
	if c {
		e.mu.Unlock()
	}
	return n
}

// A function literal starts with an empty lock state — it may run on
// another goroutine, or after the caller has unlocked.
func (e *engine) snapshotFn() func() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return func() int {
		return e.count //lintwant lockcheck
	}
}

// Constructor idiom: a local freshly built from a composite literal is
// not shared yet, so its fields need no lock.
func newEngine(name string) *engine {
	e := &engine{cells: map[string]int{}}
	e.count = 1
	e.name = name
	return e
}

// evict's contract is "called with e.mu held": the body is analyzed
// with the lock held at entry, and every call site is checked.
//
//rarlint:locked mu
func (e *engine) evict() {
	for len(e.cells) > 4 {
		for k := range e.cells {
			delete(e.cells, k)
			break
		}
	}
	e.count = len(e.cells)
}

// Clean: the caller holds the lock across the contract call.
func (e *engine) trim() {
	e.mu.Lock()
	e.evict()
	e.mu.Unlock()
}

// Calling a locked method without holding the mutex.
func (e *engine) trimRacy() {
	e.evict() //lintwant lockcheck
}

// A well-formed allow waives one audited access.
func (e *engine) audited() int {
	return e.count //rarlint:allow lockcheck single-threaded audit hook, caller stops the world first
}

// ring is read-mostly: an RLock satisfies the guard.
type ring struct {
	mu  sync.RWMutex
	buf []int //rarlint:guardedby mu
}

// Clean: reads under the read lock.
func (r *ring) sum() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, v := range r.buf {
		n += v
	}
	return n
}

// A write without any lock at all.
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) //lintwant lockcheck
}

// The guardedby argument must name a sibling mutex field.
type misnamed struct {
	mu sync.Mutex
	//rarlint:guardedby lock
	n int //lintwant lockcheck
}

// guardedby atomic demands a sync/atomic type.
type fakeAtomic struct {
	mu sync.Mutex
	//rarlint:guardedby atomic
	n int //lintwant lockcheck
}

// Completeness: a mutex-guarded struct must annotate every field.
type undeclared struct {
	mu sync.Mutex
	n  int //lintwant lockcheck
}

// A locked contract on a receiver without the named mutex.
type plain struct {
	n int
}

//rarlint:locked mu
func (p *plain) bump() { //lintwant lockcheck
	p.n++
}

// A guardedby directive attached to nothing.
// lintwant lockcheck
//
//rarlint:guardedby mu
var orphan int

// A locked directive on a plain function (no receiver) attaches to
// nothing either.
// lintwant lockcheck
//
//rarlint:locked mu
func freestanding() int { return orphan }

// An argument-less guardedby is malformed (a "lint" finding) and guards
// nothing, so completeness still wants a story for the field.
type halfBaked struct {
	mu sync.Mutex
	//lintwant lint
	//rarlint:guardedby
	n int //lintwant lockcheck
}

// An argument-less locked is malformed and yields no contract; the
// method body is checked like any other.
type store struct {
	mu sync.Mutex
	n  int //rarlint:guardedby mu
}

// lintwant lint
//
//rarlint:locked
func (s *store) compact() {
	s.mu.Lock()
	s.n = 0
	s.mu.Unlock()
}
