// Package sim exercises the skipset analyzer: the bulk-advance write
// set must exactly equal the declared //rarlint:nscaled set, and the
// per-cycle blocked path may touch nothing the bulk path does not — a
// counter added to the tick but forgotten in bulkAdvance is the silent
// byte-divergence the check exists to catch.
package sim

type machine struct {
	// cycle is bulk-written and declared: clean.
	cycle uint64 //rarlint:nscaled the skip target itself: bulkAdvance jumps it to the bound
	// stalls is advanced by both paths and declared: clean.
	stalls uint64 //rarlint:nscaled blocked-cycle counter: advances by n, matching n ticks
	// ffSkipped is bulk-written but never declared n-scalable.
	ffSkipped uint64 //lintwant skipset
	// retired is advanced per-cycle but forgotten in bulkAdvance: the
	// silent-divergence case.
	retired uint64 //lintwant skipset
	// drift is declared but the bulk path no longer writes it: stale.
	//lintwant skipset
	drift uint64 //rarlint:nscaled wrongly declared: bulkAdvance does not write this field
	// deep is bulk-written through a helper, undeclared.
	deep uint64 //lintwant skipset
	// bad is bulk-written and its declaration has no reason: the
	// malformed directive is a lint finding and declares nothing, so the
	// field's own finding stands too.
	//lintwant lint
	//rarlint:nscaled
	bad uint64 //lintwant skipset
}

func (m *machine) tickBlocked() {
	m.stalls++
	m.retired++
}

func (m *machine) bulkAdvance(n uint64) {
	m.cycle += n
	m.stalls += n
	m.ffSkipped += n
	m.bad += n
	m.bury(n)
}

func (m *machine) bury(n uint64) { m.deep += n }

func (m *machine) skipTo(target uint64) {
	//lintwant skipset
	//rarlint:nscaled floating declaration attached to no audited field
	m.bulkAdvance(target - m.cycle)
}
