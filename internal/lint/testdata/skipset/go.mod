module skipsetcorpus

go 1.24
