module supcorpus

go 1.24
