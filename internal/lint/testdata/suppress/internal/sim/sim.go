// Package sim exercises directive validation: a malformed
// rarlint:allow is a finding of the "lint" pseudo-check, suppresses
// nothing, and cannot itself be suppressed — a waiver can never
// silently rot.
package sim

import "time"

// A well-formed directive on the flagged line suppresses the finding.
func suppressed() time.Time {
	return time.Now() //rarlint:allow determinism corpus host-side example
}

// A well-formed directive on the line directly above also reaches it.
func lineAbove() time.Time {
	//rarlint:allow determinism corpus host-side example
	return time.Now()
}

// A typo in the check name: the directive is flagged and the finding
// survives.
func typo() time.Time {
	//lintwant lint
	//rarlint:allow determinsm typo never suppresses
	return time.Now() //lintwant determinism
}

// A directive without a reason is rejected and suppresses nothing.
func reasonless() time.Time {
	//lintwant lint
	//rarlint:allow determinism
	return time.Now() //lintwant determinism
}

// A directive without even a check name.
func nameless() time.Time {
	//lintwant lint
	//rarlint:allow
	return time.Now() //lintwant determinism
}

// A valid directive two lines above the finding does not reach it:
// suppression is same-line or line-above only — and an allow that
// suppresses nothing is itself reported as stale.
func farAway() time.Time {
	//lintwant lint
	//rarlint:allow determinism valid reason but too far from the call

	return time.Now() //lintwant determinism
}
