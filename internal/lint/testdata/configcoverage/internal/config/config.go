// Package config declares the corpus sweep knobs. Every field of every
// struct here must be read somewhere in the module: a knob the
// simulator never consumes turns a sweep over it into a fiction.
package config

// Core is a swept configuration struct.
type Core struct {
	Width int // read directly by sim.Model: covered
	ROB   int // read through a helper: covered
	// Ignored is written by Default but consumed nowhere — constructor
	// assignments are production, not consumption.
	Ignored int //lintwant configcoverage
	// Waived is declared ahead of its consumer; the directive keeps it
	// with the reason on record.
	//rarlint:allow configcoverage corpus example of a declared-ahead knob
	Waived int
	// Mem nests further knobs: reading cfg.Mem.L1 covers both the
	// interior Mem component and the L1 leaf (countInner).
	Mem MemConfig
}

// MemConfig is the nested knob group.
type MemConfig struct {
	L1      int
	Unused2 int //lintwant configcoverage
}

// Default returns the baseline. Composite-literal keys do not cover a
// field: they produce values, they never consume the knob.
func Default() Core {
	return Core{Width: 4, ROB: 192, Ignored: 7, Waived: 1, Mem: MemConfig{L1: 32, Unused2: 9}}
}
