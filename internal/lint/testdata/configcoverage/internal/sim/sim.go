// Package sim is the consumer: a knob is covered once any read path in
// the module touches it.
package sim

import "confcorpus/internal/config"

// Model reads Width directly and L1 through the selector chain.
func Model(cfg config.Core) int {
	return cfg.Width + cfg.Mem.L1 + rob(cfg)
}

// rob covers ROB through a helper.
func rob(cfg config.Core) int { return cfg.ROB }
