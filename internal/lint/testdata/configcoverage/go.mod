module confcorpus

go 1.24
