module statcorpus

go 1.24
