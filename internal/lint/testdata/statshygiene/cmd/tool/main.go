// Command tool shows the audit boundary: a Stats type outside
// internal/ is not audited, whatever its fields do.
package main

import (
	"fmt"

	"statcorpus/internal/core"
	"statcorpus/internal/report"
)

// Stats here is NOT audited: only internal/ declarations are.
type Stats struct {
	NeverTouched int
}

func main() {
	var st core.Stats
	st.Tick()
	fmt.Println(report.Line(st))
}
