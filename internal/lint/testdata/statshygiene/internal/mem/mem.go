// Package mem declares a nested audited Stats struct, mirroring the
// simulator's memory-hierarchy counters.
package mem

// Stats is audited: Hits is produced by core.Tick and consumed by
// report.Line; Misses is produced but nothing ever reports it.
type Stats struct {
	Hits   uint64
	Misses uint64 //lintwant statshygiene (written, never read)
}
