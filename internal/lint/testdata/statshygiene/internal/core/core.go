// Package core declares the audited Stats struct and its producer side.
package core

import "statcorpus/internal/mem"

// Stats mirrors the simulator's statistics struct: rarlint audits every
// field of a named Stats/Metrics type declared under internal/.
type Stats struct {
	Cycles    uint64 // written by Tick, read by report.Line: clean
	Committed uint64 // written and read: clean
	Dead      uint64 //lintwant statshygiene (written by Tick, never read)
	Ghost     uint64 //lintwant statshygiene (read by report.Line, never written)
	Unused    uint64 //lintwant statshygiene (never touched outside plumbing)
	// Waived is observability-only; the directive keeps it with the
	// reason on record.
	//rarlint:allow statshygiene corpus example of an audited waiver
	Waived uint64
	// Mem nests another audited struct: reading st.Mem.Hits consumes
	// Hits (the outermost selected field), not Mem itself.
	Mem mem.Stats
}

// Tick writes the counters the simulated core maintains.
func (s *Stats) Tick() {
	s.Cycles++
	s.Committed += 4
	s.Dead++
	s.Waived++
	s.Mem.Hits++
	s.Mem.Misses++
}

// Reset overwrites the nested struct wholesale: a write of Mem.
func (s *Stats) Reset() {
	s.Mem = mem.Stats{}
}

// merge is counter-wise plumbing (warmup subtraction): it counts as
// neither a read nor a write, so touching every field here cannot hide
// a dead or ghost statistic.
func (s *Stats) merge(w Stats) {
	s.Cycles -= w.Cycles
	s.Committed -= w.Committed
	s.Dead -= w.Dead
	s.Ghost -= w.Ghost
	s.Unused -= w.Unused
	s.Waived -= w.Waived
}
