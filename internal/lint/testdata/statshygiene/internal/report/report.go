// Package report is the consumer side: a field is live only if a
// reporter or derived metric reads it.
package report

import (
	"statcorpus/internal/core"
	"statcorpus/internal/mem"
)

// Stats is an alias, not a declaration: aliases are not re-audited.
type Stats = core.Stats

// Line renders the live columns.
func Line(st core.Stats) []uint64 {
	return []uint64{st.Cycles, st.Committed, st.Ghost, st.Mem.Hits}
}

// Grab reads the nested struct wholesale: a read of Mem itself.
func Grab(st core.Stats) mem.Stats {
	return st.Mem
}
