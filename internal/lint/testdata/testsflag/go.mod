module testsflagcorpus

go 1.24
