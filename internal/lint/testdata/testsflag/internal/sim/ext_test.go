package sim_test

import (
	"math/rand"
	"testing"

	"testsflagcorpus/internal/sim"
)

// TestRand uses the global math/rand source: an external-test-package
// file the -tests loader must type-check as sim_test and surface.
func TestRand(t *testing.T) {
	if sim.Tick(rand.Int63()) == 0 {
		t.Fatal("tick")
	}
}
