package sim

import (
	"testing"
	"time"
)

// TestTick reads the wall clock: an in-package test file the -tests
// loader must surface.
func TestTick(t *testing.T) {
	if Tick(time.Now().Unix()) == 0 {
		t.Fatal("tick")
	}
}
