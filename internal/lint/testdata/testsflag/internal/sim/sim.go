// Package sim is clean on its own; the determinism violations live in
// the test files beside it, which only the -tests loader sees. The
// corpus harness loads this module without tests and must find nothing;
// the -tests CLI test loads it with tests and must find exactly the
// violations in sim_test.go and ext_test.go.
package sim

// Tick is trivially deterministic.
func Tick(n int64) int64 { return n + 1 }
