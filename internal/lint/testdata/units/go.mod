module unitscorpus

go 1.24
