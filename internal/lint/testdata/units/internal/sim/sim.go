// Package sim exercises the units analyzer: fields and functions carry
// //rarlint:unit dimensions, constants are unit-polymorphic, locals are
// unknown, and only a provable clash between two known dimensions is a
// finding.
package sim

type stats struct {
	cycles   uint64 //rarlint:unit cycles
	insts    uint64 //rarlint:unit insts
	bits     uint64 //rarlint:unit bits
	abc      uint64 //rarlint:unit bitcycles
	deadline uint64 //rarlint:unit cycles
}

// Adding cycles to instructions is never meaningful.
func bad(s stats) uint64 {
	return s.cycles + s.insts //lintwant units
}

// Assigning across dimensions is rejected too.
func badAssign(s *stats) {
	s.deadline = s.insts //lintwant units
}

func badCompare(s stats) bool {
	return s.cycles < s.bits //lintwant units
}

// cpiNotIpc declares the IPC ratio but divides the wrong way around.
//
//rarlint:unit insts/cycles
func cpiNotIpc(s stats) float64 {
	return float64(s.cycles) / float64(s.insts) //lintwant units
}

// Clean: the declared ratio checks out, and the early constant return
// is polymorphic.
//
//rarlint:unit insts/cycles
func ipc(s stats) float64 {
	if s.cycles == 0 {
		return 0
	}
	return float64(s.insts) / float64(s.cycles)
}

// Clean: bits*cycles is exactly the derived bitcycles dimension, and
// constants adapt to any unit.
func accumulate(s *stats) uint64 {
	s.abc += s.bits * s.cycles
	return s.cycles + 1
}

// Clean: a plain local is unknown, and unknown never clashes.
func elapsed(s stats, start uint64) uint64 {
	return s.cycles - start
}

// An unknown base unit in a directive is a lint finding; the field
// stays unannotated rather than guessing.
type odometer struct {
	//lintwant lint
	//rarlint:unit furlongs
	x uint64
}

// A floating unit directive annotates nothing and is reported.
func helper(o odometer) uint64 {
	v := o.x
	//lintwant units
	//rarlint:unit cycles
	v++
	return v
}
