// Package report is outside the determinism scope (not one of the
// cache-feeding packages): map iteration is not checked here, but
// wall-clock reads still are — the call checks are module-wide.
package report

import (
	"fmt"
	"time"
)

// Render iterates a map into output: NOT flagged outside the scoped
// packages — rendering order here cannot poison the simulation cache.
func Render(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Stamp reads the wall clock: flagged module-wide.
func Stamp() time.Time {
	return time.Now() //lintwant determinism
}
