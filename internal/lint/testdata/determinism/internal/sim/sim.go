// Package sim is a determinism-corpus stand-in for the cache-feeding
// simulator packages: both the call checks and the map-iteration check
// apply here.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Wall-clock reads are flagged module-wide.
func wallClock() time.Duration {
	start := time.Now() //lintwant determinism
	//lintwant determinism
	return time.Since(start)
}

// A well-formed allow directive suppresses the finding in place.
func hostTiming() time.Duration {
	t0 := time.Now()      //rarlint:allow determinism host-side timing for the corpus
	return time.Since(t0) //rarlint:allow determinism host-side timing for the corpus
}

// The package-level math/rand source is process-wide: flagged.
func globalRand() int {
	return rand.Intn(6) //lintwant determinism
}

// An explicitly seeded local generator is the demanded replacement:
// the rand.New / rand.NewSource constructors are deterministic.
func localRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Appending map keys in iteration order into a result that is never
// normalised leaks the order: flagged.
func accumulate(m map[string]int) []string {
	var out []string
	for k := range m { //lintwant determinism
		out = append(out, k)
	}
	return out
}

// Scalar accumulation is order-sensitive too (float addition is not
// associative; the analyzer does not type-split): flagged.
func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { //lintwant determinism
		sum += v
	}
	return sum
}

// Printing inside a map range leaks order straight into output: flagged.
func render(m map[string]int) {
	for k, v := range m { //lintwant determinism
		fmt.Println(k, v)
	}
}

// Writer sinks count as output even without fmt: flagged.
func build(m map[string]int) string {
	var b strings.Builder
	for k := range m { //lintwant determinism
		b.WriteString(k)
	}
	return b.String()
}

// The canonical fix — collect, sort, then iterate — is recognised: the
// collection loop's only escape is a self-append later sorted.
func sortedRender(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// Writes into another map are exempt: map storage is unordered anyway.
func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Loop-local state never escapes: clean.
func localOnly(m map[string]int) int {
	last := 0
	for _, v := range m {
		x := v * 2
		if x == 4 {
			return x
		}
	}
	return last
}
