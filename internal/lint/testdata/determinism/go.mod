module detcorpus

go 1.24
