module fieldflowcorpus

go 1.24
