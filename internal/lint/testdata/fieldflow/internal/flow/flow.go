// Package flow is the generalized field-flow engine's corpus:
// whole-struct writes, embedded promotions and method values, asserted
// directly by fieldflow_test.go rather than through any analyzer (so an
// ffsound or skipset regression localizes to the engine vs the check).
// It deliberately trips no analyzer: no seed function names, no
// directives, no expectations.
package flow

type inner struct {
	a uint64
	b uint64
}

type base struct {
	tick uint64
}

type outer struct {
	base
	in    inner
	ptr   *inner
	count uint64
}

// wholeStruct replaces struct values: writing o.in writes inner.a and
// inner.b too, and *o.ptr = ... writes every field of the pointee
// without writing the ptr field itself.
func (o *outer) wholeStruct() {
	o.in = inner{}
	*o.ptr = inner{a: 1}
}

// promoted reads tick through the embedded base: the read credits both
// the promotion path's intermediate (outer.base) and base.tick.
func (o *outer) promoted() uint64 {
	return o.tick
}

// methodValue escapes the static call graph: bump runs via a bound
// method value, which the conservative closure must still follow.
func (o *outer) methodValue() {
	f := o.bump
	f()
}

func (o *outer) bump() { o.count++ }

// reader reaches promoted only through a method value, so its read
// closure covers the promotion fields iff the engine follows values.
func reader(o *outer) uint64 {
	g := o.promoted
	return g()
}
