// Package sim exercises the flushreset analyzer: fields written on
// runahead paths (the writer closures) must be restored by some
// exit/flush closure, waived with //rarlint:survives, or reported — and
// a survives on a field that is in fact restored is itself stale.
package sim

type machine struct {
	// mode is written on entry and restored on exit: clean.
	mode int
	// specPC is runahead residue nothing restores.
	specPC uint64 //lintwant flushreset
	// count leaks by design and says so.
	count uint64 //rarlint:survives statistics counter: runahead activity is metered, not squashed
	// depth is written through a helper one call below the writer.
	depth int //lintwant flushreset
	// restored is runahead-written AND reset, so its waiver is stale.
	//lintwant flushreset
	restored uint64 //rarlint:survives wrongly waived: exitRunahead does restore this
}

type snapshot struct {
	pc  uint64
	rat [4]int16
}

func (m *machine) enterRunahead() {
	m.mode = 1
	m.specPC = 0x40
	m.count++
	m.bumpDepth()
	m.restored = 7
}

func (m *machine) bumpDepth() { m.depth++ }

func (m *machine) exitRunahead() {
	m.mode = 0
	m.restored = 0
}

// dispatchRunahead writes snapshot fields; doFlush restores them by
// replacing the whole struct value, which counts for every field.
func (m *machine) dispatchRunahead(s *snapshot) {
	s.pc = 1
	s.rat[0] = 2
}

func (m *machine) doFlush(s *snapshot) {
	*s = snapshot{}
}

// use keeps the corpus honest under vet-style checks. The survives
// directive in its body is attached to nothing audited, governs
// nothing, and is reported.
func use(m *machine, s *snapshot) uint64 {
	m.enterRunahead()
	//lintwant flushreset
	//rarlint:survives floating waiver attached to no audited field
	m.dispatchRunahead(s)
	m.exitRunahead()
	m.doFlush(s)
	return m.specPC + uint64(m.depth) + m.count + m.restored + s.pc
}
