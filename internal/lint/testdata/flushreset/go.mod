module flushcorpus

go 1.24
