module ffsoundcorpus

go 1.24
