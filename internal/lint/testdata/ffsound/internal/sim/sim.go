// Package sim exercises the ffsound analyzer: every field the stage
// closures write must be read by a next-event source (so a pending
// change always bounds the fast-forward skip) or carry a
// //rarlint:quiescent waiver — and a waiver on a field that is in fact
// covered (or never stage-written) is itself stale and reported.
package sim

type machine struct {
	// fillAt is stage-written and read by nextEventCycle: covered. This
	// is the pinned negative test — delete the fillAt read from
	// nextEventCycle below and ffsound must flag this line exactly the
	// way it flags retireAt.
	fillAt uint64
	// retireAt is stage-written but no next-event source reads it.
	retireAt uint64 //lintwant ffsound
	// commits is waived accounting.
	commits uint64 //rarlint:quiescent stat counter: aggregated post-run, never consulted by timing
	// deepWrite is written by a helper two calls below a stage.
	deepWrite uint64 //lintwant ffsound
	// covered is read by modeNextEvent and wrongly waived: stale.
	//lintwant ffsound
	covered uint64 //rarlint:quiescent wrongly waived: modeNextEvent reads this field
	// untouched is never stage-written and wrongly waived: stale.
	//lintwant ffsound
	untouched uint64 //rarlint:quiescent wrongly waived: no stage closure writes this field
	// bad is stage-written and its waiver has no reason: the malformed
	// directive is a lint finding and waives nothing, so the field's own
	// finding stands too.
	//lintwant lint
	//rarlint:quiescent
	bad uint64 //lintwant ffsound
	// mode is stage-written and read by modeNextEvent: covered.
	mode int
}

func (m *machine) fetchStage() {
	m.fillAt = 10
	m.retireAt = 20
	m.commits++
	m.bad = 1
	m.bury()
}

func (m *machine) modeStage() {
	m.mode = 1
	m.covered = 5
}

func (m *machine) bury() { m.deepWrite++ }

func (m *machine) nextEventCycle() uint64 {
	//lintwant ffsound
	//rarlint:quiescent floating waiver attached to no audited field
	if m.fillAt != 0 {
		return m.fillAt
	}
	return m.modeNextEvent()
}

func (m *machine) modeNextEvent() uint64 {
	if m.mode != 0 {
		return m.covered
	}
	return ^uint64(0)
}
