package lint

// The flushreset analyzer statically encodes the flush-at-exit un-ACE
// argument: RAR can mark runahead work reliability-free only because
// exitRunahead/doFlush squash every piece of microarchitectural state a
// runahead interval accumulated. The analyzer computes, over the static
// call graph,
//
//	W = fields written by the runahead-mode writer functions' closures,
//	R = fields written by the reset/flush functions' closures,
//
// and reports every field in W \ R at its declaration: state mutated
// during runahead that no exit path restores is exactly the residue the
// contract forbids. A field that legitimately outlives runahead exit
// (a statistics counter, a consumed-once checkpoint, a poison bit that
// the next allocation clears) carries //rarlint:survives <reason> on its
// declaration — and the analyzer keeps those honest too: a survives
// annotation on a field that is in fact restored (or never
// runahead-written) is itself a finding, so waivers cannot rot.
//
// Writer and reset functions are matched by name in any module package;
// writes are attributed to the leaf field of the assignment chain
// (`c.chk.rat = x` writes checkpoint.rat, not Core.chk), and assigning a
// whole struct value (`*u = uop{}`, `c.chk = checkpoint{...}`) counts as
// writing every audited field of that struct.

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// resetFuncNames are the reset-shaped functions whose closures define
// the restored set R. Names absent from a module are simply not seeds.
var resetFuncNames = map[string]bool{
	"exitRunahead":    true,
	"doFlush":         true,
	"discardRunahead": true,
	"abortRunahead":   true,
	"squashYounger":   true,
	"clearWrongPath":  true,
	"Reset":           true,
}

// runaheadWriterNames are the functions that only execute on
// runahead-mode paths; their closures define the written set W.
var runaheadWriterNames = map[string]bool{
	"enterRunahead":         true,
	"dispatchRunahead":      true,
	"dropRunahead":          true,
	"drainPRDQ":             true,
	"redirectRunahead":      true,
	"squashRunaheadYounger": true,
}

func flushReset(m *Module) []Diagnostic {
	fi := buildFuncIndex(m)

	// Seeds, in deterministic source order.
	var writers, resets []*funcInfo
	seedPkgs := map[*Package]bool{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w, r := runaheadWriterNames[fd.Name.Name], resetFuncNames[fd.Name.Name]
				if !w && !r {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				info := fi.lookup(fn)
				if info == nil {
					continue
				}
				seedPkgs[p] = true
				if w {
					writers = append(writers, info)
				}
				if r {
					resets = append(resets, info)
				}
			}
		}
	}
	if len(writers) == 0 || len(resets) == 0 {
		return nil // not a runahead module: nothing to diff
	}

	// Audited fields: every field of every named struct declared in a
	// package holding a seed function, in declaration order.
	audited := map[*types.Var]bool{}
	owner := map[*types.Var]string{}
	var fields []*types.Var
	for _, p := range m.Pkgs {
		if !seedPkgs[p] {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || m.isTestPos(tn.Pos()) {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				audited[fv] = true
				fields = append(fields, fv)
				owner[fv] = p.Types.Name() + "." + name
			}
		}
	}

	written := closureWrites(fi, writers, audited)
	restored := closureWrites(fi, resets, audited)

	// Fields in file/line order, so a directive trailing one field is
	// claimed by it and never mistaken for a standalone directive above
	// the next (multi-name declarations on one line share a directive).
	sort.Slice(fields, func(i, j int) bool {
		pi, pj := m.Fset.Position(fields[i].Pos()), m.Fset.Position(fields[j].Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	attached := map[*survives]int{}
	claim := func(filename string, fieldLine int) *survives {
		for _, l := range []int{fieldLine, fieldLine - 1} {
			for _, sv := range m.survives[filename][l] {
				if sv.reason == "" {
					continue // malformed, already a lint finding
				}
				if at, ok := attached[sv]; ok && at != fieldLine {
					continue
				}
				attached[sv] = fieldLine
				return sv
			}
		}
		return nil
	}

	var diags []Diagnostic
	for _, fv := range fields {
		pos := m.Fset.Position(fv.Pos())
		sv := claim(pos.Filename, pos.Line)
		byFn, leaks := written[fv]
		if _, ok := restored[fv]; ok {
			leaks = false
		}
		switch {
		case leaks && sv != nil:
			sv.used = true
		case leaks:
			diags = append(diags, Diagnostic{Pos: pos, Check: "flushreset",
				Message: fmt.Sprintf("field %s.%s is written on runahead paths (by %s) but not restored by any exit/flush function: runahead residue would survive exit — restore it or annotate //rarlint:survives <reason>",
					owner[fv], fv.Name(), byFn)})
		case sv != nil:
			diags = append(diags, Diagnostic{Pos: pos, Check: "flushreset",
				Message: fmt.Sprintf("stale rarlint:survives on %s.%s: the field is restored at runahead exit (or never written on runahead paths); remove the annotation",
					owner[fv], fv.Name())})
		}
	}

	// survives directives attached to nothing audited govern nothing.
	diags = append(diags, unattachedSurvives(m, attached)...)
	return diags
}

// closureWrites returns the audited fields written anywhere in the
// closures of the seed functions, each mapped to the name of the first
// function observed writing it (for the diagnostic).
func closureWrites(fi *funcIndex, seeds []*funcInfo, audited map[*types.Var]bool) map[*types.Var]string {
	writes := map[*types.Var]string{}
	visited := map[*funcInfo]bool{}
	var visit func(info *funcInfo)
	visit = func(info *funcInfo) {
		if visited[info] {
			return
		}
		visited[info] = true
		name := funcName(nil, info.fn)
		record := func(fv *types.Var) {
			if audited[fv] {
				if _, ok := writes[fv]; !ok {
					writes[fv] = name
				}
			}
		}
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					for _, fv := range writtenFields(info.pkg, audited, lhs) {
						record(fv)
					}
				}
			case *ast.IncDecStmt:
				for _, fv := range writtenFields(info.pkg, audited, n.X) {
					record(fv)
				}
			}
			return true
		})
		for _, callee := range fi.callees(info) {
			visit(callee)
		}
	}
	for _, seed := range seeds {
		visit(seed)
	}
	return writes
}

// writtenFields resolves an assignment target to the audited fields it
// writes: the leaf field of the selector chain, expanded to all audited
// fields of a struct when the write replaces a whole struct value.
func writtenFields(p *Package, audited map[*types.Var]bool, lhs ast.Expr) []*types.Var {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X // element write reaches the container field
		case *ast.StarExpr:
			// *ptr = v replaces the whole pointee.
			if tv, ok := p.Info.Types[e.X]; ok {
				if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
					return structFields(ptr.Elem(), audited, nil)
				}
			}
			return nil
		case *ast.SelectorExpr:
			s := p.Info.Selections[e]
			if s == nil || s.Kind() != types.FieldVal {
				return nil
			}
			fv, ok := s.Obj().(*types.Var)
			if !ok {
				return nil
			}
			return structFields(fv.Type(), audited, []*types.Var{fv})
		default:
			return nil
		}
	}
}

// structFields appends every audited field of t (recursively, through
// struct and pointer-to-struct types) to out.
func structFields(t types.Type, audited map[*types.Var]bool, out []*types.Var) []*types.Var {
	var walk func(t types.Type)
	seen := map[types.Type]bool{}
	walk = func(t types.Type) {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if seen[t] {
			return
		}
		seen[t] = true
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if !audited[fv] {
				continue
			}
			out = append(out, fv)
			walk(fv.Type())
		}
	}
	walk(t)
	return out
}

// unattachedSurvives reports survives directives that no audited field
// declaration claimed.
func unattachedSurvives(m *Module, attached map[*survives]int) []Diagnostic {
	var diags []Diagnostic
	for filename, byLine := range m.survives {
		var lines []int
		for line := range byLine {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, sv := range byLine[line] {
				if _, ok := attached[sv]; ok || sv.reason == "" {
					continue // malformed ones are already lint findings
				}
				diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "flushreset",
					Message: "rarlint:survives is not attached to an audited struct field declaration"})
			}
		}
	}
	return diags
}
