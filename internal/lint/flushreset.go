package lint

// The flushreset analyzer statically encodes the flush-at-exit un-ACE
// argument: RAR can mark runahead work reliability-free only because
// exitRunahead/doFlush squash every piece of microarchitectural state a
// runahead interval accumulated. The analyzer computes, over the static
// call graph,
//
//	W = fields written by the runahead-mode writer functions' closures,
//	R = fields written by the reset/flush functions' closures,
//
// and reports every field in W \ R at its declaration: state mutated
// during runahead that no exit path restores is exactly the residue the
// contract forbids. A field that legitimately outlives runahead exit
// (a statistics counter, a consumed-once checkpoint, a poison bit that
// the next allocation clears) carries //rarlint:survives <reason> on its
// declaration — and the analyzer keeps those honest too: a survives
// annotation on a field that is in fact restored (or never
// runahead-written) is itself a finding, so waivers cannot rot.
//
// Writer and reset functions are matched by name in any module package;
// writes are attributed to the leaf field of the assignment chain
// (`c.chk.rat = x` writes checkpoint.rat, not Core.chk), and assigning a
// whole struct value (`*u = uop{}`, `c.chk = checkpoint{...}`) counts as
// writing every audited field of that struct.

import (
	"fmt"
	"go/types"
	"sort"
)

// resetFuncNames are the reset-shaped functions whose closures define
// the restored set R. Names absent from a module are simply not seeds.
var resetFuncNames = map[string]bool{
	"exitRunahead":    true,
	"doFlush":         true,
	"discardRunahead": true,
	"abortRunahead":   true,
	"squashYounger":   true,
	"clearWrongPath":  true,
	"Reset":           true,
}

// runaheadWriterNames are the functions that only execute on
// runahead-mode paths; their closures define the written set W.
var runaheadWriterNames = map[string]bool{
	"enterRunahead":         true,
	"dispatchRunahead":      true,
	"dropRunahead":          true,
	"drainPRDQ":             true,
	"redirectRunahead":      true,
	"squashRunaheadYounger": true,
}

func flushReset(m *Module) []Diagnostic {
	fi := buildFuncIndex(m)

	// Seeds, in deterministic source order.
	writers, writerPkgs := seedFuncs(m, fi, runaheadWriterNames)
	resets, resetPkgs := seedFuncs(m, fi, resetFuncNames)
	if len(writers) == 0 || len(resets) == 0 {
		return nil // not a runahead module: nothing to diff
	}
	seedPkgs := writerPkgs
	for p := range resetPkgs {
		seedPkgs[p] = true
	}

	// Audited fields: every field of every named struct declared in a
	// package holding a seed function, in file/line order so a directive
	// trailing one field is claimed by it and never mistaken for a
	// standalone directive above the next.
	fields, owner := auditedFields(m, seedPkgs)

	fe := newFlowEngine(fi)
	written := fe.writeClosure(writers)
	restored := fe.writeClosure(resets)

	// A survives directive trails its field or sits up to two lines above
	// it, so it can stack with a quiescent/nscaled/unit directive already
	// annotating the same declaration.
	attached := map[*survives]int{}
	claim := func(filename string, fieldLine int) *survives {
		for _, l := range []int{fieldLine, fieldLine - 1, fieldLine - 2} {
			for _, sv := range m.survives[filename][l] {
				if sv.reason == "" {
					continue // malformed, already a lint finding
				}
				if at, ok := attached[sv]; ok && at != fieldLine {
					continue
				}
				attached[sv] = fieldLine
				return sv
			}
		}
		return nil
	}

	var diags []Diagnostic
	for _, fv := range fields {
		pos := m.Fset.Position(fv.Pos())
		sv := claim(pos.Filename, pos.Line)
		site, leaks := written[fv]
		if _, ok := restored[fv]; ok {
			leaks = false
		}
		switch {
		case leaks && sv != nil:
			sv.used = true
		case leaks:
			diags = append(diags, Diagnostic{Pos: pos, Check: "flushreset",
				Message: fmt.Sprintf("field %s.%s is written on runahead paths (by %s) but not restored by any exit/flush function: runahead residue would survive exit — restore it or annotate //rarlint:survives <reason>",
					owner[fv], fv.Name(), site.fn)})
		case sv != nil:
			diags = append(diags, Diagnostic{Pos: pos, Check: "flushreset",
				Message: fmt.Sprintf("stale rarlint:survives on %s.%s: the field is restored at runahead exit (or never written on runahead paths); remove the annotation",
					owner[fv], fv.Name())})
		}
	}

	// survives directives attached to nothing audited govern nothing.
	diags = append(diags, unattachedSurvives(m, attached)...)
	return diags
}

// structFields appends every audited field of t (recursively, through
// struct and pointer-to-struct types) to out. A nil audited map means
// every field is in scope.
func structFields(t types.Type, audited map[*types.Var]bool, out []*types.Var) []*types.Var {
	var walk func(t types.Type)
	seen := map[types.Type]bool{}
	walk = func(t types.Type) {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if seen[t] {
			return
		}
		seen[t] = true
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if audited != nil && !audited[fv] {
				continue
			}
			out = append(out, fv)
			walk(fv.Type())
		}
	}
	walk(t)
	return out
}

// unattachedSurvives reports survives directives that no audited field
// declaration claimed.
func unattachedSurvives(m *Module, attached map[*survives]int) []Diagnostic {
	var diags []Diagnostic
	for filename, byLine := range m.survives {
		var lines []int
		for line := range byLine {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, sv := range byLine[line] {
				if _, ok := attached[sv]; ok || sv.reason == "" {
					continue // malformed ones are already lint findings
				}
				diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "flushreset",
					Message: "rarlint:survives is not attached to an audited struct field declaration"})
			}
		}
	}
	return diags
}
