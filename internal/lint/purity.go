package lint

// The purity analyzer proves the precondition of the stall fast-forward
// (DESIGN.md §7): nextEventCycle and everything it calls must be
// side-effect-free, or the A/B equivalence of skipping quiescent windows
// breaks. Functions carry //rarlint:pure on their declaration; the
// analyzer closes the set over the static call graph, so a mutation
// added three helpers deep is caught without re-annotating anything.
//
// Inside a pure closure the analyzer rejects every write whose target
// can outlive the call: assignments through pointers, struct fields
// reached through a pointer (including a pointer receiver), slice and
// map element writes, channel sends and closes, map deletes, appends to
// non-local slices, and calls to anything it cannot prove pure — an
// unannotated module function is followed, an external function must be
// on the small whitelist of value-pure standard-library functions, and a
// function value or interface method is rejected outright (its target
// is unknowable statically). Writes to locals — including parameters
// and value receivers, which are copies — are fine: purity here means
// "no observable effect", not "no computation".

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// pureExternalPkgs whitelists external packages every exported function
// of which is value-pure.
var pureExternalPkgs = map[string]bool{
	"math":      true,
	"math/bits": true,
	"strconv":   true,
}

// pureExternalFuncs whitelists individual value-pure external functions.
var pureExternalFuncs = map[string]bool{
	"errors.New":   true,
	"fmt.Sprint":   true,
	"fmt.Sprintf":  true,
	"fmt.Sprintln": true,
}

// impureOp is one rejected operation inside a pure closure.
type impureOp struct {
	pos  token.Pos
	what string
}

// purityFacts caches the per-function analysis.
type purityFacts struct {
	ops     []impureOp
	callees []*funcInfo
}

func purity(m *Module) []Diagnostic {
	fi := buildFuncIndex(m)

	// Roots: declarations carrying //rarlint:pure (on the func line or
	// anywhere in its doc comment). Collected over all FuncDecls, not
	// just bodied ones, so attachment marking sees every candidate.
	var roots []*funcInfo
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				funcLine := m.Fset.Position(fd.Pos()).Line
				first := funcLine - 1
				if fd.Doc != nil {
					first = m.Fset.Position(fd.Doc.Pos()).Line
				}
				if !m.pureAt(m.fileName(f), first, funcLine) {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if info := fi.lookup(fn); info != nil {
					roots = append(roots, info)
				}
			}
		}
	}

	var diags []Diagnostic
	facts := map[*funcInfo]*purityFacts{}
	reported := map[impureOp]bool{}
	for _, root := range roots {
		rootName := funcName(root.pkg, root.fn)
		visited := map[*funcInfo]bool{root: true}
		queue := []*funcInfo{root}
		for len(queue) > 0 {
			info := queue[0]
			queue = queue[1:]
			ft := facts[info]
			if ft == nil {
				ft = computePurityFacts(fi, info)
				facts[info] = ft
			}
			for _, op := range ft.ops {
				if reported[op] {
					continue
				}
				reported[op] = true
				msg := fmt.Sprintf("//rarlint:pure function %s %s", rootName, op.what)
				if info != root {
					msg = fmt.Sprintf("function %s %s, reachable from //rarlint:pure %s",
						funcName(info.pkg, info.fn), op.what, rootName)
				}
				diags = append(diags, Diagnostic{
					Pos: m.Fset.Position(op.pos), Check: "purity", Message: msg,
				})
			}
			for _, callee := range ft.callees {
				if !visited[callee] {
					visited[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}

	diags = append(diags, unattachedDirectives(m, verbPure, "purity", m.pures,
		func(d *pureDecl) bool { return d.used })...)
	return diags
}

// computePurityFacts scans one function body for impure operations and
// resolvable module callees.
func computePurityFacts(fi *funcIndex, info *funcInfo) *purityFacts {
	p, fd := info.pkg, info.decl
	ft := &purityFacts{}
	impure := func(pos token.Pos, format string, args ...any) {
		ft.ops = append(ft.ops, impureOp{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	calleeSeen := map[*funcInfo]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if !localWritable(p, fd, lhs) {
					impure(lhs.Pos(), "assigns to %s", types.ExprString(lhs))
				}
			}
		case *ast.IncDecStmt:
			if !localWritable(p, fd, n.X) {
				impure(n.X.Pos(), "assigns to %s", types.ExprString(n.X))
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				for _, lhs := range []ast.Expr{n.Key, n.Value} {
					if lhs != nil && !localWritable(p, fd, lhs) {
						impure(lhs.Pos(), "assigns to %s", types.ExprString(lhs))
					}
				}
			}
		case *ast.SendStmt:
			impure(n.Pos(), "sends on channel %s", types.ExprString(n.Chan))
		case *ast.CallExpr:
			classifyPureCall(fi, info, n, impure, calleeSeen, &ft.callees)
		}
		return true
	})
	return ft
}

// classifyPureCall decides what a call means for purity: a builtin with
// known semantics, a module function to follow, a whitelisted external,
// or an impure operation.
func classifyPureCall(fi *funcIndex, info *funcInfo, call *ast.CallExpr,
	impure func(token.Pos, string, ...any), seen map[*funcInfo]bool, callees *[]*funcInfo) {
	p, fd := info.pkg, info.decl

	// Type conversions are value operations.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "min", "max", "make", "new", "panic", "recover",
				"real", "imag", "complex":
				// Value builtins (panic unwinds, it does not mutate).
			case "append":
				// append may write into the backing array of its first
				// argument; only fresh or function-local slices are safe.
				if len(call.Args) > 0 && !freshOrLocal(p, fd, call.Args[0]) {
					impure(call.Pos(), "appends to non-local slice %s", types.ExprString(call.Args[0]))
				}
			case "delete":
				impure(call.Pos(), "deletes from map %s", types.ExprString(call.Args[0]))
			case "close":
				impure(call.Pos(), "closes channel %s", types.ExprString(call.Args[0]))
			case "clear":
				impure(call.Pos(), "clears %s", types.ExprString(call.Args[0]))
			default: // print, println, unsafe helpers, ...
				impure(call.Pos(), "calls builtin %s", id.Name)
			}
			return
		}
	}

	fn := calleeFunc(p, call)
	if fn == nil {
		impure(call.Pos(), "calls %s, which is not statically resolvable (function value)",
			types.ExprString(call.Fun))
		return
	}
	if callee := fi.lookup(fn); callee != nil {
		if !seen[callee] {
			seen[callee] = true
			*callees = append(*callees, callee)
		}
		return
	}
	name := funcName(p, fn)
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if pureExternalPkgs[path] || pureExternalFuncs[path+"."+fn.Name()] {
			return
		}
		impure(call.Pos(), "calls %s, which is outside the pure whitelist", name)
		return
	}
	// A *types.Func without a package is an interface method or error();
	// its dynamic target is unknowable.
	impure(call.Pos(), "calls %s through an interface, whose dynamic target is not statically pure", name)
}

// localWritable reports whether writing through expr can only touch
// state that dies with this call: a chain of value selections and array
// indexes rooted at a variable declared inside fd (parameters and value
// receivers included — they are copies). Any pointer indirection, slice
// or map element, or variable declared outside fd makes the write
// observable.
func localWritable(p *Package, fd *ast.FuncDecl, expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return true
			}
			v, ok := identVar(p, e)
			if !ok {
				return false
			}
			return v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
		case *ast.SelectorExpr:
			if sel := p.Info.Selections[e]; sel != nil && sel.Indirect() {
				return false // reached through an embedded pointer
			}
			tv, ok := p.Info.Types[e.X]
			if !ok {
				return false // package-qualified global
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				return false
			}
			expr = e.X
		case *ast.IndexExpr:
			tv, ok := p.Info.Types[e.X]
			if !ok {
				return false
			}
			if _, isArr := tv.Type.Underlying().(*types.Array); !isArr {
				return false // slice and map storage is shared
			}
			expr = e.X
		default:
			return false
		}
	}
}

// freshOrLocal reports whether expr denotes storage that cannot be
// shared with the caller: a local variable chain, a fresh composite
// literal, a make/append result, or nil.
func freshOrLocal(p *Package, fd *ast.FuncDecl, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// make(...) or append(...) results: freshly allocated storage.
		return true
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
	}
	return localWritable(p, fd, expr)
}
