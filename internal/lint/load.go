package lint

// Module loading: discover every package in a Go module, parse it with
// go/parser and type-check it with go/types, using only the standard
// library. The loader skips _test.go files by default — rarlint's
// contracts are about shipped simulator code — and skips testdata/,
// vendor/ and hidden directories, mirroring the go tool's own rules.
// LoadModuleWithTests opts test files in: in-package _test.go files
// augment their package, external <pkg>_test files become their own
// package, and Module.isTestFile lets each analyzer decide whether test
// code is in its scope (determinism and errdiscipline include it; the
// struct-shape analyses do not).

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the full import path ("rarsim/internal/sim").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution maps for Files.
	Info *types.Info
}

// Module is a fully loaded Go module.
type Module struct {
	// Path is the module path from go.mod ("rarsim").
	Path string
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Pkgs lists every package, sorted by import path.
	Pkgs []*Package

	// Directive indexes: filename -> line -> directives found in that
	// file's comments (see suppress.go).
	allows   map[string]map[int][]*allow
	pures    map[string]map[int][]*pureDecl
	survives map[string]map[int][]*survives
	units    map[string]map[int][]*unitDecl
	guardeds map[string]map[int][]*guardedDecl
	lockeds  map[string]map[int][]*lockedDecl
	hots     map[string]map[int][]*hotDecl
	// quiescents waive ffsound coverage for a stage-written field; nscaleds
	// declare a field part of the bulk-advance (skipset) write set.
	quiescents map[string]map[int][]*quiescent
	nscaleds   map[string]map[int][]*nscaled
	// badVerbs records comments with an unknown //rarlint: verb.
	badVerbs []Diagnostic

	// testFiles records the _test.go files loaded in tests mode.
	testFiles map[string]bool
}

// fileName returns the filename an *ast.File was parsed from.
func (m *Module) fileName(f *ast.File) string {
	return m.Fset.Position(f.Package).Filename
}

// isTestFile reports whether f is a _test.go file (only ever true in
// tests mode; the default loader does not parse them).
func (m *Module) isTestFile(f *ast.File) bool {
	return m.testFiles[m.fileName(f)]
}

// isTestPos reports whether pos lies in a _test.go file.
func (m *Module) isTestPos(pos token.Pos) bool {
	return m.testFiles[m.Fset.Position(pos).Filename]
}

// IsInternal reports whether p lives under <module>/internal/.
func (m *Module) IsInternal(p *Package) bool {
	return strings.HasPrefix(p.Path, m.Path+"/internal/")
}

// determinismScoped lists the internal packages whose state feeds
// memoized simulation results: a nondeterminism bug here poisons the
// engine cache and every figure built from it.
var determinismScoped = []string{"core", "sim", "trace", "ace", "experiments", "metrics"}

// IsDeterminismScoped reports whether p is one of the cache-feeding
// simulator packages the determinism analyzer's map-iteration check
// covers.
func (m *Module) IsDeterminismScoped(p *Package) bool {
	for _, name := range determinismScoped {
		prefix := m.Path + "/internal/" + name
		if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
			return true
		}
	}
	return false
}

// IsConfigPackage reports whether p is the module's configuration
// package (the home of the sweep knobs configcoverage audits).
func (m *Module) IsConfigPackage(p *Package) bool {
	return p.Path == m.Path+"/internal/config"
}

// loader resolves imports for the module being checked: module-local
// paths load (and type-check) from source, everything else goes to the
// toolchain's importer.
type loader struct {
	mod      *Module
	std      types.Importer
	stdSrc   types.Importer
	pkgs     map[string]*Package
	building map[string]bool
	tests    bool
}

// LoadModule loads, parses and type-checks every non-test package of
// the module rooted at dir (which must contain go.mod).
func LoadModule(dir string) (*Module, error) {
	return loadModule(dir, false)
}

// LoadModuleWithTests is LoadModule with _test.go files included:
// in-package test files join their package's file set, external
// <pkg>_test files form an extra package with an importable-by-nobody
// "<path>_test" path.
func LoadModuleWithTests(dir string) (*Module, error) {
	return loadModule(dir, true)
}

func loadModule(dir string, tests bool) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:      modPath,
		Dir:       dir,
		Fset:      token.NewFileSet(),
		testFiles: map[string]bool{},
	}
	l := &loader{
		mod:      m,
		std:      importer.ForCompiler(m.Fset, "gc", nil),
		stdSrc:   importer.ForCompiler(m.Fset, "source", nil),
		pkgs:     map[string]*Package{},
		building: map[string]bool{},
		tests:    tests,
	}

	dirs, err := packageDirs(dir, tests)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if _, err := l.loadDir(d); err != nil {
			return nil, err
		}
	}
	for _, p := range l.pkgs {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs returns every directory under root holding at least one
// non-test .go file (any .go file in tests mode), skipping testdata,
// vendor and hidden directories.
func packageDirs(root string, tests bool) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if goSource(e.Name()) || (tests && goTestSource(e.Name())) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// goSource reports whether name is a non-test Go source file.
func goSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// goTestSource reports whether name is a Go test file.
func goTestSource(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// importPathFor maps a module-local directory to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.mod.Dir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.mod.Path, nil
	}
	return l.mod.Path + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-local import path back to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.mod.Path {
		return l.mod.Dir
	}
	rel := strings.TrimPrefix(path, l.mod.Path+"/")
	return filepath.Join(l.mod.Dir, filepath.FromSlash(rel))
}

// Import implements types.Importer for the module's type-checker.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		p, err := l.loadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		// The compiled-export importer needs build-cache artifacts;
		// fall back to type-checking the dependency from source.
		pkg, err = l.stdSrc.Import(path)
	}
	return pkg, err
}

// loadDir parses and type-checks the package in dir (once; later calls
// return the cached package).
func (l *loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.building[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.building[path] = true
	defer delete(l.building, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// In tests mode in-package _test.go files augment the package (safe:
	// they can never be imported, so importers see a superset), while
	// external <pkg>_test files become their own package checked after —
	// and importing — the base one.
	var files, extFiles []*ast.File
	for _, e := range ents {
		isTest := goTestSource(e.Name())
		if !goSource(e.Name()) && !(l.tests && isTest) {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.mod.Fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		l.mod.collectDirectives(fname, f)
		if isTest {
			l.mod.testFiles[fname] = true
			if strings.HasSuffix(f.Name.Name, "_test") {
				extFiles = append(extFiles, f)
				continue
			}
		}
		files = append(files, f)
	}
	if len(files) == 0 && len(extFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}

	check := func(pkgPath string, fs []*ast.File) (*Package, error) {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: l,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(pkgPath, l.mod.Fset, fs, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, typeErrs[0])
		}
		return &Package{Path: pkgPath, Dir: dir, Files: fs, Types: tpkg, Info: info}, nil
	}

	var p *Package
	if len(files) > 0 {
		if p, err = check(path, files); err != nil {
			return nil, err
		}
		l.pkgs[path] = p
	}
	if len(extFiles) > 0 {
		// The "_test" path suffix keeps the external test package out of
		// the importable namespace; its imports of the base package hit
		// the cache entry stored just above.
		tp, err := check(path+"_test", extFiles)
		if err != nil {
			return nil, err
		}
		l.pkgs[path+"_test"] = tp
		if p == nil {
			p = tp
		}
	}
	return p, nil
}
