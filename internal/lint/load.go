package lint

// Module loading: discover every package in a Go module, parse it with
// go/parser and type-check it with go/types, using only the standard
// library. The loader deliberately skips _test.go files — rarlint's
// contracts are about shipped simulator code — and skips testdata/,
// vendor/ and hidden directories, mirroring the go tool's own rules.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the full import path ("rarsim/internal/sim").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution maps for Files.
	Info *types.Info
}

// Module is a fully loaded Go module.
type Module struct {
	// Path is the module path from go.mod ("rarsim").
	Path string
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Pkgs lists every package, sorted by import path.
	Pkgs []*Package

	// allows maps filename -> line -> allow directives found in that
	// file's comments (see suppress.go).
	allows map[string]map[int][]allow
}

// IsInternal reports whether p lives under <module>/internal/.
func (m *Module) IsInternal(p *Package) bool {
	return strings.HasPrefix(p.Path, m.Path+"/internal/")
}

// determinismScoped lists the internal packages whose state feeds
// memoized simulation results: a nondeterminism bug here poisons the
// engine cache and every figure built from it.
var determinismScoped = []string{"core", "sim", "trace", "ace", "experiments", "metrics"}

// IsDeterminismScoped reports whether p is one of the cache-feeding
// simulator packages the determinism analyzer's map-iteration check
// covers.
func (m *Module) IsDeterminismScoped(p *Package) bool {
	for _, name := range determinismScoped {
		prefix := m.Path + "/internal/" + name
		if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
			return true
		}
	}
	return false
}

// IsConfigPackage reports whether p is the module's configuration
// package (the home of the sweep knobs configcoverage audits).
func (m *Module) IsConfigPackage(p *Package) bool {
	return p.Path == m.Path+"/internal/config"
}

// loader resolves imports for the module being checked: module-local
// paths load (and type-check) from source, everything else goes to the
// toolchain's importer.
type loader struct {
	mod      *Module
	std      types.Importer
	stdSrc   types.Importer
	pkgs     map[string]*Package
	building map[string]bool
}

// LoadModule loads, parses and type-checks every package of the module
// rooted at dir (which must contain go.mod).
func LoadModule(dir string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:   modPath,
		Dir:    dir,
		Fset:   token.NewFileSet(),
		allows: map[string]map[int][]allow{},
	}
	l := &loader{
		mod:      m,
		std:      importer.ForCompiler(m.Fset, "gc", nil),
		stdSrc:   importer.ForCompiler(m.Fset, "source", nil),
		pkgs:     map[string]*Package{},
		building: map[string]bool{},
	}

	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if _, err := l.loadDir(d); err != nil {
			return nil, err
		}
	}
	for _, p := range l.pkgs {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, skipping testdata, vendor and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if goSource(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// goSource reports whether name is a non-test Go source file.
func goSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// importPathFor maps a module-local directory to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.mod.Dir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.mod.Path, nil
	}
	return l.mod.Path + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-local import path back to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.mod.Path {
		return l.mod.Dir
	}
	rel := strings.TrimPrefix(path, l.mod.Path+"/")
	return filepath.Join(l.mod.Dir, filepath.FromSlash(rel))
}

// Import implements types.Importer for the module's type-checker.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		p, err := l.loadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		// The compiled-export importer needs build-cache artifacts;
		// fall back to type-checking the dependency from source.
		pkg, err = l.stdSrc.Import(path)
	}
	return pkg, err
}

// loadDir parses and type-checks the package in dir (once; later calls
// return the cached package).
func (l *loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.building[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.building[path] = true
	defer delete(l.building, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !goSource(e.Name()) {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.mod.Fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		l.mod.collectAllows(fname, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.mod.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}
