package lint

// The configcoverage analyzer proves that every configuration knob
// declared in internal/config actually reaches the model. The experiment
// matrices sweep config structs and attribute result deltas to the swept
// fields; a field the simulator never reads turns such a sweep into a
// fiction — the figure varies a knob wired to nothing. (The
// heterogeneous-reliability design-space literature this repo follows
// depends on exactly this property: every explored parameter must
// verifiably influence the model.)
//
// A field counts as covered if it is read anywhere in the module outside
// a write context: constructor assignments and composite-literal keys
// are production, not consumption. Unlike statshygiene, interior chain
// components count (`cfg.Mem.L1Size` covers both Mem and L1Size) —
// coverage asks "does the knob reach the model", not "who consumes the
// final value".

import (
	"fmt"
	"go/types"
	"sort"
)

func configCoverage(m *Module) []Diagnostic {
	audited := map[*types.Var]bool{}
	var fields []*types.Var
	owner := map[*types.Var]string{}

	for _, p := range m.Pkgs {
		if !m.IsConfigPackage(p) {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || m.isTestPos(tn.Pos()) {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				audited[fv] = true
				fields = append(fields, fv)
				owner[fv] = p.Types.Name() + "." + name
			}
		}
	}
	if len(audited) == 0 {
		return nil
	}

	ff := &fieldFlow{mod: m, audited: audited, countInner: true}
	ff.run()

	reads := map[*types.Var]int{}
	for _, u := range ff.uses {
		if u.kind == accRead {
			reads[u.field]++
		}
	}

	var diags []Diagnostic
	for _, fv := range fields {
		if reads[fv] > 0 {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   m.Fset.Position(fv.Pos()),
			Check: "configcoverage",
			Message: fmt.Sprintf("config knob %s.%s is never read by the simulator: sweeping it changes nothing (wire it into the model or delete it)",
				owner[fv], fv.Name()),
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
	return diags
}
