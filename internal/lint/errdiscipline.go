package lint

// The errdiscipline analyzer flags discarded error returns in the
// module's internal packages: a call used as a bare statement (or
// deferred, or spawned with go) whose callee returns an error. PR 1's
// RunMatrix masked multi-cell failures precisely because error values
// went missing on the way up; this check keeps the plumbing honest.
//
// Deliberately out of scope:
//   - explicit discards (`_ = f()`): visible and greppable, the author
//     made a decision;
//   - fmt printers: their error returns mirror the writer's and the
//     write targets here are stdout/stderr/strings/hashes;
//   - writers that are documented to never fail: strings.Builder,
//     bytes.Buffer and the hash.Hash family.
//
// Anything else that is genuinely best-effort gets an allow directive
// with the reason on record.

import (
	"fmt"
	"go/ast"
	"go/types"
)

func errDiscipline(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Pkgs {
		if !m.IsInternal(p) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				var how string
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
					how = "call"
				case *ast.DeferStmt:
					call, how = n.Call, "deferred call"
				case *ast.GoStmt:
					call, how = n.Call, "go call"
				default:
					return true
				}
				if call == nil || !returnsError(p, call) || exemptErrCall(p, call) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:   m.Fset.Position(call.Pos()),
					Check: "errdiscipline",
					Message: fmt.Sprintf("%s discards the error returned by %s (handle it, assign to _, or rarlint:allow with a reason)",
						how, types.ExprString(call.Fun)),
				})
				return true
			})
		}
	}
	return diags
}

// returnsError reports whether the call's result tuple includes error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// neverFails lists receiver types whose Write-family errors are
// documented to always be nil.
var neverFails = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// exemptErrCall reports whether the discarded error is exempt: fmt
// printers and never-failing writers.
func exemptErrCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return neverFails[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
