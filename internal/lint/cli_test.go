package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestMainExitCodes pins the exit-code contract CI depends on:
// 0 clean, 1 findings, 2 load/usage error.
func TestMainExitCodes(t *testing.T) {
	t.Run("findings", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, ExitFindings, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "errdiscipline") {
			t.Errorf("stdout lacks a finding line:\n%s", out.String())
		}
		if !strings.Contains(errb.String(), "finding(s)") {
			t.Errorf("stderr lacks the summary line:\n%s", errb.String())
		}
	})

	t.Run("dotdotdot", func(t *testing.T) {
		// go-tool muscle memory: `rarlint dir/...` analyzes dir's module.
		var out, errb strings.Builder
		code := Main([]string{filepath.Join("testdata", "errdiscipline") + "/..."}, &out, &errb)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
		}
	})

	t.Run("checks-filter", func(t *testing.T) {
		// The determinism corpus has no errdiscipline findings, so
		// filtering to errdiscipline comes back clean.
		var out, errb strings.Builder
		code := Main([]string{"-checks", "errdiscipline", filepath.Join("testdata", "determinism")}, &out, &errb)
		if code != ExitClean {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, ExitClean, out.String(), errb.String())
		}
	})

	t.Run("unknown-check", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-checks", "nosuch", filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitError {
			t.Fatalf("exit = %d, want %d", code, ExitError)
		}
		if !strings.Contains(errb.String(), "unknown check") {
			t.Errorf("stderr lacks the unknown-check error:\n%s", errb.String())
		}
	})

	t.Run("no-module", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{t.TempDir()}, &out, &errb)
		if code != ExitError {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitError, errb.String())
		}
	})
}

// TestRepoIsClean is the acceptance regression: rarlint on this
// repository itself must exit 0 — every real finding is either fixed or
// carries an audited allow directive.
func TestRepoIsClean(t *testing.T) {
	var out, errb strings.Builder
	code := Main([]string{filepath.Join("..", "..")}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("rarlint on the repo: exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out.String(), errb.String())
	}
}
