package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestMainExitCodes pins the exit-code contract CI depends on:
// 0 clean, 1 findings, 2 load/usage error.
func TestMainExitCodes(t *testing.T) {
	t.Run("findings", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, ExitFindings, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "errdiscipline") {
			t.Errorf("stdout lacks a finding line:\n%s", out.String())
		}
		if !strings.Contains(errb.String(), "finding(s)") {
			t.Errorf("stderr lacks the summary line:\n%s", errb.String())
		}
	})

	t.Run("dotdotdot", func(t *testing.T) {
		// go-tool muscle memory: `rarlint dir/...` analyzes dir's module.
		var out, errb strings.Builder
		code := Main([]string{filepath.Join("testdata", "errdiscipline") + "/..."}, &out, &errb)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
		}
	})

	t.Run("checks-filter", func(t *testing.T) {
		// The determinism corpus has no errdiscipline findings, so
		// filtering to errdiscipline comes back clean.
		var out, errb strings.Builder
		code := Main([]string{"-checks", "errdiscipline", filepath.Join("testdata", "determinism")}, &out, &errb)
		if code != ExitClean {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, ExitClean, out.String(), errb.String())
		}
	})

	t.Run("check-alias", func(t *testing.T) {
		// -check is an alias for -checks; both filter to a subset.
		var out, errb strings.Builder
		code := Main([]string{"-check", "errdiscipline", filepath.Join("testdata", "determinism")}, &out, &errb)
		if code != ExitClean {
			t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, ExitClean, out.String(), errb.String())
		}
		out.Reset()
		errb.Reset()
		code = Main([]string{"-check", "determinism", filepath.Join("testdata", "determinism")}, &out, &errb)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
		}
		if !strings.Contains(out.String(), "determinism") {
			t.Errorf("-check filter lost the determinism findings:\n%s", out.String())
		}
	})

	t.Run("check-alias-unknown", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-check", "nosuch", filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitError {
			t.Fatalf("exit = %d, want %d", code, ExitError)
		}
		if !strings.Contains(errb.String(), "unknown check") {
			t.Errorf("stderr lacks the unknown-check error:\n%s", errb.String())
		}
	})

	t.Run("unknown-check", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-checks", "nosuch", filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitError {
			t.Fatalf("exit = %d, want %d", code, ExitError)
		}
		if !strings.Contains(errb.String(), "unknown check") {
			t.Errorf("stderr lacks the unknown-check error:\n%s", errb.String())
		}
	})

	t.Run("no-module", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{t.TempDir()}, &out, &errb)
		if code != ExitError {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitError, errb.String())
		}
	})
}

// TestJSONOutput pins the -json schema CI rewrites into GitHub Actions
// annotations: an array of {file,line,col,check,message} records, and a
// literal empty array on a clean run so pipelines always parse stdout.
func TestJSONOutput(t *testing.T) {
	t.Run("findings", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-json", filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
		}
		var recs []jsonDiagnostic
		if err := json.Unmarshal([]byte(out.String()), &recs); err != nil {
			t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
		}
		if len(recs) == 0 {
			t.Fatal("JSON array is empty despite ExitFindings")
		}
		for _, r := range recs {
			if r.File == "" || r.Line <= 0 || r.Col <= 0 || r.Check == "" || r.Message == "" {
				t.Errorf("incomplete record: %+v", r)
			}
			if filepath.IsAbs(r.File) {
				t.Errorf("file %q is absolute; CI annotations need repo-relative paths", r.File)
			}
		}
	})

	t.Run("clean", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-json", "-checks", "errdiscipline", filepath.Join("testdata", "determinism")}, &out, &errb)
		if code != ExitClean {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitClean, errb.String())
		}
		if got := strings.TrimSpace(out.String()); got != "[]" {
			t.Errorf("clean -json stdout = %q, want \"[]\"", got)
		}
	})
}

// TestTestsFlag pins the -tests loader: without it test files are
// invisible; with it both in-package and external-test-package files
// are loaded, type-checked and analyzed.
func TestTestsFlag(t *testing.T) {
	dir := filepath.Join("testdata", "testsflag")

	var out, errb strings.Builder
	if code := Main([]string{dir}, &out, &errb); code != ExitClean {
		t.Fatalf("without -tests: exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := Main([]string{"-tests", dir}, &out, &errb); code != ExitFindings {
		t.Fatalf("with -tests: exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitFindings, out.String(), errb.String())
	}
	for _, file := range []string{"sim_test.go", "ext_test.go"} {
		if !strings.Contains(out.String(), file) {
			t.Errorf("-tests findings lack the violation in %s:\n%s", file, out.String())
		}
	}
}

// TestSARIFOutput pins the -sarif schema GitHub code scanning ingests:
// a 2.1.0 log with a rarlint driver, one rule per check (plus the
// "lint" directive pseudo-check), and results whose ruleIndex points
// back into the rules array. A clean run still emits the full skeleton
// with an empty results array so the CI upload step never branches.
func TestSARIFOutput(t *testing.T) {
	t.Run("findings", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-sarif", filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
		}
		var log sarifLog
		if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
			t.Fatalf("stdout is not a SARIF log: %v\n%s", err, out.String())
		}
		if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
			t.Errorf("log version = %q schema = %q, want 2.1.0", log.Version, log.Schema)
		}
		if len(log.Runs) != 1 {
			t.Fatalf("log has %d runs, want 1", len(log.Runs))
		}
		run := log.Runs[0]
		if run.Tool.Driver.Name != "rarlint" {
			t.Errorf("driver name = %q, want rarlint", run.Tool.Driver.Name)
		}
		if want := len(Analyzers()) + 1; len(run.Tool.Driver.Rules) != want {
			t.Errorf("driver has %d rules, want %d (every check plus \"lint\")",
				len(run.Tool.Driver.Rules), want)
		}
		if len(run.Results) == 0 {
			t.Fatal("results array is empty despite ExitFindings")
		}
		for _, r := range run.Results {
			if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
				run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
				t.Errorf("result ruleIndex %d does not resolve to ruleId %q", r.RuleIndex, r.RuleID)
			}
			if r.Level != "error" || r.Message.Text == "" || len(r.Locations) != 1 {
				t.Errorf("incomplete result: %+v", r)
			}
			loc := r.Locations[0].PhysicalLocation
			if loc.Region.StartLine <= 0 || loc.Region.StartColumn <= 0 {
				t.Errorf("result lacks a region: %+v", loc)
			}
			uri := loc.ArtifactLocation.URI
			if uri == "" || strings.Contains(uri, "\\") || filepath.IsAbs(uri) {
				t.Errorf("artifact URI %q must be a relative slash path", uri)
			}
		}
	})

	t.Run("clean", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-sarif", "-checks", "errdiscipline", filepath.Join("testdata", "determinism")}, &out, &errb)
		if code != ExitClean {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitClean, errb.String())
		}
		var log sarifLog
		if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
			t.Fatalf("clean -sarif stdout is not a SARIF log: %v\n%s", err, out.String())
		}
		if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
			t.Errorf("clean log must hold one run with an empty (non-null) results array:\n%s", out.String())
		}
	})

	t.Run("exclusive-with-json", func(t *testing.T) {
		var out, errb strings.Builder
		code := Main([]string{"-json", "-sarif", filepath.Join("testdata", "errdiscipline")}, &out, &errb)
		if code != ExitError {
			t.Fatalf("exit = %d, want %d", code, ExitError)
		}
		if !strings.Contains(errb.String(), "mutually exclusive") {
			t.Errorf("stderr lacks the mutual-exclusion error:\n%s", errb.String())
		}
	})
}

// TestRepoIsClean is the acceptance regression: rarlint on this
// repository itself must exit 0 with the full eleven-check suite — every
// real finding is either fixed or carries an audited directive — and
// stay clean when the repository's own test files are loaded too. The
// hard-coded wantChecks list is deliberate: registering a twelfth
// analyzer without extending it (and therefore without auditing the
// tree against it) fails here, so a new check cannot ship unwired.
func TestRepoIsClean(t *testing.T) {
	wantChecks := []string{
		"determinism", "statshygiene", "configcoverage", "errdiscipline",
		"purity", "flushreset", "units", "lockcheck", "hotalloc",
		"ffsound", "skipset",
	}
	as := Analyzers()
	if len(as) != len(wantChecks) {
		t.Fatalf("Analyzers() has %d checks, want %d", len(as), len(wantChecks))
	}
	for i, want := range wantChecks {
		if as[i].Name != want {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, as[i].Name, want)
		}
	}

	var out, errb strings.Builder
	code := Main([]string{filepath.Join("..", "..")}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("rarlint on the repo: exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	code = Main([]string{"-tests", filepath.Join("..", "..")}, &out, &errb)
	if code != ExitClean {
		t.Fatalf("rarlint -tests on the repo: exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out.String(), errb.String())
	}
}
