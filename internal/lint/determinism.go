package lint

// The determinism analyzer guards the soundness condition of the
// memoizing simulation engine (internal/sim/engine.go): a cell's result
// must be a pure function of its content-hashed CellKey. Three bug
// classes break that silently:
//
//   - wall-clock reads (time.Now / time.Since) leaking into state,
//   - the global math/rand source (process-wide, seeding-order
//     dependent) instead of an explicitly seeded local generator,
//   - iteration over a map feeding results, accumulators or rendered
//     output, whose order varies run to run.
//
// time/rand calls are flagged module-wide (host-side timing is
// legitimate but must be explicitly marked as outside the simulated-state
// boundary with an allow directive); the map-iteration check applies to
// the cache-feeding packages internal/{core,sim,trace,ace,experiments,
// metrics}. Two patterns are recognised as order-independent and exempt:
// writes into a map indexed inside the loop (map storage is unordered
// anyway), and the canonical collect-keys-then-sort idiom — a loop whose
// only escaping writes append into slices that the same function later
// passes to sort or slices (the sort normalises whatever order the map
// produced). Deterministic math/rand constructors (rand.New,
// rand.NewSource, ...) are likewise exempt: they are exactly the
// replacement the check demands.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func determinism(m *Module) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:     m.Fset.Position(pos),
			Check:   "determinism",
			Message: msg,
		})
	}
	for _, p := range m.Pkgs {
		scoped := m.IsDeterminismScoped(p)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if msg := nondeterministicCall(p, call); msg != "" {
						report(call.Pos(), msg)
					}
				}
				return true
			})
			if !scoped {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if rs, ok := n.(*ast.RangeStmt); ok {
						if msg := mapRangeViolation(p, rs, fd); msg != "" {
							report(rs.Pos(), msg)
						}
					}
					return true
				})
			}
		}
	}
	return diags
}

// nondeterministicCall reports a message if the call reads the wall
// clock or the global math/rand source.
func nondeterministicCall(p *Package, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return fmt.Sprintf("call to time.%s: wall-clock time is nondeterministic; keep it outside simulated state (annotate host-side timing with rarlint:allow)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// rand.New / rand.NewSource / rand.NewPCG build the explicitly
		// seeded local generator the check asks for: deterministic.
		if strings.HasPrefix(fn.Name(), "New") {
			return ""
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return fmt.Sprintf("call to package-level %s.%s: the global source is process-wide and seeding-order dependent; use an explicitly seeded local generator (e.g. internal/trace.RNG)", fn.Pkg().Path(), fn.Name())
		}
	}
	return ""
}

// calleeFunc resolves the called function, if it is a named one.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// mapRangeViolation reports a message if n ranges over a map and its
// body leaks order into surrounding state or output. fd is the
// enclosing top-level function, searched for the sort call that makes
// the collect-then-sort idiom exempt.
func mapRangeViolation(p *Package, n *ast.RangeStmt, fd *ast.FuncDecl) string {
	tv, ok := p.Info.Types[n.X]
	if !ok {
		return ""
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return ""
	}
	if why := orderEscape(p, n, fd); why != "" {
		return "iteration over map " + types.ExprString(n.X) + " " + why +
			"; map order is nondeterministic — iterate over sorted keys"
	}
	return ""
}

// escape is one way a loop body leaks iteration order. collect is
// non-nil for `s = append(s, ...)` self-appends, the candidate
// collect-then-sort pattern.
type escape struct {
	why     string
	collect *types.Var
}

// orderEscape explains how the loop body leaks iteration order, or
// returns "" when the body is order-independent — including the
// collect-keys-then-sort idiom, where every escaping write is a
// self-append into a slice the enclosing function later sorts.
func orderEscape(p *Package, loop *ast.RangeStmt, fd *ast.FuncDecl) string {
	var escapes []escape
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !outerWrite(p, loop, lhs) {
					continue
				}
				escapes = append(escapes, escape{
					why:     "writes " + types.ExprString(lhs) + " declared outside the loop",
					collect: appendToSelf(p, n, i),
				})
			}
		case *ast.IncDecStmt:
			if outerWrite(p, loop, n.X) {
				escapes = append(escapes, escape{why: "writes " + types.ExprString(n.X) + " declared outside the loop"})
			}
		case *ast.CallExpr:
			if name := outputCall(p, n); name != "" {
				escapes = append(escapes, escape{why: "emits output via " + name})
			}
		}
		return true
	})
	if len(escapes) == 0 {
		return ""
	}
	for _, e := range escapes {
		if e.collect == nil || !sortedAfter(p, fd, loop, e.collect) {
			return e.why
		}
	}
	return ""
}

// appendToSelf returns the slice variable when the i-th assignment pair
// is `s = append(s, ...)`, nil otherwise.
func appendToSelf(p *Package, n *ast.AssignStmt, i int) *types.Var {
	if len(n.Lhs) != len(n.Rhs) {
		return nil
	}
	lhs, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := identVar(p, lhs)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); !isBuiltin || fun.Name != "append" {
		return nil
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	if av, ok := identVar(p, arg); !ok || av != v {
		return nil
	}
	return v
}

// sortedAfter reports whether the enclosing function passes v to a
// sort/slices call positioned after the loop: the sort erases whatever
// order the map iteration produced.
func sortedAfter(p *Package, fd *ast.FuncDecl, loop *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= loop.End() || found {
			return !found
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if av, ok := identVar(p, id); ok && av == v {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// identVar resolves an identifier to the variable it names.
func identVar(p *Package, id *ast.Ident) (*types.Var, bool) {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// outerWrite reports whether lhs writes through a variable declared
// outside the loop. Writes into maps are exempt (unordered storage).
func outerWrite(p *Package, loop *ast.RangeStmt, lhs ast.Expr) bool {
	expr := ast.Unparen(lhs)
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			if tv, ok := p.Info.Types[e.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false
				}
			}
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return false
			}
			v, ok := identVar(p, e)
			if !ok {
				return false
			}
			return v.Pos() < loop.Pos() || v.Pos() > loop.End()
		default:
			return false
		}
	}
}

// outputCall reports the name of an order-sensitive output call: fmt
// printers and Write/Add-style sink methods.
func outputCall(p *Package, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name()
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "AddRow", "AddF":
			return fn.Name()
		}
	}
	return ""
}
