package lint

// SARIF 2.1.0 output for GitHub code scanning. Like -json, the schema
// is a compatibility contract with CI: the uploaded log drives the
// repository's code-scanning alerts, so field shapes may be extended
// but never renamed. Only the subset code scanning actually consumes is
// emitted — tool.driver with one rule per check, and one result per
// finding with a physical location.

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders diagnostics as a single-run SARIF 2.1.0 log. A
// clean run still emits the full tool/rules skeleton with an empty
// results array, so the CI upload step never special-cases success.
func writeSARIF(w io.Writer, diags []Diagnostic) error {
	rules := []sarifRule{{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "malformed, unknown or stale rarlint directives"},
	}}
	index := map[string]int{"lint": 0}
	for _, a := range Analyzers() {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: index[d.Check],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI: filepath.ToSlash(d.Pos.Filename),
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rarlint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}
