package lint

// The ffsound analyzer statically encodes the fast-forward quiescence
// contract (DESIGN.md §7): skipTo may jump the core over a stall gap
// only because nextEventCycle bounds the skip by the earliest cycle at
// which *anything* can change. That bound is sound only if every piece
// of mutable state the stage machinery can touch is visible to the
// next-event computation — a field the stages write but no next-event
// source reads is state whose pending change could fall inside a skip
// window and silently diverge the fast-forwarded run from the cycle-by-
// cycle one. The analyzer computes, over the static call graph,
//
//	W = fields written by the stage functions' closures
//	    (fetch/dispatch/issue/complete/commit, the mode stage, store
//	    drain, and the runahead enter/exit transitions),
//	R = fields read by the next-event sources' closures
//	    (nextEventCycle and modeNextEvent, following every helper they
//	    consult, e.g. the hierarchy's NextFillAt),
//
// and reports every audited field in W \ R at its declaration. A field
// that genuinely needs no next-event coverage — one whose changes are
// always derived from (and therefore bounded by) covered state, such as
// a stat counter or a value recomputed from covered inputs before use —
// carries //rarlint:quiescent <reason> on its declaration. The analyzer
// keeps the waivers honest the same way flushreset keeps survives
// honest: a quiescent annotation on a field that is in fact read by a
// next-event source (or never stage-written) is itself a finding, and
// those stale-directive findings cannot be suppressed.
//
// Audited scope: fields of named structs declared in a package holding
// a stage seed or a package contributing any function to the next-event
// read closure — on this tree, the core and the memory hierarchy; a
// branch predictor whose state the next-event logic never consults is
// deliberately out of scope (its divergence is caught dynamically by
// the A/B equivalence tests, and statically it has no quiescence
// obligation because skips never cross a cycle where it acts).

import (
	"fmt"
)

// ffStageNames seed the written set W: everything a busy cycle can
// execute. tickBlocked is deliberately absent — the blocked-cycle path
// is skipset's domain (its writes must n-scale, not be event-covered).
var ffStageNames = map[string]bool{
	"fetchStage":    true,
	"dispatchStage": true,
	"issueStage":    true,
	"completeStage": true,
	"commitStage":   true,
	"modeStage":     true,
	"drainStores":   true,
	"enterRunahead": true,
	"exitRunahead":  true,
}

// ffSourceNames seed the read set R: the next-event computation.
var ffSourceNames = map[string]bool{
	"nextEventCycle": true,
	"modeNextEvent":  true,
}

func ffSound(m *Module) []Diagnostic {
	fi := buildFuncIndex(m)
	stages, stagePkgs := seedFuncs(m, fi, ffStageNames)
	sources, _ := seedFuncs(m, fi, ffSourceNames)
	if len(stages) == 0 || len(sources) == 0 {
		return nil // not a fast-forwarding module: no contract to check
	}

	fe := newFlowEngine(fi)
	written := fe.writeClosure(stages)
	_, read, sourceFuncs := fe.closure(sources)

	// Audited packages: where the stages live plus every package the
	// next-event closure reaches into (the memory hierarchy).
	pkgs := stagePkgs
	for _, info := range sourceFuncs {
		pkgs[info.pkg] = true
	}
	fields, owner := auditedFields(m, pkgs)

	// A quiescent directive trails its field or sits up to two lines
	// above it, so it can stack with a unit/survives/guardedby directive
	// already annotating the same declaration.
	attached := map[*quiescent]int{}
	claim := func(filename string, fieldLine int) *quiescent {
		for _, l := range []int{fieldLine, fieldLine - 1, fieldLine - 2} {
			for _, q := range m.quiescents[filename][l] {
				if q.reason == "" {
					continue // malformed, already a lint finding
				}
				if at, ok := attached[q]; ok && at != fieldLine {
					continue
				}
				attached[q] = fieldLine
				return q
			}
		}
		return nil
	}

	var diags []Diagnostic
	for _, fv := range fields {
		pos := m.Fset.Position(fv.Pos())
		q := claim(pos.Filename, pos.Line)
		site, uncovered := written[fv]
		if _, ok := read[fv]; ok {
			uncovered = false
		}
		switch {
		case uncovered && q != nil:
			q.used = true
		case uncovered:
			diags = append(diags, Diagnostic{Pos: pos, Check: "ffsound",
				Message: fmt.Sprintf("field %s.%s is written by the stage closures (by %s) but read by no next-event source: a pending change to it would not bound the fast-forward skip — read it in nextEventCycle/modeNextEvent or annotate //rarlint:quiescent <reason>",
					owner[fv], fv.Name(), site.fn)})
		case q != nil:
			diags = append(diags, Diagnostic{Pos: pos, Check: "ffsound",
				Message: fmt.Sprintf("stale rarlint:quiescent on %s.%s: the field is read by a next-event source (or never written by the stage closures); remove the annotation",
					owner[fv], fv.Name())})
		}
	}

	diags = append(diags, unattachedDirectives(m, verbQuiescent, "ffsound", m.quiescents,
		func(q *quiescent) bool { _, ok := attached[q]; return ok || q.reason == "" })...)
	return diags
}
