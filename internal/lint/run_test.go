package lint

import (
	"path/filepath"
	"slices"
	"testing"
)

// TestRunOrderIsDeterministic pins the concurrency contract of Run: the
// analyzers execute in parallel goroutines, but the finding order the
// caller sees is the (file, line, col, check, message) sort — identical
// across repeated runs regardless of goroutine scheduling.
func TestRunOrderIsDeterministic(t *testing.T) {
	// The suppress corpus produces findings from several checks plus the
	// directive validator, so any ordering leak between analyzer
	// goroutines would show up here.
	dir, err := filepath.Abs(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	render := func() []string {
		mod, err := LoadModule(dir)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Run(mod, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 0, len(diags))
		for _, d := range diags {
			out = append(out, d.String())
		}
		return out
	}

	first := render()
	if len(first) == 0 {
		t.Fatal("suppress corpus produced no findings; the determinism pin needs a multi-check finding set")
	}
	for i := 0; i < 8; i++ {
		got := render()
		if !slices.Equal(got, first) {
			t.Fatalf("run %d produced a different finding order:\nfirst: %v\ngot:   %v", i, first, got)
		}
	}
}
