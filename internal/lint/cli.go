package lint

// Command-line driver shared by cmd/rarlint and the tests, so the exact
// exit-code behaviour CI depends on is itself testable.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Exit codes.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage or load/type-check failure
)

// Main runs rarlint with the given arguments (excluding the program
// name) and returns its exit code. Findings go to stdout, errors to
// stderr.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rarlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rarlint [-checks list] [module-dir | ./...]\n\n"+
			"Static analysis of a Go module's simulator contracts. Checks:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress an audited finding in place with "+
			"`//rarlint:allow <check> <reason>`\non the flagged line or the line above it.\n")
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		// "./..." is accepted for go-tool muscle memory: rarlint always
		// analyzes the whole module containing the named directory.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	default:
		fs.Usage()
		return ExitError
	}

	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "rarlint:", err)
		return ExitError
	}
	mod, err := LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "rarlint:", err)
		return ExitError
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	diags, err := Run(mod, names)
	if err != nil {
		fmt.Fprintln(stderr, "rarlint:", err)
		return ExitError
	}
	if len(diags) == 0 {
		return ExitClean
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Fprintln(stdout, d)
	}
	fmt.Fprintf(stderr, "rarlint: %d finding(s)\n", len(diags))
	return ExitFindings
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		d = parent
	}
}
