package lint

// Command-line driver shared by cmd/rarlint and the tests, so the exact
// exit-code behaviour CI depends on is itself testable.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Exit codes.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage or load/type-check failure
)

// Main runs rarlint with the given arguments (excluding the program
// name) and returns its exit code. Findings go to stdout, errors to
// stderr.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rarlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	check := fs.String("check", "", "alias for -checks")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout (GitHub code scanning)")
	withTests := fs.Bool("tests", false, "include _test.go files (determinism and errdiscipline cover them)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rarlint [-check list] [-json | -sarif] [-tests] [module-dir | ./...]\n\n"+
			"Static analysis of a Go module's simulator contracts. Checks:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress an audited finding in place with "+
			"`//rarlint:allow <check> <reason>`\non the flagged line or the line above it.\n")
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "rarlint: -json and -sarif are mutually exclusive")
		return ExitError
	}

	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		// "./..." is accepted for go-tool muscle memory: rarlint always
		// analyzes the whole module containing the named directory.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	default:
		fs.Usage()
		return ExitError
	}

	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "rarlint:", err)
		return ExitError
	}
	load := LoadModule
	if *withTests {
		load = LoadModuleWithTests
	}
	mod, err := load(root)
	if err != nil {
		fmt.Fprintln(stderr, "rarlint:", err)
		return ExitError
	}

	// -check and -checks are spellings of the same filter; merging them
	// keeps both the documented singular and the historical plural alive
	// (and `-check a -checks b` just runs both).
	var names []string
	for _, list := range []string{*checks, *check} {
		if list != "" {
			names = append(names, strings.Split(list, ",")...)
		}
	}
	diags, err := Run(mod, names)
	if err != nil {
		fmt.Fprintln(stderr, "rarlint:", err)
		return ExitError
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Pos.Filename = rel
			}
		}
	}
	switch {
	case *jsonOut:
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "rarlint:", err)
			return ExitError
		}
	case *sarifOut:
		if err := writeSARIF(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "rarlint:", err)
			return ExitError
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) == 0 {
		return ExitClean
	}
	fmt.Fprintf(stderr, "rarlint: %d finding(s)\n", len(diags))
	return ExitFindings
}

// jsonDiagnostic is the schema-stable -json record. Field names and
// types are a compatibility contract with CI (which rewrites them into
// GitHub Actions ::error annotations); extend, never rename.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// writeJSON renders diagnostics as a JSON array ("[]" on a clean run,
// so pipelines can always parse stdout).
func writeJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		d = parent
	}
}
