package lint

import (
	"path/filepath"
	"testing"
)

// TestFieldFlowEngine asserts the generalized interprocedural engine
// directly against the testdata/fieldflow corpus, so a regression in
// whole-struct expansion, embedded-promotion reads, or method-value
// following localizes to the engine rather than to ffsound/skipset.
func TestFieldFlowEngine(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "fieldflow"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	fi := buildFuncIndex(m)
	find := func(name string) *funcInfo {
		for _, info := range fi.decls {
			if info.fn.Name() == name {
				return info
			}
		}
		t.Fatalf("corpus function %s not found", name)
		return nil
	}
	names := func(s flowSet) map[string]bool {
		out := map[string]bool{}
		for fv := range s {
			out[fv.Name()] = true
		}
		return out
	}
	fe := newFlowEngine(fi)

	// Whole-struct writes: o.in = inner{} writes in, a and b; the
	// pointer deref write *o.ptr = inner{...} writes the pointee's
	// fields but not the ptr field itself, and nothing writes count.
	w := names(fe.writeClosure([]*funcInfo{find("wholeStruct")}))
	for _, want := range []string{"in", "a", "b"} {
		if !w[want] {
			t.Errorf("wholeStruct write set missing %q (got %v)", want, w)
		}
	}
	for _, reject := range []string{"ptr", "count", "tick"} {
		if w[reject] {
			t.Errorf("wholeStruct write set wrongly contains %q", reject)
		}
	}

	// Embedded promotion: reading o.tick credits the intermediate
	// embedded field (base) and the leaf (tick).
	_, r, _ := fe.closure([]*funcInfo{find("promoted")})
	rn := names(r)
	for _, want := range []string{"base", "tick"} {
		if !rn[want] {
			t.Errorf("promoted read set missing %q (got %v)", want, rn)
		}
	}

	// Method values: methodValue never calls bump directly, but the
	// closure must follow the bound value and see count written.
	w2, _, funcs := fe.closure([]*funcInfo{find("methodValue")})
	if !names(w2)["count"] {
		t.Errorf("methodValue write set missing count: bound method value not followed (got %v)", names(w2))
	}
	sawBump := false
	for _, info := range funcs {
		if info.fn.Name() == "bump" {
			sawBump = true
		}
	}
	if !sawBump {
		t.Errorf("methodValue closure did not visit bump")
	}

	// Function-value references: reader reaches promoted only through a
	// method value; its read closure must still cover the promotion.
	_, r3, _ := fe.closure([]*funcInfo{find("reader")})
	if !names(r3)["tick"] {
		t.Errorf("reader read set missing tick: method value reference not followed (got %v)", names(r3))
	}
}
