package lint

// Suppression directives. An audited exception is annotated in place:
//
//	start := time.Now() //rarlint:allow determinism host-side timing only
//
// or, on the line directly above the flagged one:
//
//	//rarlint:allow errdiscipline best-effort cleanup
//	os.Remove(tmp.Name())
//
// A directive names exactly one check and must carry a reason; rarlint
// reports malformed directives as findings of the "lint" pseudo-check so
// a suppression can never silently rot into a blanket waiver.

import (
	"go/ast"
	"go/token"
	"strings"
)

// allow is one parsed //rarlint:allow directive.
type allow struct {
	check  string
	reason string
}

const allowPrefix = "//rarlint:allow"

// collectAllows records every rarlint directive in f, keyed by filename
// and line, for suppression matching and directive validation.
func (m *Module) collectAllows(filename string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			fields := strings.Fields(rest)
			a := allow{}
			if len(fields) > 0 {
				a.check = fields[0]
			}
			if len(fields) > 1 {
				a.reason = strings.Join(fields[1:], " ")
			}
			line := m.Fset.Position(c.Pos()).Line
			byLine := m.allows[filename]
			if byLine == nil {
				byLine = map[int][]allow{}
				m.allows[filename] = byLine
			}
			byLine[line] = append(byLine[line], a)
		}
	}
}

// checkAllowDirectives validates every collected directive: the check
// name must exist and a reason is mandatory. Violations surface as
// "lint" findings (which cannot themselves be allow-suppressed), and
// directives are validated even when -checks disables their check — a
// typo must not hide behind a filter.
func (m *Module) checkAllowDirectives() []Diagnostic {
	var diags []Diagnostic
	for filename, byLine := range m.allows {
		for line, allows := range byLine {
			for _, a := range allows {
				pos := positionAt(filename, line)
				switch {
				case a.check == "":
					diags = append(diags, Diagnostic{Pos: pos, Check: "lint",
						Message: "malformed rarlint:allow: missing check name"})
				case !knownCheck(a.check):
					diags = append(diags, Diagnostic{Pos: pos, Check: "lint",
						Message: "malformed rarlint:allow: unknown check " + a.check})
				case a.reason == "":
					diags = append(diags, Diagnostic{Pos: pos, Check: "lint",
						Message: "rarlint:allow " + a.check + " needs a reason"})
				}
			}
		}
	}
	return diags
}

// suppress drops diagnostics that have a well-formed matching allow
// directive on their own line or the line directly above.
func (m *Module) suppress(diags []Diagnostic) []Diagnostic {
	matches := func(d Diagnostic, line int) bool {
		for _, a := range m.allows[d.Pos.Filename][line] {
			if a.check == d.Check && a.reason != "" {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Check != "lint" && (matches(d, d.Pos.Line) || matches(d, d.Pos.Line-1)) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// positionAt fabricates a position for directive-level diagnostics.
func positionAt(filename string, line int) token.Position {
	return token.Position{Filename: filename, Line: line, Column: 1}
}
