package lint

// rarlint directives. Every directive is a comment of the form
// //rarlint:<verb> ... attached to the line it governs (or the line
// directly above it):
//
//	//rarlint:allow <check> <reason>    suppress one audited finding
//	//rarlint:pure                      declare a function side-effect-free
//	//rarlint:survives <reason>         a runahead-written field that
//	                                    legitimately outlives runahead exit
//	//rarlint:unit <unit-expr>          dimension of a field or of a
//	                                    function's result
//	//rarlint:guardedby <mu|atomic|init> a struct field readable only under
//	                                    the named sibling mutex (or via
//	                                    sync/atomic, or set before sharing)
//	//rarlint:locked <mu>               a method whose contract is "called
//	                                    with the receiver's mu held"
//	//rarlint:hot                       an allocation-free hot-loop root
//	//rarlint:quiescent <reason>        a stage-written field whose changes
//	                                    need not bound the fast-forward skip
//	                                    (derived from covered state)
//	//rarlint:nscaled <reason>          a field the bulk-advance path
//	                                    n-scales; declares membership in the
//	                                    skipset write set
//
// A directive must be well-formed — allow names exactly one existing
// check and carries a reason, survives, quiescent and nscaled carry a
// reason, unit's
// expression must parse, guardedby and locked carry a lock argument —
// and must stay *live*: an allow that no longer
// suppresses anything and a survives that no longer matches a finding
// are themselves reported, so a waiver can never silently rot into a
// blanket exemption. Malformed and stale directives surface as findings
// of the "lint" pseudo-check, which cannot be suppressed.

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive verbs.
const (
	verbAllow     = "allow"
	verbGuardedBy = "guardedby"
	verbHot       = "hot"
	verbLocked    = "locked"
	verbNscaled   = "nscaled"
	verbPure      = "pure"
	verbQuiescent = "quiescent"
	verbSurvives  = "survives"
	verbUnit      = "unit"
)

// allow is one parsed //rarlint:allow directive.
type allow struct {
	check  string
	reason string
	used   bool
}

// pureDecl is one parsed //rarlint:pure directive.
type pureDecl struct {
	used bool
}

// survives is one parsed //rarlint:survives directive.
type survives struct {
	reason string
	used   bool
}

// unitDecl is one parsed //rarlint:unit directive.
type unitDecl struct {
	expr string
	used bool
}

// guardedDecl is one parsed //rarlint:guardedby directive. arg names the
// sibling mutex field, or is "atomic" (the field is a sync/atomic value)
// or "init" (set before the struct is shared; never checked).
type guardedDecl struct {
	arg  string
	used bool
}

// lockedDecl is one parsed //rarlint:locked directive: the annotated
// method is only ever called with the receiver's named mutex held.
type lockedDecl struct {
	mu   string
	used bool
}

// hotDecl is one parsed //rarlint:hot directive: the annotated function
// roots the hotalloc allocation-freedom closure.
type hotDecl struct {
	used bool
}

// quiescent is one parsed //rarlint:quiescent directive: the annotated
// field is written by the stage closures but deliberately not read by any
// next-event source — its value is derived from covered state, so a
// pending change to it never needs to bound the fast-forward skip.
type quiescent struct {
	reason string
	used   bool
}

// nscaled is one parsed //rarlint:nscaled directive: the annotated field
// is part of the declared bulk-advance write set — skipTo/bulkAdvance
// n-scale it across the skipped cycles.
type nscaled struct {
	reason string
	used   bool
}

const directivePrefix = "//rarlint:"

// collectDirectives records every rarlint directive in f, keyed by
// filename and line, for suppression matching, analyzer consumption and
// directive validation.
func (m *Module) collectDirectives(filename string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb := rest
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				verb, rest = rest[:i], rest[i:]
			} else {
				rest = ""
			}
			fields := strings.Fields(rest)
			line := m.Fset.Position(c.Pos()).Line
			switch verb {
			case verbAllow:
				a := &allow{}
				if len(fields) > 0 {
					a.check = fields[0]
				}
				if len(fields) > 1 {
					a.reason = strings.Join(fields[1:], " ")
				}
				addLine(&m.allows, filename, line, a)
			case verbPure:
				// Trailing words are commentary.
				addLine(&m.pures, filename, line, &pureDecl{})
			case verbSurvives:
				addLine(&m.survives, filename, line, &survives{reason: strings.Join(fields, " ")})
			case verbUnit:
				u := &unitDecl{}
				if len(fields) > 0 {
					u.expr = fields[0]
				}
				addLine(&m.units, filename, line, u)
			case verbGuardedBy:
				g := &guardedDecl{}
				if len(fields) > 0 {
					g.arg = fields[0]
				}
				addLine(&m.guardeds, filename, line, g)
			case verbLocked:
				l := &lockedDecl{}
				if len(fields) > 0 {
					l.mu = fields[0]
				}
				addLine(&m.lockeds, filename, line, l)
			case verbHot:
				// Trailing words are commentary.
				addLine(&m.hots, filename, line, &hotDecl{})
			case verbQuiescent:
				addLine(&m.quiescents, filename, line, &quiescent{reason: strings.Join(fields, " ")})
			case verbNscaled:
				addLine(&m.nscaleds, filename, line, &nscaled{reason: strings.Join(fields, " ")})
			default:
				m.badVerbs = append(m.badVerbs, Diagnostic{
					Pos: positionAt(filename, line), Check: "lint",
					Message: "unknown rarlint directive //rarlint:" + verb +
						" (have allow, guardedby, hot, locked, nscaled, pure, quiescent, survives, unit)"})
			}
		}
	}
}

// addLine appends v to a filename→line→[]V map, creating levels as
// needed.
func addLine[V any](m *map[string]map[int][]V, filename string, line int, v V) {
	if *m == nil {
		*m = map[string]map[int][]V{}
	}
	byLine := (*m)[filename]
	if byLine == nil {
		byLine = map[int][]V{}
		(*m)[filename] = byLine
	}
	byLine[line] = append(byLine[line], v)
}

// checkDirectives validates every collected directive's syntax: allow
// needs an existing check name and a reason, survives needs a reason,
// unit needs a parseable unit expression, and the verb itself must
// exist. Violations surface as "lint" findings (which cannot themselves
// be suppressed), and directives are validated even when -checks
// disables the check they serve — a typo must not hide behind a filter.
func (m *Module) checkDirectives() []Diagnostic {
	diags := append([]Diagnostic(nil), m.badVerbs...)
	for filename, byLine := range m.allows {
		for line, allows := range byLine {
			for _, a := range allows {
				pos := positionAt(filename, line)
				switch {
				case a.check == "":
					diags = append(diags, Diagnostic{Pos: pos, Check: "lint",
						Message: "malformed rarlint:allow: missing check name"})
				case !knownCheck(a.check):
					diags = append(diags, Diagnostic{Pos: pos, Check: "lint",
						Message: "malformed rarlint:allow: unknown check " + a.check})
				case a.reason == "":
					diags = append(diags, Diagnostic{Pos: pos, Check: "lint",
						Message: "rarlint:allow " + a.check + " needs a reason"})
				}
			}
		}
	}
	for filename, byLine := range m.survives {
		for line, svs := range byLine {
			for _, s := range svs {
				if s.reason == "" {
					diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "lint",
						Message: "rarlint:survives needs a reason"})
				}
			}
		}
	}
	for filename, byLine := range m.quiescents {
		for line, qs := range byLine {
			for _, q := range qs {
				if q.reason == "" {
					diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "lint",
						Message: "rarlint:quiescent needs a reason"})
				}
			}
		}
	}
	for filename, byLine := range m.nscaleds {
		for line, ns := range byLine {
			for _, n := range ns {
				if n.reason == "" {
					diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "lint",
						Message: "rarlint:nscaled needs a reason"})
				}
			}
		}
	}
	for filename, byLine := range m.units {
		for line, us := range byLine {
			for _, u := range us {
				if _, err := parseUnit(u.expr); err != nil {
					diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "lint",
						Message: "malformed rarlint:unit: " + err.Error()})
				}
			}
		}
	}
	for filename, byLine := range m.guardeds {
		for line, gs := range byLine {
			for _, g := range gs {
				if g.arg == "" {
					diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "lint",
						Message: "malformed rarlint:guardedby: missing lock argument (a sibling mutex field, atomic, or init)"})
				}
			}
		}
	}
	for filename, byLine := range m.lockeds {
		for line, ls := range byLine {
			for _, l := range ls {
				if l.mu == "" {
					diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "lint",
						Message: "malformed rarlint:locked: missing mutex field name"})
				}
			}
		}
	}
	return diags
}

// suppress drops diagnostics that have a well-formed matching allow
// directive on their own line or the line directly above, marking the
// directive as used for staleness accounting.
func (m *Module) suppress(diags []Diagnostic) []Diagnostic {
	matches := func(d Diagnostic, line int) bool {
		hit := false
		for _, a := range m.allows[d.Pos.Filename][line] {
			if a.check == d.Check && a.reason != "" && knownCheck(a.check) {
				a.used = true
				hit = true
			}
		}
		return hit
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Check != "lint" && (matches(d, d.Pos.Line) || matches(d, d.Pos.Line-1)) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// staleAllows reports every well-formed allow directive that suppressed
// nothing in this run. Only meaningful when every check ran: under a
// -checks filter an allow for a disabled check is dormant, not stale.
func (m *Module) staleAllows() []Diagnostic {
	var diags []Diagnostic
	for filename, byLine := range m.allows {
		for line, allows := range byLine {
			for _, a := range allows {
				if a.used || a.check == "" || !knownCheck(a.check) || a.reason == "" {
					continue // malformed ones are already reported
				}
				diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: "lint",
					Message: "stale rarlint:allow " + a.check +
						": no " + a.check + " finding on this line; remove the directive"})
			}
		}
	}
	return diags
}

// pureAt reports whether a pure directive is attached to the given line
// range (a function declaration spans its doc comment through the line
// holding the func keyword), marking matched directives used.
func (m *Module) pureAt(filename string, firstLine, lastLine int) bool {
	hit := false
	byLine := m.pures[filename]
	for line := firstLine; line <= lastLine; line++ {
		for _, d := range byLine[line] {
			d.used = true
			hit = true
		}
	}
	return hit
}

// hotAt reports whether a hot directive is attached to the given line
// range, marking matched directives used.
func (m *Module) hotAt(filename string, firstLine, lastLine int) bool {
	hit := false
	byLine := m.hots[filename]
	for line := firstLine; line <= lastLine; line++ {
		for _, d := range byLine[line] {
			d.used = true
			hit = true
		}
	}
	return hit
}

// lockedAt returns the mutex name of a locked directive attached to the
// given line range (""), marking matched directives used. Malformed
// (argument-less) directives are consumed too — they are already lint
// findings — but yield no contract.
func (m *Module) lockedAt(filename string, firstLine, lastLine int) (string, bool) {
	byLine := m.lockeds[filename]
	for line := firstLine; line <= lastLine; line++ {
		for _, d := range byLine[line] {
			if d.used {
				continue
			}
			d.used = true
			if d.mu == "" {
				return "", false
			}
			return d.mu, true
		}
	}
	return "", false
}

// takeGuarded consumes the first unused guardedby directive in the line
// range, mirroring units' field attachment (same line, else the caller
// retries the line above). Argument-less directives are consumed but
// yield no guard.
func (m *Module) takeGuarded(filename string, firstLine, lastLine int) (*guardedDecl, bool) {
	byLine := m.guardeds[filename]
	for line := firstLine; line <= lastLine; line++ {
		for _, g := range byLine[line] {
			if g.used {
				continue
			}
			g.used = true
			if g.arg == "" {
				return nil, false
			}
			return g, true
		}
	}
	return nil, false
}

// unattachedDirectives reports directives of the given kind that no
// analyzer claimed: a pure directive floating in the middle of a
// function, or a unit annotation on a line holding neither a struct
// field nor a function declaration, silently governs nothing.
func unattachedDirectives[V any](m *Module, kind string, check string,
	dirs map[string]map[int][]V, used func(V) bool) []Diagnostic {
	var diags []Diagnostic
	for filename, byLine := range dirs {
		var lines []int
		for line := range byLine {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, d := range byLine[line] {
				if used(d) {
					continue
				}
				diags = append(diags, Diagnostic{Pos: positionAt(filename, line), Check: check,
					Message: "rarlint:" + kind + " is not attached to " + attachTargets[kind]})
			}
		}
	}
	return diags
}

// attachTargets documents what each positional directive must annotate.
var attachTargets = map[string]string{
	verbPure:      "a function declaration",
	verbUnit:      "a struct field or function declaration",
	verbGuardedBy: "a struct field",
	verbLocked:    "a method declaration",
	verbHot:       "a function declaration",
	verbQuiescent: "an audited struct field declaration",
	verbNscaled:   "an audited struct field declaration",
}

// positionAt fabricates a position for directive-level diagnostics.
func positionAt(filename string, line int) token.Position {
	return token.Position{Filename: filename, Line: line, Column: 1}
}
