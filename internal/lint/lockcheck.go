package lint

// The lockcheck analyzer enforces the guarded-by discipline the
// concurrent engine front-end (sim.Engine, the disk store, serve's
// latency ring) depends on. Fields carry //rarlint:guardedby <arg> where
// arg is one of:
//
//   - the name of a sibling sync.Mutex/RWMutex field: every read or
//     write of the guarded field must happen while that mutex is
//     statically held;
//   - atomic: the field's type must come from sync/atomic, whose methods
//     are safe by construction (no further flow checking);
//   - init: the field is set before the struct is shared and never
//     mutated after (documented, not flow-checked).
//
// Mutex holding is tracked intra-procedurally and path-sensitively over
// Lock/RLock/Unlock/RUnlock and defer-Unlock: branch states merge by
// intersection (held only if held on every surviving path), loop bodies
// are analyzed from their pre-state, and function literals start with an
// empty lock state (they may run on another goroutine or after the
// caller returned). Helpers that are only ever called under the lock
// carry //rarlint:locked <mu> on their declaration: they are analyzed
// with the receiver's mutex held, and every call site is checked to
// actually hold it. Acquiring a held sync.Mutex (double lock, a
// guaranteed deadlock) and returning with a mutex held (minus deferred
// unlocks and the //rarlint:locked entry contract) are also reported.
//
// Completeness closes the loop: in any struct that has a mutex field,
// every other field must carry a guardedby annotation, so new state
// cannot be added to a concurrent struct without declaring its
// synchronization story. Constructor idiom is recognized — a local
// freshly created from a composite literal is not yet shared, so its
// fields may be touched lock-free.
//
// lockcheck skips _test.go files: tests exercise structs single-threaded
// and under the race detector.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// guardKind classifies a //rarlint:guardedby argument.
type guardKind int

const (
	guardMutex  guardKind = iota // protected by a named sibling mutex
	guardAtomic                  // a sync/atomic value
	guardInit                    // set before the struct is shared
)

// guardInfo is the resolved annotation of one guarded field.
type guardInfo struct {
	kind guardKind
	mu   string // sibling mutex field name, for guardMutex
}

// lockAnalysis holds the module-wide annotation maps for one run.
type lockAnalysis struct {
	m      *Module
	fi     *funcIndex
	guards map[*types.Var]*guardInfo
	locked map[*types.Func]string // //rarlint:locked contracts: method -> mutex field
}

func lockcheck(m *Module) []Diagnostic {
	a := &lockAnalysis{
		m:      m,
		fi:     buildFuncIndex(m),
		guards: map[*types.Var]*guardInfo{},
		locked: map[*types.Func]string{},
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: m.Fset.Position(pos), Check: "lockcheck",
			Message: fmt.Sprintf(format, args...),
		})
	}

	a.collect(report)

	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					a.checkFunc(p, fd, report)
				}
			}
		}
	}

	diags = append(diags, unattachedDirectives(m, verbGuardedBy, "lockcheck", m.guardeds,
		func(d *guardedDecl) bool { return d.used })...)
	diags = append(diags, unattachedDirectives(m, verbLocked, "lockcheck", m.lockeds,
		func(d *lockedDecl) bool { return d.used })...)
	return diags
}

// collect attaches guardedby directives to struct fields (same line,
// else the line above, consumed in line order like units) and locked
// contracts to method declarations, validates both against the actual
// struct shapes, and enforces completeness: a struct with a mutex field
// must annotate every other field.
func (a *lockAnalysis) collect(report func(token.Pos, string, ...any)) {
	type fieldDecl struct {
		line    int
		pos     token.Pos
		names   []string
		vars    []*types.Var
		isMutex bool
		atomic  bool
	}
	type structDecl struct {
		name   string
		fields []fieldDecl
	}
	for _, p := range a.m.Pkgs {
		for _, f := range p.Files {
			if a.m.isTestFile(f) {
				continue
			}
			filename := a.m.fileName(f)
			var structs []structDecl
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				sd := structDecl{name: ts.Name.Name}
				for _, fld := range st.Fields.List {
					d := fieldDecl{
						line: a.m.Fset.Position(fld.Pos()).Line,
						pos:  fld.Pos(),
					}
					for _, name := range fld.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok {
							d.names = append(d.names, name.Name)
							d.vars = append(d.vars, v)
						}
					}
					if len(d.vars) == 0 {
						continue // embedded fields carry no annotation
					}
					d.isMutex = isMutexType(d.vars[0].Type())
					d.atomic = isAtomicType(d.vars[0].Type())
					sd.fields = append(sd.fields, d)
				}
				structs = append(structs, sd)
				return true
			})
			// Structs appear sequentially in a file, so per-struct field
			// order is global line order: consuming directives struct by
			// struct preserves the consume-in-line-order contract.
			for _, sd := range structs {
				mutexNames := map[string]bool{}
				for _, fld := range sd.fields {
					if fld.isMutex {
						for _, name := range fld.names {
							mutexNames[name] = true
						}
					}
				}
				for _, fld := range sd.fields {
					g, ok := a.m.takeGuarded(filename, fld.line, fld.line)
					if !ok {
						g, ok = a.m.takeGuarded(filename, fld.line-1, fld.line-1)
					}
					if ok {
						a.attachGuard(sd.name, fld.pos, fld.vars, g.arg, fld.atomic, mutexNames, report)
					} else if len(mutexNames) > 0 && !fld.isMutex {
						report(fld.pos, "field %s of mutex-guarded struct %s has no //rarlint:guardedby annotation",
							fld.names[0], sd.name)
					}
				}
			}
			// Locked contracts attach to method declarations (func line or
			// doc comment), like pure.
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil {
					continue
				}
				funcLine := a.m.Fset.Position(fd.Pos()).Line
				first := funcLine - 1
				if fd.Doc != nil {
					first = a.m.Fset.Position(fd.Doc.Pos()).Line
				}
				mu, ok := a.m.lockedAt(filename, first, funcLine)
				if !ok {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if !recvHasMutexField(fn, mu) {
					report(fd.Pos(), "rarlint:locked %s: the receiver of %s has no sync.Mutex/RWMutex field named %s",
						mu, fd.Name.Name, mu)
					continue
				}
				a.locked[fn] = mu
			}
		}
	}
}

// attachGuard validates one guardedby annotation against its field and
// records it.
func (a *lockAnalysis) attachGuard(structName string, pos token.Pos, vars []*types.Var,
	arg string, atomicField bool, mutexNames map[string]bool, report func(token.Pos, string, ...any)) {
	var gi *guardInfo
	switch {
	case arg == "atomic":
		if !atomicField {
			report(pos, "rarlint:guardedby atomic on %s.%s, whose type %s is not from sync/atomic",
				structName, vars[0].Name(), vars[0].Type())
			return
		}
		gi = &guardInfo{kind: guardAtomic}
	case arg == "init":
		gi = &guardInfo{kind: guardInit}
	case mutexNames[arg]:
		gi = &guardInfo{kind: guardMutex, mu: arg}
	default:
		report(pos, "rarlint:guardedby %s: struct %s has no sync.Mutex/RWMutex field named %s",
			arg, structName, arg)
		return
	}
	for _, v := range vars {
		a.guards[v] = gi
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isAtomicType reports whether t is declared in sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// recvHasMutexField reports whether fn's receiver base struct has a
// mutex field with the given name.
func recvHasMutexField(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

// lockState is the set of mutexes held at a program point, keyed by the
// source expression of the mutex ("e.mu", "s.mu"), plus the set of
// mutexes with a registered deferred unlock.
type lockState struct {
	held     map[string]bool
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]bool{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k := range s.held {
		c.held[k] = true
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// mergeInto intersects other into s: a fact survives a merge only if it
// holds on every surviving path.
func (s *lockState) mergeInto(other *lockState) {
	for k := range s.held {
		if !other.held[k] {
			delete(s.held, k)
		}
	}
	for k := range s.deferred {
		if !other.deferred[k] {
			delete(s.deferred, k)
		}
	}
}

// lockOp is one Lock/Unlock-family call found while scanning an
// expression; ops apply to the state after the scan, so accesses in the
// same statement are checked against the pre-call state.
type lockOp struct {
	key     string
	acquire bool
	write   bool // Lock (vs RLock); double-acquiring a write lock deadlocks
	pos     token.Pos
}

// lockWalker runs the path-sensitive analysis over one function body.
type lockWalker struct {
	a      *lockAnalysis
	p      *Package
	fd     *ast.FuncDecl
	fresh  map[*types.Var]bool // locals freshly built from composite literals
	entry  map[string]bool     // held at entry via //rarlint:locked
	report func(token.Pos, string, ...any)
	lits   []*ast.FuncLit
}

// checkFunc analyzes one function declaration, then every function
// literal found inside it (each with an empty lock state: a literal may
// run on another goroutine or after the caller returned).
func (a *lockAnalysis) checkFunc(p *Package, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	w := &lockWalker{a: a, p: p, fd: fd, entry: map[string]bool{}, report: report}
	w.fresh = freshLocals(p, fd.Body)
	st := newLockState()
	if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		if mu, ok := a.locked[fn]; ok && fd.Recv != nil && len(fd.Recv.List[0].Names) > 0 {
			key := fd.Recv.List[0].Names[0].Name + "." + mu
			st.held[key] = true
			w.entry[key] = true
		}
	}
	w.stmt(fd.Body, st)
	for len(w.lits) > 0 {
		lit := w.lits[0]
		w.lits = w.lits[1:]
		lw := &lockWalker{a: a, p: p, fd: fd, entry: map[string]bool{}, report: report}
		lw.fresh = freshLocals(p, lit.Body)
		lw.stmt(lit.Body, newLockState())
		w.lits = append(w.lits, lw.lits...)
	}
}

// freshLocals collects local variables defined directly from a composite
// literal (`s := &diskStore{...}`): until such a value is published its
// fields are private to the constructor and need no lock.
func freshLocals(p *Package, body ast.Node) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				rhs = ast.Unparen(ue.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if v, ok := p.Info.Defs[id].(*types.Var); ok {
				fresh[v] = true
			}
		}
		return true
	})
	return fresh
}

// stmt analyzes one statement, mutating st in place; the return value
// reports whether the path terminated (return/break/continue/goto), so
// callers exclude it from merges.
func (w *lockWalker) stmt(s ast.Stmt, st *lockState) bool {
	switch n := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, sub := range n.List {
			if w.stmt(sub, st) {
				return true
			}
		}
	case *ast.ExprStmt:
		w.scan(n.X, st, true)
	case *ast.SendStmt:
		w.scan(n.Chan, st, true)
		w.scan(n.Value, st, true)
	case *ast.IncDecStmt:
		w.scan(n.X, st, true)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			w.scan(e, st, true)
		}
		for _, e := range n.Lhs {
			w.scan(e, st, true)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scan(e, st, true)
					}
				}
			}
		}
	case *ast.DeferStmt:
		if key, release := unlockCallKey(w.p, n.Call); release {
			st.deferred[key] = true
			return false
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		} else {
			// The deferred call runs at return time with unknowable lock
			// state; only its arguments are evaluated now.
			w.scan(n.Call.Fun, st, false)
		}
		for _, arg := range n.Call.Args {
			w.scan(arg, st, true)
		}
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		} else {
			w.scan(n.Call.Fun, st, false)
		}
		for _, arg := range n.Call.Args {
			w.scan(arg, st, true)
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			w.scan(e, st, true)
		}
		for key := range st.held {
			if !st.deferred[key] && !w.entry[key] {
				w.report(n.Pos(), "returns with %s held", key)
			}
		}
		return true
	case *ast.IfStmt:
		w.stmt(n.Init, st)
		w.scan(n.Cond, st, true)
		thenSt := st.clone()
		thenTerm := w.stmt(n.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if n.Else != nil {
			elseTerm = w.stmt(n.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			thenSt.mergeInto(elseSt)
			*st = *thenSt
		}
	case *ast.ForStmt:
		w.stmt(n.Init, st)
		w.scan(n.Cond, st, true)
		// The body is analyzed once from the pre-state; the post-loop
		// state is the pre-state (zero-iteration path).
		body := st.clone()
		w.stmt(n.Body, body)
		w.stmt(n.Post, body)
	case *ast.RangeStmt:
		w.scan(n.X, st, true)
		body := st.clone()
		w.stmt(n.Body, body)
	case *ast.SwitchStmt:
		w.stmt(n.Init, st)
		w.scan(n.Tag, st, true)
		w.caseMerge(n.Body, st, false)
	case *ast.TypeSwitchStmt:
		w.stmt(n.Init, st)
		w.stmt(n.Assign, st)
		w.caseMerge(n.Body, st, false)
	case *ast.SelectStmt:
		w.caseMerge(n.Body, st, true)
	case *ast.BranchStmt:
		return true
	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, st)
	}
	return false
}

// caseMerge analyzes a switch/select body: each clause runs from a clone
// of the incoming state and the surviving states intersect. A switch
// without a default can fall through untouched, so the pre-state joins
// the merge; a select always executes one of its clauses.
func (w *lockWalker) caseMerge(body *ast.BlockStmt, st *lockState, isSelect bool) {
	var survivors []*lockState
	hasDefault := false
	for _, clause := range body.List {
		arm := st.clone()
		term := false
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scan(e, st, true)
			}
			for _, sub := range c.Body {
				if term = w.stmt(sub, arm); term {
					break
				}
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			term = w.stmt(c.Comm, arm)
			for _, sub := range c.Body {
				if term {
					break
				}
				term = w.stmt(sub, arm)
			}
		}
		if !term {
			survivors = append(survivors, arm)
		}
	}
	if !isSelect && !hasDefault {
		survivors = append(survivors, st.clone())
	}
	if len(survivors) == 0 {
		return // every arm terminated; the post-state is unreachable
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged.mergeInto(s)
	}
	*st = *merged
}

// scan inspects one expression: guarded-field accesses are checked
// against st, locked-contract call sites are verified, function literals
// are queued for empty-state analysis, and Lock/Unlock-family calls are
// collected and — when apply is set — applied to st afterwards.
func (w *lockWalker) scan(e ast.Expr, st *lockState, apply bool) {
	if e == nil {
		return
	}
	var ops []lockOp
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, n)
			return false
		case *ast.CallExpr:
			if op, ok := mutexOp(w.p, n); ok {
				if op.acquire && op.write && st.held[op.key] {
					w.report(op.pos, "locks %s twice (guaranteed deadlock)", op.key)
				}
				ops = append(ops, op)
				for _, arg := range n.Args {
					w.scan(arg, st, apply)
				}
				return false
			}
			w.checkLockedCall(n, st)
			return true
		case *ast.SelectorExpr:
			w.checkAccess(n, st)
			return true
		}
		return true
	})
	if !apply {
		return
	}
	for _, op := range ops {
		if op.acquire {
			st.held[op.key] = true
		} else {
			delete(st.held, op.key)
		}
	}
}

// checkAccess reports a read or write of a mutex-guarded field while its
// mutex is not statically held.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, st *lockState) {
	v, ok := w.p.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	g := w.a.guards[v]
	if g == nil || g.kind != guardMutex {
		return
	}
	base := ast.Unparen(sel.X)
	if w.isFresh(base) {
		return
	}
	key := types.ExprString(base) + "." + g.mu
	if st.held[key] {
		return
	}
	w.report(sel.Sel.Pos(), "accesses %s without holding %s (//rarlint:guardedby %s)",
		types.ExprString(sel), key, g.mu)
}

// checkLockedCall verifies a call to a //rarlint:locked method actually
// holds the receiver's mutex.
func (w *lockWalker) checkLockedCall(call *ast.CallExpr, st *lockState) {
	fn := calleeFunc(w.p, call)
	if fn == nil {
		return
	}
	mu, ok := w.a.locked[fn]
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return // method expression/value: receiver unknown here
	}
	base := ast.Unparen(sel.X)
	if w.isFresh(base) {
		return
	}
	key := types.ExprString(base) + "." + mu
	if st.held[key] {
		return
	}
	w.report(call.Pos(), "calls %s without holding %s (//rarlint:locked %s)",
		funcName(w.p, fn), key, mu)
}

// isFresh reports whether expr is rooted at a constructor-fresh local.
func (w *lockWalker) isFresh(expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			v, ok := identVar(w.p, e)
			return ok && w.fresh[v]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// mutexOp recognizes a call to a sync mutex's Lock/RLock/Unlock/RUnlock
// method and derives the lock-state key from the receiver expression.
// TryLock/TryRLock are ignored: their acquisition is conditional on the
// return value, which this analysis does not model.
func mutexOp(p *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire, write bool
	switch sel.Sel.Name {
	case "Lock":
		acquire, write = true, true
	case "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockOp{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	return lockOp{
		key:     types.ExprString(ast.Unparen(sel.X)),
		acquire: acquire,
		write:   write,
		pos:     call.Pos(),
	}, true
}

// unlockCallKey recognizes `x.mu.Unlock()` (for defer registration) and
// returns its lock-state key.
func unlockCallKey(p *Package, call *ast.CallExpr) (string, bool) {
	op, ok := mutexOp(p, call)
	if !ok || op.acquire {
		return "", false
	}
	return op.key, true
}
