// Package serve is the simulation-as-a-service layer: an HTTP facade
// over the memoizing sim.Engine. Clients POST (cores × schemes ×
// benches × options) matrix requests; the server decomposes them into
// cells and runs them through one shared engine and one shared bounded
// worker pool, so
//
//   - identical cells dedup *across concurrent requests* (the engine's
//     singleflight), two users asking for the baseline OoO row share one
//     simulation;
//   - total simulation concurrency is a server property (the pool), not
//     a per-request one — requests queue instead of oversubscribing;
//   - results revalidate by content: the ETag derives from the schema
//     hash and the cells' config hashes, so If-None-Match answers 304
//     without touching the cache or the pool (simulation results are
//     deterministic in the request identity);
//   - failing cells are answered 503 + Retry-After from the engine's
//     negative cache instead of re-simulating per request.
//
// Endpoints: POST /matrix, GET /metrics (JSON counters: engine, pool,
// HTTP, latency percentiles), GET /healthz.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// Runner is the slice of *sim.Engine the server consumes; tests inject
// failing fakes through it.
type Runner interface {
	RunMatrixOn(pool *sim.Pool, cores []config.Core, schemes []config.Scheme, benches []trace.Benchmark, opt sim.Options) (*sim.ResultSet, error)
	Metrics() sim.Metrics
}

// Server handles matrix requests against one engine and one pool. Use
// New; the zero value is not usable.
type Server struct {
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests (and the simulation cells they hold) after its
	// context is cancelled. Zero means 30s. Set before Serve.
	DrainTimeout time.Duration //rarlint:guardedby init

	engine Runner         //rarlint:guardedby init
	pool   *sim.Pool      //rarlint:guardedby init
	mux    *http.ServeMux //rarlint:guardedby init
	lat    latencyRing    //rarlint:guardedby init  internally locked

	requests    atomic.Uint64 //rarlint:guardedby atomic  POST /matrix requests accepted for processing
	okResponses atomic.Uint64 //rarlint:guardedby atomic  200s
	notModified atomic.Uint64 //rarlint:guardedby atomic  304s
	clientErrs  atomic.Uint64 //rarlint:guardedby atomic  4xx
	unavailable atomic.Uint64 //rarlint:guardedby atomic  503s (negative-cached cell failures)
	serverErrs  atomic.Uint64 //rarlint:guardedby atomic  other 5xx
	cellsServed atomic.Uint64 //rarlint:guardedby atomic  cells across all 200s
}

// New returns a server over engine, bounding all simulation work by
// pool (nil = unbounded; every request brings its own parallelism).
func New(engine Runner, pool *sim.Pool) *Server {
	s := &Server{engine: engine, pool: pool}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/matrix", s.handleMatrix)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is cancelled, then shuts
// down gracefully: the listener closes immediately, but in-flight
// requests — and the simulation cells they hold in the pool — drain to
// completion (bounded by DrainTimeout) so no accepted request is ever
// dropped mid-simulation.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	timeout := s.DrainTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return hs.Shutdown(drainCtx)
}

// handleMatrix is POST /matrix: validate, revalidate (ETag), simulate,
// respond.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	// Host-side request timing for the /metrics latency percentiles
	// (every outcome counts — queueing shows up in errors too); never
	// enters simulated state.
	start := time.Now()                                //rarlint:allow determinism host-side request latency metric
	defer func() { s.lat.record(time.Since(start)) }() //rarlint:allow determinism host-side request latency metric
	if r.Method != http.MethodPost {
		s.clientErrs.Add(1)
		writeError(w, http.StatusMethodNotAllowed, "POST a MatrixRequest JSON body")
		return
	}
	var req MatrixRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.clientErrs.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	spec, err := resolve(req)
	if err != nil {
		s.clientErrs.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.requests.Add(1)

	etag := sim.MatrixETag(spec.keys)
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		// The tag is derived from the request identity and results are
		// deterministic in it, so the client's copy is current by
		// construction — no cache lookup, no simulation.
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	rs, err := s.engine.RunMatrixOn(s.pool, spec.cores, spec.schemes, spec.benches, spec.opt)
	if err != nil {
		var fce *sim.FailedCellError
		if errors.As(err, &fce) {
			// The engine's negative cache is holding a recent failure:
			// tell clients when retrying could possibly help.
			s.unavailable.Add(1)
			secs := int64(fce.RetryAfter/time.Second) + 1
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		s.serverErrs.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	cells, err := spec.cells(rs)
	if err != nil {
		s.serverErrs.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.okResponses.Add(1)
	s.cellsServed.Add(uint64(len(cells)))
	writeJSON(w, http.StatusOK, MatrixResponse{
		SchemaHash: sim.SchemaHash(),
		ETag:       etag,
		Cells:      cells,
	})
}

// Snapshot is the GET /metrics body: engine counters, pool gauges and
// HTTP-level accounting. Warm/cold behaviour reads directly off the
// engine block — Simulated counts cold cells, Hits/DiskHits warm ones.
type Snapshot struct {
	Engine EngineCounters `json:"engine"`
	Pool   PoolGauges     `json:"pool"`
	HTTP   HTTPCounters   `json:"http"`
}

// EngineCounters mirrors sim.Metrics for the wire.
type EngineCounters struct {
	Simulated   uint64  `json:"simulated"`
	Hits        uint64  `json:"hits"`
	DiskHits    uint64  `json:"diskHits"`
	ErrHits     uint64  `json:"errHits"`
	Errors      uint64  `json:"errors"`
	Unique      int     `json:"unique"`
	SimSeconds  float64 `json:"simSeconds"`
	DiskEntries int     `json:"diskEntries"`
	DiskBytes   int64   `json:"diskBytes"`
	Evicted     uint64  `json:"evicted"`
}

// PoolGauges reports the shared worker pool: queue depth vs in-flight
// simulation work.
type PoolGauges struct {
	Size   int `json:"size"`
	Active int `json:"active"`
	Queued int `json:"queued"`
}

// HTTPCounters reports request-level accounting and latency.
type HTTPCounters struct {
	MatrixRequests uint64  `json:"matrixRequests"`
	OK             uint64  `json:"ok"`
	NotModified    uint64  `json:"notModified"`
	ClientErrors   uint64  `json:"clientErrors"`
	Unavailable    uint64  `json:"unavailable"`
	ServerErrors   uint64  `json:"serverErrors"`
	CellsServed    uint64  `json:"cellsServed"`
	P50Millis      float64 `json:"p50Millis"`
	P99Millis      float64 `json:"p99Millis"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m := s.engine.Metrics()
	p50, p99 := s.lat.percentiles()
	writeJSON(w, http.StatusOK, Snapshot{
		Engine: EngineCounters{
			Simulated:   m.Simulated,
			Hits:        m.Hits,
			DiskHits:    m.DiskHits,
			ErrHits:     m.ErrHits,
			Errors:      m.Errors,
			Unique:      m.Unique,
			SimSeconds:  m.SimTime.Seconds(),
			DiskEntries: m.DiskEntries,
			DiskBytes:   m.DiskBytes,
			Evicted:     m.Evicted,
		},
		Pool: PoolGauges{
			Size:   s.pool.Size(),
			Active: s.pool.Active(),
			Queued: s.pool.Queued(),
		},
		HTTP: HTTPCounters{
			MatrixRequests: s.requests.Load(),
			OK:             s.okResponses.Load(),
			NotModified:    s.notModified.Load(),
			ClientErrors:   s.clientErrs.Load(),
			Unavailable:    s.unavailable.Load(),
			ServerErrors:   s.serverErrs.Load(),
			CellsServed:    s.cellsServed.Load(),
			P50Millis:      float64(p50) / float64(time.Millisecond),
			P99Millis:      float64(p99) / float64(time.Millisecond),
		},
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags, or "*" for "any".
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" || candidate == etag {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The response writer's errors mirror the client connection's state;
	// a vanished client is not a server failure.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
