package serve

// End-to-end tests over httptest: real engine, real simulations (tiny
// cells), concurrent requests. Run under -race via `make ci`, these are
// the server's concurrency contract: cross-request dedup, ETag
// revalidation, negative-cache 503s, graceful drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// testRequest is a 4-cell matrix small enough to simulate in
// milliseconds: 1 core × 2 schemes × 2 benches.
func testRequest() MatrixRequest {
	return MatrixRequest{
		Cores:        []string{"baseline"},
		Schemes:      []string{"OoO", "RAR"},
		Benches:      []string{"libquantum", "mcf"},
		Instructions: 1500,
		Warmup:       300,
		Seed:         7,
	}
}

func newTestServer(t *testing.T) (*Server, *sim.Engine, *httptest.Server) {
	t.Helper()
	eng := sim.NewEngine()
	srv := New(eng, sim.NewPool(4))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, eng, ts
}

// post sends req as JSON to url and returns status, headers and body.
func post(t *testing.T, url string, req MatrixRequest, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestMatrixDedupAcrossRequests fires concurrent identical matrix POSTs:
// every request gets the full result, but the engine must simulate each
// unique cell exactly once — the in-flight singleflight and memo cache
// span requests because they live in the shared engine.
func TestMatrixDedupAcrossRequests(t *testing.T) {
	_, eng, ts := newTestServer(t)
	req := testRequest()

	const clients = 4
	bodies := make([][]byte, clients)
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, bodies[i] = post(t, ts.URL+"/matrix", req, nil)
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d got a different body than client 0", i)
		}
	}
	var resp MatrixResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatal(err)
	}
	uniqueCells := uint64(len(req.Schemes) * len(req.Benches))
	if len(resp.Cells) != int(uniqueCells) {
		t.Fatalf("response has %d cells, want %d", len(resp.Cells), uniqueCells)
	}
	for _, c := range resp.Cells {
		if c.Committed != req.Instructions || c.IPC <= 0 {
			t.Errorf("cell %s/%s/%s: committed=%d ipc=%v", c.Core, c.Scheme, c.Bench, c.Committed, c.IPC)
		}
	}
	m := eng.Metrics()
	if m.Simulated != uniqueCells {
		t.Errorf("engine simulated %d cells for %d requests, want %d (cross-request dedup)",
			m.Simulated, clients, uniqueCells)
	}
	if m.Hits != uniqueCells*(clients-1) {
		t.Errorf("hits = %d, want %d", m.Hits, uniqueCells*(clients-1))
	}
}

// TestETagRevalidation: the response carries a strong ETag; replaying
// the request with If-None-Match returns 304 with no body and no new
// simulation; a different request misses.
func TestETagRevalidation(t *testing.T) {
	_, eng, ts := newTestServer(t)
	req := testRequest()

	status, hdr, _ := post(t, ts.URL+"/matrix", req, nil)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("200 response carries no ETag")
	}
	simmed := eng.Metrics().Simulated

	status, hdr, body := post(t, ts.URL+"/matrix", req, map[string]string{"If-None-Match": etag})
	if status != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", status)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a body: %q", body)
	}
	if hdr.Get("ETag") != etag {
		t.Errorf("304 ETag %q != original %q", hdr.Get("ETag"), etag)
	}
	if m := eng.Metrics(); m.Simulated != simmed || m.Hits != 0 {
		t.Errorf("revalidation touched the engine: %+v", m)
	}

	// A changed request must not match the old tag.
	req2 := req
	req2.Seed++
	status, hdr2, _ := post(t, ts.URL+"/matrix", req2, map[string]string{"If-None-Match": etag})
	if status != http.StatusOK {
		t.Fatalf("changed request status %d, want 200", status)
	}
	if hdr2.Get("ETag") == etag {
		t.Error("changed request reused the old ETag")
	}
}

// TestValidation: unknown names are 400s that list the valid
// vocabulary; oversized matrices and junk bodies are 400s too.
func TestValidation(t *testing.T) {
	_, eng, ts := newTestServer(t)

	req := testRequest()
	req.Benches = []string{"no-such-bench"}
	status, _, body := post(t, ts.URL+"/matrix", req, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown bench: status %d", status)
	}
	if !bytes.Contains(body, []byte("no-such-bench")) || !bytes.Contains(body, []byte("libquantum")) {
		t.Errorf("error %s does not name the bad bench and the valid ones", body)
	}

	req = testRequest()
	req.Schemes = []string{"RAR", "WRONG"}
	if status, _, _ = post(t, ts.URL+"/matrix", req, nil); status != http.StatusBadRequest {
		t.Errorf("unknown scheme: status %d", status)
	}
	req = testRequest()
	req.Cores = []string{"core-99"}
	if status, _, _ = post(t, ts.URL+"/matrix", req, nil); status != http.StatusBadRequest {
		t.Errorf("unknown core: status %d", status)
	}

	resp, err := http.Post(ts.URL+"/matrix", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk body: status %d", resp.StatusCode)
	}

	if m := eng.Metrics(); m.Simulated != 0 || m.Errors != 0 {
		t.Errorf("validation failures reached the engine: %+v", m)
	}
}

// failingRunner fakes an engine whose matrix is held in the negative
// cache: every run fails with a FailedCellError.
type failingRunner struct {
	retryAfter time.Duration
}

func (f *failingRunner) RunMatrixOn(*sim.Pool, []config.Core, []config.Scheme, []trace.Benchmark, sim.Options) (*sim.ResultSet, error) {
	fce := &sim.FailedCellError{Err: errors.New("boom"), RetryAfter: f.retryAfter}
	return nil, fmt.Errorf("sim: 1 cell(s) failed: %w", fce)
}

func (f *failingRunner) Metrics() sim.Metrics { return sim.Metrics{} }

// TestFailedCellIs503WithRetryAfter: a FailedCellError anywhere in the
// matrix error chain surfaces as 503 + Retry-After, the HTTP face of
// the engine's negative cache.
func TestFailedCellIs503WithRetryAfter(t *testing.T) {
	srv := New(&failingRunner{retryAfter: 42 * time.Second}, sim.NewPool(1))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status, hdr, body := post(t, ts.URL+"/matrix", testRequest(), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", status, body)
	}
	if got := hdr.Get("Retry-After"); got != "43" {
		t.Errorf("Retry-After = %q, want %q (ceil of 42s)", got, "43")
	}
	if !bytes.Contains(body, []byte("boom")) {
		t.Errorf("error body %s does not carry the cause", body)
	}
}

// slowRunner gates RunMatrixOn so the test can hold a request in flight
// across a shutdown.
type slowRunner struct {
	*sim.Engine
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *slowRunner) RunMatrixOn(p *sim.Pool, cores []config.Core, schemes []config.Scheme, benches []trace.Benchmark, opt sim.Options) (*sim.ResultSet, error) {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return s.Engine.RunMatrixOn(p, cores, schemes, benches, opt)
}

// TestGracefulShutdownDrains: cancelling Serve's context while a matrix
// request is mid-simulation must not drop the response — the listener
// closes, the in-flight request completes with 200, and Serve returns
// cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	runner := &slowRunner{
		Engine:  sim.NewEngine(),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	srv := New(runner, sim.NewPool(2))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, _, body := post(t, url+"/matrix", testRequest(), nil)
		done <- result{status, body}
	}()

	<-runner.entered // the request is inside the (gated) simulation
	cancel()         // begin graceful shutdown while it is in flight
	time.Sleep(50 * time.Millisecond)
	close(runner.release)

	res := <-done
	if res.status != http.StatusOK {
		t.Errorf("in-flight request during shutdown: status %d, body %s", res.status, res.body)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestMetricsEndpoint: /metrics reflects engine and HTTP activity, and
// shows the cold→warm split after a repeated request.
func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t)
	req := testRequest()
	for i := 0; i < 2; i++ {
		if status, _, body := post(t, ts.URL+"/matrix", req, nil); status != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d err %v", resp.StatusCode, err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics body %s: %v", data, err)
	}
	cells := uint64(len(req.Schemes) * len(req.Benches))
	if snap.Engine.Simulated != cells {
		t.Errorf("simulated = %d, want %d", snap.Engine.Simulated, cells)
	}
	if snap.Engine.Hits != cells {
		t.Errorf("hits = %d, want %d (second request fully warm)", snap.Engine.Hits, cells)
	}
	if snap.HTTP.MatrixRequests != 2 || snap.HTTP.OK != 2 || snap.HTTP.CellsServed != 2*cells {
		t.Errorf("http counters = %+v", snap.HTTP)
	}
	if snap.HTTP.P50Millis <= 0 || snap.HTTP.P99Millis < snap.HTTP.P50Millis {
		t.Errorf("latency percentiles p50=%v p99=%v", snap.HTTP.P50Millis, snap.HTTP.P99Millis)
	}
	if snap.Pool.Size != 4 {
		t.Errorf("pool size = %d, want 4", snap.Pool.Size)
	}
}
