package serve

// Request schema and validation for the matrix server. A request names
// built-in configurations — cores, schemes, benchmarks — by the same
// names the CLIs use, and the resolver maps them onto the actual config
// structs (whose *content*, not name, feeds the engine's cache keys and
// the response ETag). Unknown names fail fast with the full list of
// valid ones, so the API is discoverable from its error messages.

import (
	"fmt"
	"strings"

	"rarsim/internal/config"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// maxCells bounds one request's matrix so a single client cannot queue
// an unbounded amount of simulation behind one POST. Bigger studies
// split into several requests and still dedup/cache server-side.
const maxCells = 4096

// MatrixRequest is the POST /matrix body. Empty lists select defaults:
// the baseline core, the five headline schemes, and the memory-intensive
// suite. Zero Instructions means the standard 1M-instruction cell;
// zero Warmup means Instructions/5 (the CLI convention). Seed is used
// as given.
type MatrixRequest struct {
	Cores        []string `json:"cores,omitempty"`
	Schemes      []string `json:"schemes,omitempty"`
	Benches      []string `json:"benches,omitempty"`
	Instructions uint64   `json:"instructions,omitempty"`
	Warmup       uint64   `json:"warmup,omitempty"`
	Seed         uint64   `json:"seed,omitempty"`
}

// CellResult is one simulated cell of the response, in request order
// (cores outermost, then schemes, then benches).
type CellResult struct {
	Core   string `json:"core"`
	Scheme string `json:"scheme"`
	Bench  string `json:"bench"`
	// ETag revalidates this cell alone (the response ETag covers the
	// whole matrix).
	ETag string `json:"etag"`

	IPC       float64 `json:"ipc"`
	MLP       float64 `json:"mlp"`
	MPKI      float64 `json:"mpki"`
	AVF       float64 `json:"avf"`
	Cycles    uint64  `json:"cycles"`
	Committed uint64  `json:"committed"`
	TotalABC  uint64  `json:"totalABC"`
	TotalBits uint64  `json:"totalBits"`
}

// MatrixResponse is the POST /matrix success body.
type MatrixResponse struct {
	// SchemaHash identifies the build's struct shapes (the same hash that
	// versions the persistent cache); results from different schema
	// hashes are not comparable.
	SchemaHash string       `json:"schemaHash"`
	ETag       string       `json:"etag"`
	Cells      []CellResult `json:"cells"`
}

// matrixSpec is a resolved, validated request.
type matrixSpec struct {
	cores   []config.Core
	schemes []config.Scheme
	benches []trace.Benchmark
	opt     sim.Options
	keys    []sim.CellKey // cell identities in response order
}

// resolve validates a request and maps its names onto built-in configs.
func resolve(req MatrixRequest) (*matrixSpec, error) {
	spec := &matrixSpec{}

	if len(req.Cores) == 0 {
		spec.cores = []config.Core{config.Baseline()}
	}
	for _, name := range req.Cores {
		c, err := coreByName(name)
		if err != nil {
			return nil, err
		}
		spec.cores = append(spec.cores, c)
	}

	if len(req.Schemes) == 0 {
		spec.schemes = config.Schemes()
	}
	for _, name := range req.Schemes {
		s, err := config.SchemeByName(name)
		if err != nil {
			return nil, fmt.Errorf("unknown scheme %q (valid: %s)", name, strings.Join(schemeNames(), ", "))
		}
		spec.schemes = append(spec.schemes, s)
	}

	if len(req.Benches) == 0 {
		spec.benches = trace.MemoryIntensive()
	}
	for _, name := range req.Benches {
		b, err := trace.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("unknown benchmark %q (valid: %s)", name, strings.Join(trace.Names(), ", "))
		}
		spec.benches = append(spec.benches, b)
	}

	cells := len(spec.cores) * len(spec.schemes) * len(spec.benches)
	if cells > maxCells {
		return nil, fmt.Errorf("matrix of %d cells exceeds the per-request limit of %d; split the request", cells, maxCells)
	}

	spec.opt = sim.Options{Instructions: req.Instructions, Warmup: req.Warmup, Seed: req.Seed}
	if spec.opt.Instructions == 0 {
		spec.opt.Instructions = sim.DefaultOptions().Instructions
	}
	if spec.opt.Warmup == 0 {
		spec.opt.Warmup = spec.opt.Instructions / 5
	}

	spec.keys = make([]sim.CellKey, 0, cells)
	for _, c := range spec.cores {
		for _, s := range spec.schemes {
			for _, b := range spec.benches {
				spec.keys = append(spec.keys, sim.KeyFor(c, s, b, spec.opt))
			}
		}
	}
	return spec, nil
}

// cells assembles the response cells from a completed result set, in the
// same order the keys were enumerated.
func (spec *matrixSpec) cells(rs *sim.ResultSet) ([]CellResult, error) {
	out := make([]CellResult, 0, len(spec.keys))
	i := 0
	for _, c := range spec.cores {
		for _, s := range spec.schemes {
			for _, b := range spec.benches {
				st, ok := rs.Stats(c.Name, s.Name, b.Name)
				if !ok {
					return nil, fmt.Errorf("result set is missing cell %s/%s/%s", c.Name, s.Name, b.Name)
				}
				out = append(out, CellResult{
					Core:      c.Name,
					Scheme:    s.Name,
					Bench:     b.Name,
					ETag:      spec.keys[i].ETag(),
					IPC:       st.IPC(),
					MLP:       st.Mem.MLP(),
					MPKI:      st.MPKI(),
					AVF:       st.AVF(),
					Cycles:    st.Cycles,
					Committed: st.Committed,
					TotalABC:  st.TotalABC,
					TotalBits: st.TotalBits,
				})
				i++
			}
		}
	}
	return out, nil
}

// coreByName maps a core configuration name the way cmd/rarsim does:
// "baseline" plus the four Table I scaling configurations.
func coreByName(name string) (config.Core, error) {
	if name == "baseline" {
		return config.Baseline(), nil
	}
	for _, c := range config.ScaledCores() {
		if c.Name == name {
			return c, nil
		}
	}
	return config.Core{}, fmt.Errorf("unknown core %q (valid: %s)", name, strings.Join(coreNames(), ", "))
}

func coreNames() []string {
	out := []string{"baseline"}
	for _, c := range config.ScaledCores() {
		out = append(out, c.Name)
	}
	return out
}

func schemeNames() []string {
	out := []string{config.OoO.Name}
	for _, s := range config.RunaheadVariants() {
		out = append(out, s.Name)
	}
	return out
}
