package serve

// Request-latency tracking: a fixed ring of the most recent matrix
// request durations, summarised as p50/p99 on demand. A ring (rather
// than an unbounded log or a decaying histogram) keeps the server
// allocation-free per request and the percentiles representative of
// *recent* traffic — exactly what the cold→warm latency drop should
// show up in.

import (
	"sort"
	"sync"
	"time"
)

const latencyWindow = 1024

type latencyRing struct {
	mu  sync.Mutex
	buf [latencyWindow]time.Duration //rarlint:guardedby mu
	n   uint64                       //rarlint:guardedby mu  total recorded; buf[i] valid for i < min(n, latencyWindow)
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%latencyWindow] = d
	r.n++
	r.mu.Unlock()
}

// percentiles returns the p50 and p99 of the recorded window (zeros when
// nothing has been recorded yet).
func (r *latencyRing) percentiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	n := int(r.n)
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]time.Duration, n)
	copy(window, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[(n-1)*50/100], window[(n-1)*99/100]
}
