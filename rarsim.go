// Package rarsim is a cycle-level out-of-order core simulator that
// reproduces "Reliability-Aware Runahead" (Naithani & Eeckhout, HPCA
// 2022): runahead execution variants — traditional runahead, Precise
// Runahead Execution (PRE), and Reliability-Aware Runahead (RAR) — with
// full ACE-bit soft-error vulnerability accounting, a TAGE front-end, a
// three-level cache hierarchy with a DDR3-style DRAM model, and a
// deterministic synthetic SPEC-like workload suite.
//
// Quick start:
//
//	st, err := rarsim.Run(rarsim.BaselineConfig(), rarsim.RAR, "mcf", rarsim.DefaultOptions())
//	if err != nil { ... }
//	fmt.Println(st.IPC(), st.TotalABC)
//
// For paper-style comparisons, run a matrix and read normalised metrics:
//
//	rs, err := rarsim.RunMatrix(
//		[]rarsim.CoreConfig{rarsim.BaselineConfig()},
//		rarsim.Schemes(),
//		rarsim.MemoryIntensiveBenchmarks(),
//		rarsim.DefaultOptions())
//	mttf := rs.MTTF("baseline", "RAR", "mcf") // normalised to OoO
//
// The cmd/experiments binary regenerates every table and figure of the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package rarsim

import (
	"sync"

	"rarsim/internal/ace"
	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/energy"
	"rarsim/internal/inject"
	"rarsim/internal/mem"
	"rarsim/internal/multicore"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// CoreConfig describes a simulated core (sizes, functional units, memory
// hierarchy). See BaselineConfig and ScaledConfigs.
type CoreConfig = config.Core

// Scheme selects the evaluated mechanism (OoO baseline, FLUSH, TR, PRE,
// RAR, ...).
type Scheme = config.Scheme

// Stats is the result of one simulation run.
type Stats = core.Stats

// Options controls simulation length, seeding and parallelism.
type Options = sim.Options

// ResultSet holds a completed experiment matrix with normalised-metric
// accessors.
type ResultSet = sim.ResultSet

// Benchmark is a synthetic workload description.
type Benchmark = trace.Benchmark

// PrefetchMode selects hardware-prefetcher placement for CoreConfig.WithPrefetch.
type PrefetchMode = mem.PrefetchMode

// Prefetcher placements (Figure 11).
const (
	PrefetchOff = mem.PrefetchOff
	PrefetchL3  = mem.PrefetchL3
	PrefetchAll = mem.PrefetchAll
)

// The evaluated schemes (§V, Table IV).
var (
	OoO      = config.OoO
	FLUSH    = config.FLUSH
	TR       = config.TR
	TREarly  = config.TREarly
	PRE      = config.PRE
	PREEarly = config.PREEarly
	RARLate  = config.RARLate
	RAR      = config.RAR
)

// BaselineConfig returns the paper's Table II baseline core.
func BaselineConfig() CoreConfig { return config.Baseline() }

// ScaledConfigs returns the four Table I configurations (Core-1..Core-4).
func ScaledConfigs() []CoreConfig { return config.ScaledCores() }

// Schemes returns the five headline configurations of §V.
func Schemes() []Scheme { return config.Schemes() }

// RunaheadVariants returns the Table IV design space plus FLUSH (Fig. 9).
func RunaheadVariants() []Scheme { return config.RunaheadVariants() }

// SchemeByName looks a scheme up by its paper name ("RAR", "PRE", ...).
func SchemeByName(name string) (Scheme, error) { return config.SchemeByName(name) }

// Benchmarks returns the full synthetic suite, memory-intensive first.
func Benchmarks() []Benchmark { return trace.All() }

// MemoryIntensiveBenchmarks returns the MPKI>8 suite the paper's headline
// results use.
func MemoryIntensiveBenchmarks() []Benchmark { return trace.MemoryIntensive() }

// ComputeIntensiveBenchmarks returns the compute-intensive foil suite.
func ComputeIntensiveBenchmarks() []Benchmark { return trace.ComputeIntensive() }

// BenchmarkByName looks a benchmark up by name ("mcf", "lbm", ...).
func BenchmarkByName(name string) (Benchmark, error) { return trace.ByName(name) }

// BenchmarkNames returns the names of all benchmarks.
func BenchmarkNames() []string { return trace.Names() }

// DefaultOptions returns a 1M-instruction deterministic configuration.
func DefaultOptions() Options { return sim.DefaultOptions() }

// Run simulates one (config, scheme, benchmark) cell.
func Run(cfg CoreConfig, scheme Scheme, benchName string, opt Options) (Stats, error) {
	b, err := trace.ByName(benchName)
	if err != nil {
		return Stats{}, err
	}
	return sim.Run(cfg, scheme, b, opt)
}

// RunMatrix simulates every combination in parallel. Include the OoO
// scheme if you want normalised metrics from the ResultSet. Identical
// cells within the matrix are simulated once; nothing is shared across
// calls — see RunMatrixCached and Engine for cross-call memoization.
func RunMatrix(cores []CoreConfig, schemes []Scheme, benches []Benchmark, opt Options) (*ResultSet, error) {
	return sim.RunMatrix(cores, schemes, benches, opt)
}

// Engine is a concurrency-safe memoizing simulation engine: each unique
// (core config, scheme, benchmark, options) cell is simulated at most
// once per engine, across any number of Run/RunMatrix calls. See
// NewEngine and NewPersistentEngine.
type Engine = sim.Engine

// EngineMetrics snapshots an Engine's hit/miss/sim-time counters.
type EngineMetrics = sim.Metrics

// CellProgress describes one completed cell lookup; see Engine.OnCell.
type CellProgress = sim.CellProgress

// CellKey is the full identity of a simulation cell, hashing the
// complete core configuration, scheme and benchmark definition alongside
// the simulation options.
type CellKey = sim.CellKey

// NewEngine returns a memory-only memoizing engine.
func NewEngine() *Engine { return sim.NewEngine() }

// NewPersistentEngine returns an engine that also persists every
// simulated cell as JSON under dir (versioned by a schema hash, so
// entries from incompatible builds self-invalidate) and warm-starts from
// entries found there.
func NewPersistentEngine(dir string) (*Engine, error) { return sim.NewPersistentEngine(dir) }

// defaultEngine backs RunMatrixCached: one process-wide memo shared by
// every caller that does not manage its own Engine.
var (
	defaultEngine     *Engine
	defaultEngineOnce sync.Once
)

// RunMatrixCached is RunMatrix through a process-wide shared Engine:
// cells already simulated by any earlier RunMatrixCached call — in this
// or any other matrix shape — are cache hits. Use a dedicated Engine for
// isolation or on-disk persistence.
func RunMatrixCached(cores []CoreConfig, schemes []Scheme, benches []Benchmark, opt Options) (*ResultSet, error) {
	defaultEngineOnce.Do(func() { defaultEngine = sim.NewEngine() })
	return defaultEngine.RunMatrix(cores, schemes, benches, opt)
}

// InjectionCampaign configures a statistical fault-injection run: random
// (cycle, structure, entry) soft-error strikes classified by the fate of
// the struck state. See internal/inject for methodology; the empirical
// AVF cross-validates the ACE-analysis ledger.
type InjectionCampaign = inject.Campaign

// InjectionResult is the outcome of an injection campaign.
type InjectionResult = inject.Result

// RunInjection executes a fault-injection campaign for one cell.
func RunInjection(cfg CoreConfig, scheme Scheme, benchName string, camp InjectionCampaign) (InjectionResult, error) {
	b, err := trace.ByName(benchName)
	if err != nil {
		return InjectionResult{}, err
	}
	return inject.Run(cfg, scheme, b, camp)
}

// RunSampled simulates one cell SimPoint-style: `samples` detailed
// windows of `measured` committed instructions (each preceded by a timed
// `warmup`), separated by functional fast-forwards of `ff` instructions
// that keep caches and predictors warm without cycle-accurate timing.
// Statistics aggregate the measured windows only.
func RunSampled(cfg CoreConfig, scheme Scheme, benchName string, samples int, ff, warmup, measured uint64, seed uint64) (Stats, error) {
	b, err := trace.ByName(benchName)
	if err != nil {
		return Stats{}, err
	}
	c := core.New(cfg, scheme, b, seed)
	return c.RunSampled(samples, ff, warmup, measured)
}

// EnergyModel estimates dynamic+static energy from a run's activity
// counters (per-event picojoule model). See internal/energy.
type EnergyModel = energy.Model

// DefaultEnergyModel returns representative event energies.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// ChipWorkload assigns one core of a multicore chip its benchmark and
// scheme.
type ChipWorkload = multicore.Workload

// NewChip builds a multicore system: one core per workload, private
// L1/L2/MSHRs, shared LLC and DRAM (the paper's §VI-E deployment). Cores
// step in lockstep so contention is modelled; the chip-level stall
// fast-forward defers provably quiescent cores for wall-clock speed
// without changing results (disable it with SetStallFastForward(false)
// — the chip's -no-ff escape hatch).
func NewChip(cfg CoreConfig, loads []ChipWorkload, seed uint64) (*multicore.System, error) {
	return multicore.New(cfg, loads, seed)
}

// ChipMTTFRel returns chip-level MTTF relative to a baseline run of the
// same workloads (failure rates sum across cores).
func ChipMTTFRel(baseline, system []Stats) float64 {
	return multicore.ChipMTTFRel(baseline, system)
}

// ChipThroughputRel returns aggregate chip throughput relative to a
// baseline run of the same workloads.
func ChipThroughputRel(baseline, system []Stats) float64 {
	return multicore.ChipThroughputRel(baseline, system)
}

// Window is one bucket of an AVF-over-time series.
type Window = ace.Window

// WindowAVF converts a timeline window into an AVF given the core's
// vulnerable-bit count and the window width in cycles.
func WindowAVF(w Window, totalBits, windowCycles uint64) float64 {
	return ace.WindowAVF(w, totalBits, windowCycles)
}

// RunTraceFile simulates a recorded trace file (see cmd/tracegen and
// internal/trace/file.go for the format) under the given configuration
// and scheme. The recording loops if shorter than the requested
// instruction count.
func RunTraceFile(cfg CoreConfig, scheme Scheme, path string, opt Options) (Stats, error) {
	fs, err := trace.OpenTraceFile(path)
	if err != nil {
		return Stats{}, err
	}
	c := core.NewFromSource(cfg, scheme, fs.Name(), fs)
	return c.RunWarm(opt.Warmup, opt.Instructions)
}

// RunTimeline simulates one cell with windowed ACE accounting and returns
// the ABC series (one entry per windowCycles-wide window, covering warmup
// and measurement) together with the core's total vulnerable-bit count.
func RunTimeline(cfg CoreConfig, scheme Scheme, benchName string, opt Options, windowCycles uint64) ([]Window, uint64, error) {
	b, err := trace.ByName(benchName)
	if err != nil {
		return nil, 0, err
	}
	c := core.New(cfg, scheme, b, opt.Seed)
	c.EnableTimeline(windowCycles)
	st, err := c.RunWarm(opt.Warmup, opt.Instructions)
	if err != nil {
		return nil, 0, err
	}
	return c.Timeline(), st.TotalBits, nil
}
