# Developer workflow. `make ci` is what every PR must pass: vet, the
# rarlint static analyzer, build, and the full test suite under the race
# detector — the memoizing simulation engine is concurrency-heavy, so
# -race is not optional.

GO ?= go

.PHONY: ci vet lint sarif build test race bench bench-smoke serve-smoke microbench clean

ci: vet lint build race

vet:
	$(GO) vet ./...

# All eleven checks (run concurrently after the shared type-check
# load), with the repo's own _test.go files loaded too;
# exits 1 on any finding, including malformed or stale directives.
# vet rides along so `make lint` alone is the full static gate.
lint: vet
	$(GO) run ./cmd/rarlint -tests ./...

# SARIF log for GitHub code scanning; exit code deliberately ignored
# (the lint target is the gate, this is the upload artifact).
sarif:
	$(GO) run ./cmd/rarlint -sarif -tests ./... > rarlint.sarif || true

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the tracked perf harness (cmd/bench): per-cell simulated
# instructions/second with the stall fast-forward on and off, plus
# per-class aggregates, written to BENCH_core.json at the repo root.
bench:
	$(GO) run ./cmd/bench -o BENCH_core.json

# bench-smoke is the CI variant: one quick iteration, schema validated,
# output discarded — proves the harness runs, measures nothing. It runs
# race-instrumented so the batched synthesis refill path (block buffer
# shared between fetch and the generator) gets -race coverage on every
# PR, not just when someone remembers `make race`.
bench-smoke:
	$(GO) run -race ./cmd/bench -quick -o -

# serve-smoke stands up rarserved (race-instrumented, ephemeral port),
# drives it with rarload's hot/cold mix, and fails on any request error,
# missing cross-request dedup, a warm wave that re-simulates, or an
# unclean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# microbench runs the tracked go-test microbenchmarks: the root engine
# benchmarks, the block-vs-scalar uop synthesis pair in internal/trace,
# and the warmed-window stage-loop benchmarks in internal/core.
microbench:
	$(GO) test -bench=. -benchmem -run=^$$ . ./internal/trace ./internal/core

clean:
	rm -rf results/cache
