# Developer workflow. `make ci` is what every PR must pass: vet, the
# rarlint static analyzer, build, and the full test suite under the race
# detector — the memoizing simulation engine is concurrency-heavy, so
# -race is not optional.

GO ?= go

.PHONY: ci vet lint build test race bench clean

ci: vet lint build race

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/rarlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	rm -rf results/cache
