// Designspace walks the paper's Table IV runahead design space — every
// combination of {early start, flush at exit, lean execution} plus
// Weaver-style Flushing — over a small memory-intensive suite, and prints
// the Figure 9 comparison: which single design point improves both
// reliability and performance.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"rarsim"
)

func main() {
	opt := rarsim.Options{Instructions: 200_000, Warmup: 60_000, Seed: 42}
	schemes := append([]rarsim.Scheme{rarsim.OoO}, rarsim.RunaheadVariants()...)

	var benches []rarsim.Benchmark
	for _, n := range []string{"libquantum", "fotonik", "gems", "mcf"} {
		b, err := rarsim.BenchmarkByName(n)
		if err != nil {
			log.Fatal(err)
		}
		benches = append(benches, b)
	}
	names := make([]string, len(benches))
	for i, b := range benches {
		names[i] = b.Name
	}

	fmt.Printf("running %d schemes x %d benchmarks...\n\n", len(schemes), len(benches))
	rs, err := rarsim.RunMatrix([]rarsim.CoreConfig{rarsim.BaselineConfig()}, schemes, benches, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %8s %8s %8s   %s\n", "scheme", "MTTF", "ABC", "IPC", "early/flush/lean")
	for _, s := range schemes[1:] {
		feats := fmt.Sprintf("%5v %5v %5v", s.Early, s.FlushAtExit || s.FlushAtEntry, s.Lean)
		fmt.Printf("%-10s %7.2fx %8.3f %8.3f   %s\n",
			s.Name,
			rs.MeanMTTF("baseline", s.Name, names),
			rs.MeanABCNorm("baseline", s.Name, names),
			rs.MeanIPCNorm("baseline", s.Name, names),
			feats)
	}
	fmt.Println("\nRAR (early+flush+lean) is the only point that improves both axes strongly:")
	fmt.Println("flush-at-exit buys the reliability, lean execution keeps PRE's speed,")
	fmt.Println("and the early start covers stalls the full-ROB trigger misses.")
}
