// Prefetch reproduces the paper's §V-F question: does an aggressive
// hardware stride prefetcher — at the LLC or across all cache levels —
// eliminate the misses RAR speculates on, and with them RAR's benefit?
//
//	go run ./examples/prefetch
package main

import (
	"fmt"
	"log"

	"rarsim"
)

func main() {
	opt := rarsim.Options{Instructions: 200_000, Warmup: 60_000, Seed: 42}
	bench := "gems" // strided: the prefetcher-friendliest benchmark

	configs := []rarsim.CoreConfig{
		rarsim.BaselineConfig(),
		rarsim.BaselineConfig().WithPrefetch(rarsim.PrefetchL3),
		rarsim.BaselineConfig().WithPrefetch(rarsim.PrefetchAll),
	}

	base, err := rarsim.Run(configs[0], rarsim.OoO, bench, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s under hardware prefetching (normalised to no-prefetch OoO):\n\n", bench)
	fmt.Printf("%-14s %-6s %8s %8s %8s %8s\n", "config", "scheme", "IPC", "MPKI", "ABC", "MTTF")
	for _, cfg := range configs {
		for _, s := range []rarsim.Scheme{rarsim.OoO, rarsim.PRE, rarsim.RAR} {
			st, err := rarsim.Run(cfg, s, bench, opt)
			if err != nil {
				log.Fatal(err)
			}
			mttf := (float64(base.TotalABC) / float64(st.TotalABC)) *
				(float64(st.Cycles) / float64(base.Cycles))
			fmt.Printf("%-14s %-6s %8.3f %8.2f %8.3f %7.2fx\n",
				cfg.Name, s.Name,
				st.IPC()/base.IPC(), st.MPKI(),
				float64(st.TotalABC)/float64(base.TotalABC), mttf)
		}
		fmt.Println()
	}
	fmt.Println("Prefetching removes some of the misses runahead targets, but RAR")
	fmt.Println("still improves reliability and performance on top of it (§V-F).")
}
