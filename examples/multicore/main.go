// Multicore simulates a four-core chip with a shared LLC and DRAM — the
// deployment the paper's conclusion points at — running four
// memory-intensive benchmarks side by side, and compares an all-OoO chip,
// an all-RAR chip, and a mixed chip on aggregate throughput and
// chip-level MTTF.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"rarsim"
)

func main() {
	benchNames := []string{"libquantum", "gems", "fotonik", "milc"}
	const n = 150_000

	build := func(schemes []rarsim.Scheme) []rarsim.Stats {
		var loads []rarsim.ChipWorkload
		for i, name := range benchNames {
			b, err := rarsim.BenchmarkByName(name)
			if err != nil {
				log.Fatal(err)
			}
			loads = append(loads, rarsim.ChipWorkload{Bench: b, Scheme: schemes[i%len(schemes)]})
		}
		sys, err := rarsim.NewChip(rarsim.BaselineConfig(), loads, 42)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := sys.Run(n)
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}

	fmt.Printf("4-core chip, shared 1 MiB LLC + DDR3, %d instructions/core\n\n", n)
	base := build([]rarsim.Scheme{rarsim.OoO})
	rar := build([]rarsim.Scheme{rarsim.RAR})
	mixed := build([]rarsim.Scheme{rarsim.RAR, rarsim.OoO})

	fmt.Printf("%-12s %10s %10s\n", "chip", "MTTF", "throughput")
	fmt.Printf("%-12s %9.2fx %10.3f\n", "all-OoO", 1.0, 1.0)
	fmt.Printf("%-12s %9.2fx %10.3f\n", "mixed",
		rarsim.ChipMTTFRel(base, mixed), rarsim.ChipThroughputRel(base, mixed))
	fmt.Printf("%-12s %9.2fx %10.3f\n", "all-RAR",
		rarsim.ChipMTTFRel(base, rar), rarsim.ChipThroughputRel(base, rar))

	fmt.Println("\nper-core detail (all-RAR chip vs all-OoO chip):")
	fmt.Printf("%-12s %10s %10s %12s\n", "core", "OoO IPC", "RAR IPC", "AVF OoO->RAR")
	for i, name := range benchNames {
		fmt.Printf("%-12s %10.3f %10.3f %7.4f->%.4f\n",
			name, base[i].IPC(), rar[i].IPC(), base[i].AVF(), rar[i].AVF())
	}
}
