// Faultinjection runs a statistical soft-error injection campaign — the
// methodology the paper's footnote 1 contrasts with ACE analysis — against
// the baseline core and against RAR, and shows (a) that the empirical
// vulnerability agrees with the ACE ledger, and (b) where RAR's protection
// comes from: strikes that would have corrupted architectural state land
// on state that the flush-at-exit discards instead.
//
//	go run ./examples/faultinjection [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"rarsim"
)

func main() {
	bench := "libquantum"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	camp := rarsim.InjectionCampaign{
		Trials:       3000,
		Instructions: 200_000,
		Warmup:       60_000,
		Seed:         42,
	}

	fmt.Printf("injecting %d random soft errors into %s...\n\n", camp.Trials, bench)
	fmt.Printf("%-6s %12s %12s %9s %9s %9s\n",
		"scheme", "inject AVF", "ledger AVF", "corrupt", "squashed", "masked")
	for _, s := range []rarsim.Scheme{rarsim.OoO, rarsim.FLUSH, rarsim.RAR} {
		res, err := rarsim.RunInjection(rarsim.BaselineConfig(), s, bench, camp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %7.4f±%.4f %12.4f %9d %9d %9d\n",
			s.Name, res.EmpiricalAVF(), res.StdErr(), res.LedgerAVF,
			res.Corrupt, res.Squashed, res.Masked)
	}

	fmt.Println("\nA 'corrupt' strike hit a bit that later committed (it was ACE).")
	fmt.Println("Under RAR, the same strikes land on state the runahead-exit flush")
	fmt.Println("throws away — the corrupt column collapses into squashed/masked.")
}
