// Quickstart: simulate one memory-intensive benchmark under the baseline
// out-of-order core and under Reliability-Aware Runahead, and compare the
// paper's three headline metrics — performance (IPC), vulnerability (ABC),
// and mean time to failure (MTTF).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rarsim"
)

func main() {
	opt := rarsim.Options{Instructions: 300_000, Warmup: 100_000, Seed: 42}
	cfg := rarsim.BaselineConfig()

	fmt.Println("simulating mcf on the Table II baseline core...")
	ooo, err := rarsim.Run(cfg, rarsim.OoO, "mcf", opt)
	if err != nil {
		log.Fatal(err)
	}
	rar, err := rarsim.Run(cfg, rarsim.RAR, "mcf", opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %12s %12s\n", "", "OoO", "RAR")
	fmt.Printf("%-28s %12.3f %12.3f\n", "IPC", ooo.IPC(), rar.IPC())
	fmt.Printf("%-28s %12.2f %12.2f\n", "LLC MPKI", ooo.MPKI(), rar.MPKI())
	fmt.Printf("%-28s %12.1f %12.1f\n", "ACE bit count (Gbit-cycles)",
		float64(ooo.TotalABC)/1e9, float64(rar.TotalABC)/1e9)
	fmt.Printf("%-28s %12.4f %12.4f\n", "AVF", ooo.AVF(), rar.AVF())
	fmt.Printf("%-28s %12d %12d\n", "runahead intervals", ooo.RunaheadEntries, rar.RunaheadEntries)

	// MTTF relative to the baseline (Equations 2-4): the ABC improvement
	// scaled by the runtime ratio.
	mttf := (float64(ooo.TotalABC) / float64(rar.TotalABC)) *
		(float64(rar.Cycles) / float64(ooo.Cycles))
	fmt.Printf("\nRAR improves MTTF by %.1fx while changing performance by %+.1f%%\n",
		mttf, 100*(rar.IPC()/ooo.IPC()-1))
}
