package rarsim_test

import (
	"path/filepath"
	"testing"

	"rarsim"
	"rarsim/internal/trace"
)

// TestPublicAPIQuickstart mirrors the README quickstart.
func TestPublicAPIQuickstart(t *testing.T) {
	opt := rarsim.Options{Instructions: 30_000, Warmup: 10_000, Seed: 42}
	st, err := rarsim.Run(rarsim.BaselineConfig(), rarsim.RAR, "mcf", opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 30_000 || st.IPC() <= 0 || st.TotalABC == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
	if _, err := rarsim.Run(rarsim.BaselineConfig(), rarsim.RAR, "nope", opt); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestPublicMatrix(t *testing.T) {
	opt := rarsim.Options{Instructions: 20_000, Warmup: 5_000, Seed: 42}
	benches := []rarsim.Benchmark{}
	for _, n := range []string{"libquantum", "gems"} {
		b, err := rarsim.BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, b)
	}
	rs, err := rarsim.RunMatrix(
		[]rarsim.CoreConfig{rarsim.BaselineConfig()},
		[]rarsim.Scheme{rarsim.OoO, rarsim.PRE, rarsim.RAR},
		benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m := rs.MTTF("baseline", "RAR", "libquantum"); m <= 0 {
		t.Errorf("RAR MTTF = %v", m)
	}
	if i := rs.IPCNorm("baseline", "PRE", "gems"); i <= 0 {
		t.Errorf("PRE IPC norm = %v", i)
	}
}

// TestRunMatrixCached exercises the shared-engine facade: a repeated
// matrix is served from cache, and a dedicated persistent engine
// warm-starts from disk.
func TestRunMatrixCached(t *testing.T) {
	opt := rarsim.Options{Instructions: 20_000, Warmup: 5_000, Seed: 7}
	b, err := rarsim.BenchmarkByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	cores := []rarsim.CoreConfig{rarsim.BaselineConfig()}
	schemes := []rarsim.Scheme{rarsim.OoO, rarsim.RAR}
	benches := []rarsim.Benchmark{b}

	rs1, err := rarsim.RunMatrixCached(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := rarsim.RunMatrixCached(cores, schemes, benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := rs1.Stats("baseline", "RAR", "libquantum")
	s2, _ := rs2.Stats("baseline", "RAR", "libquantum")
	if s1 != s2 {
		t.Error("cached matrix differs from first run")
	}

	dir := filepath.Join(t.TempDir(), "cache")
	eng, err := rarsim.NewPersistentEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix(cores, schemes, benches, opt); err != nil {
		t.Fatal(err)
	}
	warm, err := rarsim.NewPersistentEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.RunMatrix(cores, schemes, benches, opt); err != nil {
		t.Fatal(err)
	}
	if m := warm.Metrics(); m.Simulated != 0 || m.DiskHits != uint64(len(schemes)) {
		t.Errorf("warm start metrics = %+v, want 0 simulated / %d disk hits", m, len(schemes))
	}
}

func TestSuiteListings(t *testing.T) {
	if len(rarsim.Benchmarks()) != len(rarsim.MemoryIntensiveBenchmarks())+len(rarsim.ComputeIntensiveBenchmarks()) {
		t.Error("suite split inconsistent")
	}
	if len(rarsim.BenchmarkNames()) == 0 {
		t.Error("no benchmark names")
	}
	if len(rarsim.Schemes()) != 5 || len(rarsim.RunaheadVariants()) != 7 {
		t.Error("scheme listings wrong")
	}
	if len(rarsim.ScaledConfigs()) != 4 {
		t.Error("Table I configs wrong")
	}
	if _, err := rarsim.SchemeByName("RAR"); err != nil {
		t.Error(err)
	}
	if rarsim.DefaultOptions().Instructions == 0 {
		t.Error("default options empty")
	}
}

// TestSuiteCalibration verifies the paper's MPKI>8 classification rule on
// the baseline core for every benchmark — the property that defines the
// memory-intensive set (§IV-A). Runs are long enough to get past cold
// caches.
func TestSuiteCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	opt := rarsim.Options{Instructions: 150_000, Warmup: 150_000, Seed: 42}
	type result struct {
		name   string
		memory bool
		mpki   float64
		ipc    float64
	}
	results := make(chan result, len(rarsim.Benchmarks()))
	for _, b := range rarsim.Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			st, err := rarsim.Run(rarsim.BaselineConfig(), rarsim.OoO, b.Name, opt)
			if err != nil {
				t.Fatal(err)
			}
			results <- result{b.Name, b.MemoryIntensive, st.MPKI(), st.IPC()}
			if b.MemoryIntensive && st.MPKI() <= 8 {
				t.Errorf("%s: classified memory-intensive but MPKI = %.1f",
					b.Name, st.MPKI())
			}
			if !b.MemoryIntensive && st.MPKI() > 8 {
				t.Errorf("%s: classified compute-intensive but MPKI = %.1f",
					b.Name, st.MPKI())
			}
			if st.IPC() <= 0.01 || st.IPC() > 4 {
				t.Errorf("%s: IPC %.3f out of plausible range", b.Name, st.IPC())
			}
		})
	}
}

// TestTraceReplayEquivalence records a trace of a synthetic benchmark and
// replays it through the simulator: the replayed run must produce the
// exact same cycle count, ABC and commit fingerprint as generating on the
// fly — the trace carries everything the timing model consumes.
func TestTraceReplayEquivalence(t *testing.T) {
	opt := rarsim.Options{Instructions: 30_000, Warmup: 5_000, Seed: 42}
	live, err := rarsim.Run(rarsim.BaselineConfig(), rarsim.RAR, "gems", opt)
	if err != nil {
		t.Fatal(err)
	}

	b, err := rarsim.BenchmarkByName("gems")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "gems.trace.gz")
	// Record comfortably more than warmup+measured plus speculation
	// lookahead so the replay never wraps.
	if err := trace.WriteTraceFile(path, b.Name, trace.New(b, opt.Seed), 60_000); err != nil {
		t.Fatal(err)
	}
	replay, err := rarsim.RunTraceFile(rarsim.BaselineConfig(), rarsim.RAR, path, opt)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Cycles != live.Cycles || replay.TotalABC != live.TotalABC ||
		replay.CommitHash != live.CommitHash {
		t.Errorf("replay differs from live run:\n live   cyc=%d abc=%d hash=%#x\n replay cyc=%d abc=%d hash=%#x",
			live.Cycles, live.TotalABC, live.CommitHash,
			replay.Cycles, replay.TotalABC, replay.CommitHash)
	}
	if replay.Benchmark != "gems" {
		t.Errorf("trace name not propagated: %q", replay.Benchmark)
	}
}

func TestRunSampledPublicAPI(t *testing.T) {
	st, err := rarsim.RunSampled(rarsim.BaselineConfig(), rarsim.PRE, "leslie3d",
		3, 40_000, 5_000, 10_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 30_000 {
		t.Errorf("sampled committed = %d", st.Committed)
	}
}
