// Command rarload drives a rarserved instance with a deterministic
// hot/cold mix of matrix requests and reports client-side throughput
// (cells/s) and latency percentiles, plus the server's own /metrics
// snapshot. It is the load half of the serve-smoke harness: with
// -assert-dedup it fails unless the server demonstrably shared
// simulations across requests (memo hits > 0 and simulated < requested
// cells).
//
// Examples:
//
//	rarload -addr 127.0.0.1:8080 -requests 32 -concurrency 8 -hot 0.75
//	rarload -addr $ADDR -wait 10s -assert-dedup
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rarsim/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "rarserved address (host:port)")
		requests    = flag.Int("requests", 32, "total matrix requests to send")
		concurrency = flag.Int("concurrency", 8, "concurrent client workers")
		n           = flag.Uint64("n", 20_000, "committed instructions per cell")
		benches     = flag.String("benches", "libquantum,mcf", "comma-separated benchmarks per request")
		schemes     = flag.String("schemes", "OoO,RAR", "comma-separated schemes per request")
		cores       = flag.String("cores", "baseline", "comma-separated core configs per request")
		hot         = flag.Float64("hot", 0.75, "fraction of requests repeating the shared hot matrix (the rest get unique seeds)")
		seed        = flag.Uint64("seed", 42, "base workload seed")
		wait        = flag.Duration("wait", 0, "poll /healthz this long for the server to come up before loading")
		assertDedup = flag.Bool("assert-dedup", false, "exit non-zero unless the server deduplicated cells across requests")
	)
	flag.Parse()
	base := "http://" + *addr

	if *wait > 0 {
		if err := waitReady(base, *wait); err != nil {
			fmt.Fprintln(os.Stderr, "rarload:", err)
			os.Exit(1)
		}
	}

	// The request mix is deterministic: an error-diffusion accumulator
	// spreads hot (repeated, dedupable) and cold (unique-seed) requests
	// evenly through the sequence, so every run with the same flags
	// offers the server the same dedup opportunity.
	template := serve.MatrixRequest{
		Cores:        splitList(*cores),
		Schemes:      splitList(*schemes),
		Benches:      splitList(*benches),
		Instructions: *n,
		Seed:         *seed,
	}
	reqs := make([]serve.MatrixRequest, *requests)
	var acc float64
	cold := uint64(0)
	for i := range reqs {
		reqs[i] = template
		acc += *hot
		if acc >= 1 {
			acc-- // hot: identical to the shared matrix
		} else {
			cold++
			reqs[i].Seed = *seed + cold // cold: a seed nobody else asks for
		}
	}
	cellsPer := len(template.Cores) * len(template.Schemes) * len(template.Benches)

	var (
		mu        sync.Mutex
		durations []time.Duration
		errs      []string
		cells     int
	)
	next := make(chan int)
	var wg sync.WaitGroup
	workers := *concurrency
	if workers < 1 {
		workers = 1
	}
	start := time.Now() //rarlint:allow determinism client-side load-test timing
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now() //rarlint:allow determinism client-side load-test timing
				got, err := postMatrix(base, reqs[i])
				d := time.Since(t0) //rarlint:allow determinism client-side load-test timing
				mu.Lock()
				durations = append(durations, d)
				if err != nil {
					errs = append(errs, fmt.Sprintf("request %d: %v", i, err))
				} else {
					cells += got
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start) //rarlint:allow determinism client-side load-test timing

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	p := func(q int) time.Duration {
		if len(durations) == 0 {
			return 0
		}
		return durations[(len(durations)-1)*q/100]
	}
	fmt.Printf("requests: %d (%d hot / %d cold), %d cells each\n",
		*requests, *requests-int(cold), cold, cellsPer)
	fmt.Printf("elapsed: %v, cells served: %d (%.1f cells/s)\n",
		elapsed.Round(time.Millisecond), cells, float64(cells)/elapsed.Seconds())
	fmt.Printf("latency: p50 %v, p99 %v\n", p(50).Round(time.Microsecond), p(99).Round(time.Microsecond))

	snap, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rarload: metrics:", err)
	} else {
		fmt.Printf("server: simulated %d, memo hits %d, disk hits %d, err hits %d, p50 %.2fms, p99 %.2fms\n",
			snap.Engine.Simulated, snap.Engine.Hits, snap.Engine.DiskHits, snap.Engine.ErrHits,
			snap.HTTP.P50Millis, snap.HTTP.P99Millis)
	}

	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "rarload:", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	if *assertDedup {
		if snap == nil {
			fmt.Fprintln(os.Stderr, "rarload: cannot assert dedup without /metrics")
			os.Exit(1)
		}
		offered := uint64(cells)
		if snap.Engine.Hits == 0 || snap.Engine.Simulated >= offered {
			fmt.Fprintf(os.Stderr, "rarload: no cross-request dedup: simulated %d of %d served cells, %d memo hits\n",
				snap.Engine.Simulated, offered, snap.Engine.Hits)
			os.Exit(1)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func waitReady(base string, d time.Duration) error {
	deadline := time.Now().Add(d) //rarlint:allow determinism readiness polling deadline
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) { //rarlint:allow determinism readiness polling deadline
			return fmt.Errorf("server at %s not ready after %v: %v", base, d, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// postMatrix sends one request and returns the number of cells in the
// response.
func postMatrix(base string, req serve.MatrixRequest) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var mr serve.MatrixResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		return 0, err
	}
	return len(mr.Cells), nil
}

func fetchMetrics(base string) (*serve.Snapshot, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var snap serve.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
