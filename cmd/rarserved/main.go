// Command rarserved serves the simulator over HTTP: clients POST
// (cores × schemes × benches × options) matrices to /matrix and the
// server answers from one shared memoizing engine, so concurrent
// clients asking for overlapping cells share simulations. /metrics
// exposes the engine's warm/cold counters, the worker-pool gauges and
// request-latency percentiles; /healthz answers readiness probes.
//
// Examples:
//
//	rarserved -addr :8080 -cache /var/cache/rarsim
//	rarserved -addr 127.0.0.1:0 -workers 4 -failure-ttl 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rarsim/internal/serve"
	"rarsim/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		cacheDir   = flag.String("cache", "", "directory to persist simulated cells into (empty: memory only)")
		workers    = flag.Int("workers", 0, "server-wide simulation concurrency (0 = GOMAXPROCS)")
		failTTL    = flag.Duration("failure-ttl", 15*time.Second, "hold a failed cell this long, answering 503 + Retry-After instead of re-simulating (0 restores retry-every-call)")
		maxBytes   = flag.Int64("max-cache-bytes", 0, "evict least-recently-used cached cells beyond this many bytes on disk (0 = unbounded)")
		maxEntries = flag.Int("max-cache-entries", 0, "evict least-recently-used cached cells beyond this count (0 = unbounded)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight requests")
	)
	flag.Parse()

	var (
		engine *sim.Engine
		err    error
	)
	if *cacheDir != "" {
		engine, err = sim.NewPersistentEngine(*cacheDir)
		check(err)
	} else {
		engine = sim.NewEngine()
	}
	engine.SetFailureTTL(*failTTL)
	if *maxBytes > 0 || *maxEntries > 0 {
		engine.SetDiskBudget(*maxBytes, *maxEntries)
	}

	srv := serve.New(engine, sim.NewPool(*workers))
	srv.DrainTimeout = *drain

	ln, err := net.Listen("tcp", *addr)
	check(err)
	// The resolved address matters when the flag asked for port 0; the
	// smoke harness parses this line to find the server.
	fmt.Printf("listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	check(srv.Serve(ctx, ln))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rarserved:", err)
		os.Exit(1)
	}
}
