// Command bench is the tracked performance harness: it measures simulator
// throughput (simulated instructions per wall-clock second) per scheme on
// memory-intensive and compute-intensive benchmarks, with the stall
// fast-forward on and off, plus end-to-end matrix throughput (cells per
// second), and writes the results as BENCH_core.json. Committing that file
// alongside performance-relevant changes gives the repo a perf history the
// same way results/*.csv give it a results history.
//
// Every cell is measured in both fast-forward modes and the two runs'
// statistics are compared — so `make bench` doubles as an end-to-end check
// of the fast-forward equivalence contract on real workloads.
//
// Usage:
//
//	go run ./cmd/bench                  # full measurement, writes BENCH_core.json
//	go run ./cmd/bench -quick -o -      # CI smoke: 1 iteration, tiny runs, stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"rarsim/internal/config"
	"rarsim/internal/core"
	"rarsim/internal/multicore"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// schemaVersion identifies the BENCH_core.json layout; bump on any field
// change so downstream tooling fails loudly instead of misreading.
// v2: added the multicore chip cells.
const schemaVersion = 2

// Report is the persisted benchmark report. The harness re-parses its own
// output with DisallowUnknownFields before writing, so the file always
// matches this schema exactly.
type Report struct {
	SchemaVersion int    `json:"schemaVersion"`
	GoVersion     string `json:"goVersion"`
	Instructions  uint64 `json:"instructions"`
	Warmup        uint64 `json:"warmup"`
	Seed          uint64 `json:"seed"`
	Iterations    int    `json:"iterations"`

	Cells      []Cell          `json:"cells"`
	Aggregates Aggregates      `json:"aggregates"`
	Matrix     Matrix          `json:"matrix"`
	Multicore  []MulticoreCell `json:"multicore"`
}

// Cell is one (scheme, benchmark) throughput measurement.
type Cell struct {
	Scheme       string `json:"scheme"`
	Bench        string `json:"bench"`
	MemIntensive bool   `json:"memIntensive"`
	// SimInstsPerSec is simulated instructions per wall-clock second with
	// the stall fast-forward enabled (the default configuration).
	SimInstsPerSec float64 `json:"simInstsPerSec"`
	// SimInstsPerSecNoFF is the same measurement with -no-ff.
	SimInstsPerSecNoFF float64 `json:"simInstsPerSecNoFF"`
	// FFSpeedup is SimInstsPerSec / SimInstsPerSecNoFF.
	FFSpeedup float64 `json:"ffSpeedup"`
	IPC       float64 `json:"ipc"`
}

// Aggregates summarises throughput per benchmark class.
type Aggregates struct {
	MemSimInstsPerSec         float64 `json:"memSimInstsPerSec"`
	MemSimInstsPerSecNoFF     float64 `json:"memSimInstsPerSecNoFF"`
	MemFFSpeedup              float64 `json:"memFFSpeedup"`
	ComputeSimInstsPerSec     float64 `json:"computeSimInstsPerSec"`
	ComputeSimInstsPerSecNoFF float64 `json:"computeSimInstsPerSecNoFF"`
	ComputeFFSpeedup          float64 `json:"computeFFSpeedup"`
}

// MulticoreCell is one chip-level throughput measurement: a multicore
// system running one benchmark and scheme per core, measured with the
// chip-level stall fast-forward on and off. Throughput counts committed
// instructions summed over all cores.
type MulticoreCell struct {
	Chip    string   `json:"chip"`
	Cores   int      `json:"cores"`
	Benches []string `json:"benches"`
	Schemes []string `json:"schemes"`
	// SimInstsPerSec is chip-wide simulated instructions per wall-clock
	// second with the epoch fast-forward enabled (the default).
	SimInstsPerSec float64 `json:"simInstsPerSec"`
	// SimInstsPerSecNoFF is the same measurement with -no-ff.
	SimInstsPerSecNoFF float64 `json:"simInstsPerSecNoFF"`
	// FFSpeedup is SimInstsPerSec / SimInstsPerSecNoFF.
	FFSpeedup float64 `json:"ffSpeedup"`
}

// Matrix is the end-to-end experiment-matrix throughput measurement.
type Matrix struct {
	Cells        int     `json:"cells"`
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
	CellsPerSec  float64 `json:"cellsPerSec"`
}

func main() {
	var (
		out     = flag.String("o", "BENCH_core.json", "output path ('-' = stdout)")
		n       = flag.Uint64("n", 200_000, "committed instructions measured per cell")
		wu      = flag.Uint64("warmup", 40_000, "warmup instructions per cell")
		iters   = flag.Int("iters", 3, "measurement iterations per cell (best is kept)")
		quick   = flag.Bool("quick", false, "CI smoke mode: 1 iteration, tiny runs")
		ffFloor = flag.Float64("ff-floor", 0.95, "fail if any cell's ffSpeedup lands below this after retries (0 disables)")
	)
	flag.Parse()
	if *quick {
		*n, *wu, *iters = 20_000, 4_000, 1
		// Tiny runs on shared CI runners are noise; the floor would only
		// flake there. The full run keeps it as a regression tripwire.
		*ffFloor = 0
	}

	rep, err := measure(*n, *wu, *iters, *ffFloor)
	if err != nil {
		fail(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	// Self-validation: the bytes about to be written must round-trip
	// through the schema with no unknown fields and the current version.
	if err := Validate(data); err != nil {
		fail(fmt.Errorf("generated report fails its own schema: %w", err))
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fail(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (mem %.0f insts/s, %.1fx over -no-ff; chip %s %.1fx; matrix %.1f cells/s)\n",
		*out, rep.Aggregates.MemSimInstsPerSec, rep.Aggregates.MemFFSpeedup,
		rep.Multicore[0].Chip, rep.Multicore[0].FFSpeedup, rep.Matrix.CellsPerSec)
}

// Validate parses a BENCH_core.json document strictly: unknown fields,
// trailing data or a version mismatch are errors. Shared by the harness's
// self-check and the CI smoke run.
func Validate(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after report object")
	}
	if r.SchemaVersion != schemaVersion {
		return fmt.Errorf("schemaVersion %d, want %d", r.SchemaVersion, schemaVersion)
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("report has no cells")
	}
	if len(r.Multicore) == 0 {
		return fmt.Errorf("report has no multicore cells")
	}
	return nil
}

// benchCells is the measured cell list: every scheme family on one
// representative streaming benchmark, one pointer-chasing benchmark, and
// one compute-bound benchmark.
func benchCells() []struct {
	scheme config.Scheme
	bench  string
} {
	schemes := []config.Scheme{config.OoO, config.FLUSH, config.TR, config.PRE, config.RARLate, config.RAR}
	var out []struct {
		scheme config.Scheme
		bench  string
	}
	for _, b := range []string{"libquantum", "mcf", "exchange2", "x264"} {
		for _, s := range schemes {
			out = append(out, struct {
				scheme config.Scheme
				bench  string
			}{s, b})
		}
	}
	return out
}

func measure(n, warmup uint64, iters int, ffFloor float64) (*Report, error) {
	rep := &Report{
		SchemaVersion: schemaVersion,
		GoVersion:     goVersion(),
		Instructions:  n,
		Warmup:        warmup,
		Seed:          42,
		Iterations:    iters,
	}
	cfg := config.Baseline()
	var memFF, memNoFF, compFF, compNoFF time.Duration
	var memInsts, compInsts uint64

	for _, c := range benchCells() {
		bench, err := trace.ByName(c.bench)
		if err != nil {
			return nil, err
		}
		opt := sim.Options{Instructions: n, Warmup: warmup, Seed: 42}

		ffDur, ffStats, err := timeCell(cfg, c.scheme, bench, opt, iters)
		if err != nil {
			return nil, err
		}
		opt.NoFastForward = true
		noFFDur, noFFStats, err := timeCell(cfg, c.scheme, bench, opt, iters)
		if err != nil {
			return nil, err
		}
		// The equivalence contract, checked end to end on every cell.
		if !reflect.DeepEqual(ffStats, noFFStats) {
			return nil, fmt.Errorf("%s/%s: fast-forward changed the results:\n on: %+v\noff: %+v",
				c.scheme.Name, c.bench, ffStats, noFFStats)
		}
		// Batched-synthesis contract: the same cell driven through the
		// scalar-only source face must be byte-identical too (the block
		// path is what every run above used — Generator implements
		// BlockSource).
		scalarStats, err := runScalar(cfg, c.scheme, bench, opt)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(ffStats, scalarStats) {
			return nil, fmt.Errorf("%s/%s: batched synthesis changed the results:\n batched: %+v\n  scalar: %+v",
				c.scheme.Name, c.bench, ffStats, scalarStats)
		}
		// The fast-forward must never *cost* throughput: with the
		// busy-cycle progress guard, a fully-busy cell pays one counter
		// compare per cycle, so any real slowdown is a regression. The
		// floor sits at 0.95, not 1.0, because on runahead-busy cells
		// (TR/libquantum skips only ~4% of cycles) the measured ratio
		// hovers within the host's ±3% timing noise of parity — a real
		// regression (the pre-guard probe cost) shows up well below
		// 0.95. Both modes' wall clocks are noisy on small cells — keep
		// best-of across retries before declaring a miss.
		for attempt := 0; ffFloor > 0 && noFFDur.Seconds()/ffDur.Seconds() < ffFloor && attempt < 2; attempt++ {
			opt.NoFastForward = false
			d2, _, err := timeCell(cfg, c.scheme, bench, opt, iters)
			if err != nil {
				return nil, err
			}
			if d2 < ffDur {
				ffDur = d2
			}
			opt.NoFastForward = true
			d2, _, err = timeCell(cfg, c.scheme, bench, opt, iters)
			if err != nil {
				return nil, err
			}
			if d2 < noFFDur {
				noFFDur = d2
			}
		}
		if sp := noFFDur.Seconds() / ffDur.Seconds(); ffFloor > 0 && sp < ffFloor {
			// Still under the floor: decide with one long-window A/B.
			// Relative timing noise on ~50ms cells is several percent —
			// the same order as the floor itself — so borderline cells
			// get a 5x window whose ratio settles the question; the
			// reported ffSpeedup keeps the standard-size measurement.
			longOpt := opt
			longOpt.Instructions = 5 * n
			longOpt.NoFastForward = false
			ffLong, _, err := timeCell(cfg, c.scheme, bench, longOpt, 2)
			if err != nil {
				return nil, err
			}
			longOpt.NoFastForward = true
			noFFLong, _, err := timeCell(cfg, c.scheme, bench, longOpt, 2)
			if err != nil {
				return nil, err
			}
			if spLong := noFFLong.Seconds() / ffLong.Seconds(); spLong < ffFloor {
				return nil, fmt.Errorf("%s/%s: ffSpeedup %.3f (long-window %.3f) below floor %.2f — the fast-forward is costing throughput",
					c.scheme.Name, c.bench, sp, spLong, ffFloor)
			}
		}

		total := warmup + n // throughput covers every simulated instruction
		rep.Cells = append(rep.Cells, Cell{
			Scheme:             c.scheme.Name,
			Bench:              c.bench,
			MemIntensive:       bench.MemoryIntensive,
			SimInstsPerSec:     rate(total, ffDur),
			SimInstsPerSecNoFF: rate(total, noFFDur),
			FFSpeedup:          noFFDur.Seconds() / ffDur.Seconds(),
			IPC:                ffStats.IPC(),
		})
		if bench.MemoryIntensive {
			memFF += ffDur
			memNoFF += noFFDur
			memInsts += total
		} else {
			compFF += ffDur
			compNoFF += noFFDur
			compInsts += total
		}
	}

	rep.Aggregates = Aggregates{
		MemSimInstsPerSec:         rate(memInsts, memFF),
		MemSimInstsPerSecNoFF:     rate(memInsts, memNoFF),
		MemFFSpeedup:              memNoFF.Seconds() / memFF.Seconds(),
		ComputeSimInstsPerSec:     rate(compInsts, compFF),
		ComputeSimInstsPerSecNoFF: rate(compInsts, compNoFF),
		ComputeFFSpeedup:          compNoFF.Seconds() / compFF.Seconds(),
	}

	m, err := measureMatrix(n/4, warmup/4)
	if err != nil {
		return nil, err
	}
	rep.Matrix = *m

	for _, chip := range benchChips() {
		cell, err := timeChip(chip, n, iters)
		if err != nil {
			return nil, err
		}
		rep.Multicore = append(rep.Multicore, *cell)
	}
	return rep, nil
}

// chipSpec names a multicore configuration: benches[i] runs on core i
// under schemes[i%len(schemes)].
type chipSpec struct {
	name    string
	benches []string
	schemes []config.Scheme
}

// benchChips is the measured chip list: the memory-bound mix (four
// memory-intensive benchmarks on baseline OoO cores — the configuration
// the chip-level fast-forward targets), the same mix on all-RAR cores
// (runahead keeps cores busy through misses, so the skip finds little),
// and a heterogeneous scheme×bench chip covering the mixed deployment.
func benchChips() []chipSpec {
	memMix := []string{"mcf", "libquantum", "soplex", "astar"}
	return []chipSpec{
		{"mem-ooo", memMix, []config.Scheme{config.OoO}},
		{"mem-rar", memMix, []config.Scheme{config.RAR}},
		{"mixed", []string{"libquantum", "exchange2", "mcf", "x264"},
			[]config.Scheme{config.RAR, config.OoO}},
	}
}

// timeChip measures one chip in both fast-forward modes (best of iters
// each), cross-checking the per-core statistics between the two modes —
// the chip-level face of the equivalence check every single-core cell
// already gets.
func timeChip(spec chipSpec, n uint64, iters int) (*MulticoreCell, error) {
	cfg := config.Baseline()
	var loads []multicore.Workload
	var schemeNames []string
	for i, name := range spec.benches {
		b, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		s := spec.schemes[i%len(spec.schemes)]
		loads = append(loads, multicore.Workload{Bench: b, Scheme: s})
		schemeNames = append(schemeNames, s.Name)
	}
	run := func(ff bool) (time.Duration, []core.Stats, error) {
		var best time.Duration
		var stats []core.Stats
		for i := 0; i < iters; i++ {
			sys, err := multicore.New(cfg, loads, 42)
			if err != nil {
				return 0, nil, err
			}
			sys.SetStallFastForward(ff)
			start := time.Now() //rarlint:allow determinism wall-clock measurement is this harness's entire purpose; never enters simulated state
			st, err := sys.Run(n)
			dur := time.Since(start) //rarlint:allow determinism wall-clock measurement is this harness's entire purpose; never enters simulated state
			if err != nil {
				return 0, nil, fmt.Errorf("chip %s: %w", spec.name, err)
			}
			if i == 0 || dur < best {
				best = dur
			}
			stats = st
		}
		return best, stats, nil
	}
	ffDur, ffStats, err := run(true)
	if err != nil {
		return nil, err
	}
	noFFDur, noFFStats, err := run(false)
	if err != nil {
		return nil, err
	}
	// The equivalence contract, per core, checked end to end.
	if !reflect.DeepEqual(ffStats, noFFStats) {
		return nil, fmt.Errorf("chip %s: fast-forward changed the results:\n on: %+v\noff: %+v",
			spec.name, ffStats, noFFStats)
	}
	total := n * uint64(len(loads))
	return &MulticoreCell{
		Chip:               spec.name,
		Cores:              len(loads),
		Benches:            spec.benches,
		Schemes:            schemeNames,
		SimInstsPerSec:     rate(total, ffDur),
		SimInstsPerSecNoFF: rate(total, noFFDur),
		FFSpeedup:          noFFDur.Seconds() / ffDur.Seconds(),
	}, nil
}

// runScalar runs one cell once with the generator's BlockSource face
// hidden, forcing the scalar Next/WrongPath synthesis path end to end. Its
// wall clock never enters the report — it exists purely to cross-check the
// batched-synthesis equivalence contract on the real measured workloads.
func runScalar(cfg config.Core, scheme config.Scheme, bench trace.Benchmark, opt sim.Options) (core.Stats, error) {
	c := core.NewFromSource(cfg, scheme, bench.Name, trace.ScalarOnly(trace.New(bench, opt.Seed)))
	st, err := c.RunWarm(opt.Warmup, opt.Instructions)
	if err != nil {
		return core.Stats{}, fmt.Errorf("%s/%s scalar: %w", scheme.Name, bench.Name, err)
	}
	return st, nil
}

// timeCell runs one cell iters times in the given mode and returns the best
// wall-clock duration plus the (deterministic) statistics.
func timeCell(cfg config.Core, scheme config.Scheme, bench trace.Benchmark, opt sim.Options, iters int) (time.Duration, core.Stats, error) {
	var best time.Duration
	var stats core.Stats
	for i := 0; i < iters; i++ {
		start := time.Now() //rarlint:allow determinism wall-clock measurement is this harness's entire purpose; never enters simulated state
		st, err := sim.Run(cfg, scheme, bench, opt)
		dur := time.Since(start) //rarlint:allow determinism wall-clock measurement is this harness's entire purpose; never enters simulated state
		if err != nil {
			return 0, core.Stats{}, fmt.Errorf("%s/%s: %w", scheme.Name, bench.Name, err)
		}
		if i == 0 || dur < best {
			best = dur
		}
		stats = st
	}
	return best, stats, nil
}

// measureMatrix times a small end-to-end experiment matrix — memoizing
// engine, parallel workers, the code path cmd/experiments drives — and
// reports cells per second.
func measureMatrix(n, warmup uint64) (*Matrix, error) {
	cores := []config.Core{config.Baseline()}
	schemes := config.Schemes()
	benches := trace.MemoryIntensive()
	opt := sim.Options{Instructions: n, Warmup: warmup, Seed: 42}
	start := time.Now() //rarlint:allow determinism wall-clock measurement is this harness's entire purpose; never enters simulated state
	if _, err := sim.RunMatrix(cores, schemes, benches, opt); err != nil {
		return nil, err
	}
	dur := time.Since(start) //rarlint:allow determinism wall-clock measurement is this harness's entire purpose; never enters simulated state
	cells := len(cores) * len(schemes) * len(benches)
	return &Matrix{
		Cells:        cells,
		Instructions: n,
		Seconds:      dur.Seconds(),
		CellsPerSec:  float64(cells) / dur.Seconds(),
	}, nil
}

func rate(insts uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(insts) / d.Seconds()
}

func goVersion() string {
	return runtime.Version()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
