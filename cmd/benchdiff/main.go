// Command benchdiff compares two BENCH_core.json reports cell by cell and
// fails when throughput regressed beyond a tolerance. It is the perf
// tripwire that rides the per-PR snapshots under results/bench/: CI (or a
// reviewer) runs
//
//	go run ./cmd/benchdiff results/bench/PR08.json BENCH_core.json
//
// and gets a table of per-cell deltas plus a non-zero exit if any cell —
// single-core, multicore chip, or the matrix throughput — lost more than
// -tolerance (default 10%) of its simulated-instructions-per-second.
//
// Wall-clock benchmarks on shared machines are noisy; 10% is deliberately
// loose enough that honest noise passes and a real regression (a hot-path
// allocation, a lost fast-forward window) still trips. Cells present on
// only one side are reported but never fail the diff, so adding or
// retiring benchmarks doesn't require a flag day.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Exit codes, mirroring rarlint's contract: 0 clean, 1 regression,
// 2 usage or load error.
const (
	exitClean     = 0
	exitRegressed = 1
	exitError     = 2
)

// report mirrors the subset of the BENCH_core.json schema the diff needs;
// parsing is deliberately loose (no DisallowUnknownFields) so benchdiff
// keeps working across additive schema growth.
type report struct {
	SchemaVersion int `json:"schemaVersion"`
	Cells         []struct {
		Scheme             string  `json:"scheme"`
		Bench              string  `json:"bench"`
		SimInstsPerSec     float64 `json:"simInstsPerSec"`
		SimInstsPerSecNoFF float64 `json:"simInstsPerSecNoFF"`
	} `json:"cells"`
	Matrix struct {
		CellsPerSec float64 `json:"cellsPerSec"`
	} `json:"matrix"`
	Multicore []struct {
		Chip           string  `json:"chip"`
		SimInstsPerSec float64 `json:"simInstsPerSec"`
	} `json:"multicore"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Cells) == 0 {
		return nil, fmt.Errorf("%s: no cells", path)
	}
	return &r, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the exit-code contract
// CI depends on is itself testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tolerance", 0.10, "maximum allowed per-cell regression (0.10 = 10%)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchdiff [-tolerance 0.10] old.json new.json")
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return exitError
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchdiff:", strings.TrimSpace(err.Error()))
		return exitError
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		return fail(err)
	}

	type row struct {
		name     string
		old, new float64
	}
	var rows []row
	oldCells := map[string]float64{}
	for _, c := range oldRep.Cells {
		oldCells[c.Scheme+"/"+c.Bench] = c.SimInstsPerSec
	}
	seen := map[string]bool{}
	for _, c := range newRep.Cells {
		key := c.Scheme + "/" + c.Bench
		seen[key] = true
		if o, ok := oldCells[key]; ok {
			rows = append(rows, row{key, o, c.SimInstsPerSec})
		} else {
			fmt.Fprintf(stdout, "%-24s new cell (no baseline)\n", key)
		}
	}
	for key := range oldCells {
		if !seen[key] {
			fmt.Fprintf(stdout, "%-24s retired (baseline only)\n", key)
		}
	}
	oldChips := map[string]float64{}
	for _, c := range oldRep.Multicore {
		oldChips["chip:"+c.Chip] = c.SimInstsPerSec
	}
	for _, c := range newRep.Multicore {
		if o, ok := oldChips["chip:"+c.Chip]; ok {
			rows = append(rows, row{"chip:" + c.Chip, o, c.SimInstsPerSec})
		}
	}
	if oldRep.Matrix.CellsPerSec > 0 && newRep.Matrix.CellsPerSec > 0 {
		rows = append(rows, row{"matrix cells/s", oldRep.Matrix.CellsPerSec, newRep.Matrix.CellsPerSec})
	}

	regressed := 0
	for _, r := range rows {
		delta := r.new/r.old - 1
		mark := ""
		if delta < -*tol {
			mark = "  REGRESSED"
			regressed++
		}
		fmt.Fprintf(stdout, "%-24s %12.0f -> %12.0f  %+6.1f%%%s\n", r.name, r.old, r.new, delta*100, mark)
	}
	if regressed > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d cell(s) regressed more than %.0f%%\n", regressed, *tol*100)
		return exitRegressed
	}
	fmt.Fprintf(stdout, "benchdiff: %d cells compared, none regressed more than %.0f%%\n", len(rows), *tol*100)
	return exitClean
}
