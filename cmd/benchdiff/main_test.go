package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cellsJSON builds a minimal report with the given scheme/bench cells.
func cellsJSON(cells map[string]float64, matrix float64, chips map[string]float64) string {
	var b strings.Builder
	b.WriteString(`{"schemaVersion":1,"cells":[`)
	first := true
	for key, v := range cells {
		parts := strings.SplitN(key, "/", 2)
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, `{"scheme":%q,"bench":%q,"simInstsPerSec":%g}`, parts[0], parts[1], v)
	}
	b.WriteString(`]`)
	if matrix > 0 {
		fmt.Fprintf(&b, `,"matrix":{"cellsPerSec":%g}`, matrix)
	}
	if len(chips) > 0 {
		b.WriteString(`,"multicore":[`)
		first = true
		for chip, v := range chips {
			if !first {
				b.WriteString(",")
			}
			first = false
			fmt.Fprintf(&b, `{"chip":%q,"simInstsPerSec":%g}`, chip, v)
		}
		b.WriteString(`]`)
	}
	b.WriteString(`}`)
	return b.String()
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTripwire drives the >tolerance regression detection table-style:
// which deltas on which cell kinds exit 0 vs 1.
func TestTripwire(t *testing.T) {
	base := map[string]float64{"rar/stream": 1000, "baseline/pointer": 2000}
	tests := []struct {
		name         string
		newCells     map[string]float64
		oldM, newM   float64
		oldCh, newCh map[string]float64
		args         []string
		want         int
		wantOut      string
	}{
		{
			name:     "clean-identical",
			newCells: map[string]float64{"rar/stream": 1000, "baseline/pointer": 2000},
			want:     exitClean,
			wantOut:  "none regressed",
		},
		{
			name:     "noise-inside-tolerance",
			newCells: map[string]float64{"rar/stream": 905, "baseline/pointer": 2000},
			want:     exitClean,
		},
		{
			name:     "improvement-never-fails",
			newCells: map[string]float64{"rar/stream": 5000, "baseline/pointer": 2000},
			want:     exitClean,
		},
		{
			name:     "cell-regressed-beyond-10pct",
			newCells: map[string]float64{"rar/stream": 880, "baseline/pointer": 2000},
			want:     exitRegressed,
			wantOut:  "REGRESSED",
		},
		{
			name:     "tight-tolerance-flags-noise",
			newCells: map[string]float64{"rar/stream": 905, "baseline/pointer": 2000},
			args:     []string{"-tolerance", "0.05"},
			want:     exitRegressed,
		},
		{
			name:     "loose-tolerance-accepts-drop",
			newCells: map[string]float64{"rar/stream": 600, "baseline/pointer": 2000},
			args:     []string{"-tolerance", "0.50"},
			want:     exitClean,
		},
		{
			name:     "matrix-cell-regression",
			newCells: map[string]float64{"rar/stream": 1000, "baseline/pointer": 2000},
			oldM:     100, newM: 50,
			want:    exitRegressed,
			wantOut: "matrix cells/s",
		},
		{
			name:     "chip-cell-regression",
			newCells: map[string]float64{"rar/stream": 1000, "baseline/pointer": 2000},
			oldCh:    map[string]float64{"4xrar": 400}, newCh: map[string]float64{"4xrar": 200},
			want:    exitRegressed,
			wantOut: "chip:4xrar",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir := t.TempDir()
			oldPath := writeFile(t, dir, "old.json", cellsJSON(base, tt.oldM, tt.oldCh))
			newPath := writeFile(t, dir, "new.json", cellsJSON(tt.newCells, tt.newM, tt.newCh))
			var out, errb strings.Builder
			code := run(append(tt.args, oldPath, newPath), &out, &errb)
			if code != tt.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tt.want, out.String(), errb.String())
			}
			if tt.wantOut != "" && !strings.Contains(out.String(), tt.wantOut) {
				t.Errorf("stdout lacks %q:\n%s", tt.wantOut, out.String())
			}
			if tt.want == exitRegressed && !strings.Contains(errb.String(), "regressed more than") {
				t.Errorf("stderr lacks the regression summary:\n%s", errb.String())
			}
		})
	}
}

// TestMissingCells pins the no-flag-day contract: cells present on only
// one side are reported but never fail the diff.
func TestMissingCells(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json",
		cellsJSON(map[string]float64{"rar/stream": 1000, "rar/retired": 500}, 0, nil))
	newPath := writeFile(t, dir, "new.json",
		cellsJSON(map[string]float64{"rar/stream": 1000, "rar/fresh": 900}, 0, nil))
	var out, errb strings.Builder
	if code := run([]string{oldPath, newPath}, &out, &errb); code != exitClean {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitClean, errb.String())
	}
	for _, want := range []string{"rar/fresh", "new cell (no baseline)", "rar/retired", "retired (baseline only)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout lacks %q:\n%s", want, out.String())
		}
	}
}

// TestExitCodes pins the usage/load-error contract: malformed JSON,
// empty reports, unreadable files and bad usage all exit 2 with a
// diagnostic on stderr — never a silent pass.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := writeFile(t, dir, "good.json", cellsJSON(map[string]float64{"rar/stream": 1000}, 0, nil))
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"no-args", nil, "usage:"},
		{"one-arg", []string{good}, "usage:"},
		{"bad-flag", []string{"-nosuch", good, good}, ""},
		{"missing-file", []string{filepath.Join(dir, "absent.json"), good}, "absent.json"},
		{"malformed-json", []string{writeFile(t, dir, "broken.json", `{"cells": [`), good}, "broken.json"},
		{"no-cells", []string{writeFile(t, dir, "empty.json", `{"cells": []}`), good}, "no cells"},
		{"malformed-new-side", []string{good, writeFile(t, dir, "broken2.json", `not json`)}, "broken2.json"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(tt.args, &out, &errb); code != exitError {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitError, out.String(), errb.String())
			}
			if !strings.Contains(errb.String(), tt.wantErr) {
				t.Errorf("stderr lacks %q:\n%s", tt.wantErr, errb.String())
			}
		})
	}
}
