// Command experiments regenerates the paper's evaluation: every figure of
// "Reliability-Aware Runahead" (HPCA 2022), as text tables and optionally
// CSV. See DESIGN.md §3 for the experiment index.
//
// All figures share one memoizing simulation engine, so each unique
// (core, scheme, benchmark, options) cell is simulated exactly once per
// invocation; with -cache, cells persist on disk and later invocations
// warm-start from them.
//
// Usage:
//
//	experiments                       # all figures, 1M instructions per cell
//	experiments -fig 9                # one figure
//	experiments -n 4000000 -csv results/
//	experiments -cache results/cache  # persist cells; re-runs warm-start
//	experiments -progress             # per-cell progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rarsim/internal/experiments"
	"rarsim/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1,3,4,5,7,8,9,10,11, all, or an ablation (ablations, timer, mshr, scaling, seeds)")
		n        = flag.Uint64("n", 1_000_000, "committed instructions measured per simulation cell")
		warmup   = flag.Uint64("warmup", 0, "instructions committed before measurement (default n/5)")
		seed     = flag.Uint64("seed", 42, "workload generation seed")
		csv      = flag.String("csv", "", "directory to also write CSV tables into")
		par      = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache", "", "directory to persist simulated cells into (e.g. results/cache); re-runs warm-start from it")
		progress = flag.Bool("progress", false, "print per-cell progress to stderr")
		noFF     = flag.Bool("no-ff", false, "disable the stall fast-forward (cycle-by-cycle simulation; identical results, slower)")
	)
	flag.Parse()

	if *warmup == 0 {
		*warmup = *n / 5
	}

	var (
		eng *sim.Engine
		err error
	)
	if *cacheDir != "" {
		if eng, err = sim.NewPersistentEngine(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	} else {
		eng = sim.NewEngine()
	}
	if *progress {
		eng.OnCell = func(p sim.CellProgress) {
			src := ""
			if p.Source != "sim" {
				src = " [" + p.Source + "]"
			}
			fmt.Fprintf(os.Stderr, "[%4d sim %4d hit] %-40s IPC %6.3f  MLP %6.2f  %s%s\n",
				p.Metrics.Simulated, p.Metrics.Hits, p.Key, p.IPC, p.MLP,
				p.Dur.Round(time.Millisecond), src)
		}
	}

	cfg := experiments.Config{
		Opt:    sim.Options{Instructions: *n, Warmup: *warmup, Seed: *seed, Parallelism: *par, NoFastForward: *noFF},
		Out:    os.Stdout,
		CSVDir: *csv,
		Engine: eng,
	}
	// Host-side wall-clock around the whole invocation: progress/summary
	// output only, never part of simulated state.
	start := time.Now() //rarlint:allow determinism host-side timing; reported to the user, never enters simulated state
	if err := experiments.ByName(*fig, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	m := eng.Metrics()
	fmt.Printf("cells: %d unique (%d simulated, %d cache hits, %d from disk), sim time %s\n",
		m.Unique, m.Simulated, m.Hits, m.DiskHits, m.SimTime.Round(time.Millisecond))
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second)) //rarlint:allow determinism host-side timing; reported to the user, never enters simulated state
}
