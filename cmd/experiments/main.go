// Command experiments regenerates the paper's evaluation: every figure of
// "Reliability-Aware Runahead" (HPCA 2022), as text tables and optionally
// CSV. See DESIGN.md §3 for the experiment index.
//
// Usage:
//
//	experiments              # all figures, 1M instructions per cell
//	experiments -fig 9       # one figure
//	experiments -n 4000000 -csv results/
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rarsim/internal/experiments"
	"rarsim/internal/sim"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1,3,4,5,7,8,9,10,11, all, or an ablation (ablations, timer, mshr, scaling, seeds)")
		n      = flag.Uint64("n", 1_000_000, "committed instructions measured per simulation cell")
		warmup = flag.Uint64("warmup", 0, "instructions committed before measurement (default n/5)")
		seed   = flag.Uint64("seed", 42, "workload generation seed")
		csv    = flag.String("csv", "", "directory to also write CSV tables into")
		par    = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *warmup == 0 {
		*warmup = *n / 5
	}
	cfg := experiments.Config{
		Opt:    sim.Options{Instructions: *n, Warmup: *warmup, Seed: *seed, Parallelism: *par},
		Out:    os.Stdout,
		CSVDir: *csv,
	}
	start := time.Now()
	if err := experiments.ByName(*fig, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second))
}
