// Command rarlint statically enforces the simulator's correctness
// contracts: determinism of everything feeding the memoized simulation
// cache, hygiene of the statistics that become report columns, coverage
// of every config knob the sweeps claim to vary, error-return
// discipline, purity of the stall fast-forward's event computation
// (//rarlint:pure), completeness of the runahead exit/flush restore set
// (//rarlint:survives), dimensional consistency of the metrics
// (//rarlint:unit), guarded-by lock discipline (//rarlint:guardedby),
// allocation-freedom of the hot loop (//rarlint:hot), next-event
// coverage of every stage-written field (//rarlint:quiescent), and
// exact agreement between the bulk-advance write set and the declared
// n-scalable fields (//rarlint:nscaled). Pure standard library —
// go/parser, go/ast, go/types — with no external dependencies.
//
// Usage:
//
//	rarlint ./...                 # whole module, all checks (CI mode)
//	rarlint -check ffsound        # one check (-checks is an alias)
//	rarlint -json ./...           # schema-stable JSON findings for CI
//	rarlint -tests ./...          # load and analyze _test.go files too
//	rarlint path/to/module        # another module root (e.g. a corpus)
//
// Exit status: 0 clean, 1 findings, 2 load error. Audited exceptions are
// annotated in place:
//
//	start := time.Now() //rarlint:allow determinism host-side timing
//
// See README.md ("Static analysis: rarlint") and DESIGN.md §6 and §8
// ("Statically enforced invariants").
package main

import (
	"os"

	"rarsim/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
