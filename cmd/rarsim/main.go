// Command rarsim runs ad-hoc simulations: one benchmark (or the whole
// suite) under one scheme (or several), printing the paper's metrics.
//
// Examples:
//
//	rarsim -bench mcf -scheme RAR -n 2000000
//	rarsim -suite mem -schemes OoO,FLUSH,PRE,RAR-LATE,RAR
//	rarsim -bench lbm -scheme PRE -prefetch +L3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rarsim"
)

func main() {
	var (
		benchName = flag.String("bench", "", "single benchmark to run (see -list)")
		suite     = flag.String("suite", "", "benchmark suite: mem, compute, or all")
		schemes   = flag.String("schemes", "OoO,FLUSH,PRE,RAR-LATE,RAR", "comma-separated schemes")
		n         = flag.Uint64("n", 1_000_000, "committed instructions measured per run")
		warmup    = flag.Uint64("warmup", 0, "instructions committed before measurement (default n/5)")
		seed      = flag.Uint64("seed", 42, "workload generation seed")
		coreName  = flag.String("core", "baseline", "core config: baseline or core-1..core-4")
		prefetch  = flag.String("prefetch", "off", "hardware prefetcher: off, +L3, +ALL")
		list      = flag.Bool("list", false, "list benchmarks and schemes, then exit")
		timeline  = flag.Uint64("timeline", 0, "print an AVF-over-time series with this window size in cycles")
		jsonOut   = flag.Bool("json", false, "emit one JSON object per run instead of the table")
		cacheDir  = flag.String("cache", "", "directory to persist simulated cells into; repeated runs of the same cell warm-start from it")
		noFF      = flag.Bool("no-ff", false, "disable the stall fast-forward (cycle-by-cycle simulation; identical results, slower)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(rarsim.BenchmarkNames(), " "))
		var ss []string
		for _, s := range rarsim.RunaheadVariants() {
			ss = append(ss, s.Name)
		}
		fmt.Println("schemes: OoO", strings.Join(ss, " "))
		return
	}

	cfg, err := pickCore(*coreName)
	check(err)
	switch *prefetch {
	case "off", "":
	case "+L3":
		cfg = cfg.WithPrefetch(rarsim.PrefetchL3)
	case "+ALL":
		cfg = cfg.WithPrefetch(rarsim.PrefetchAll)
	default:
		check(fmt.Errorf("unknown prefetch mode %q", *prefetch))
	}

	var benches []rarsim.Benchmark
	switch {
	case *benchName != "":
		b, err := rarsim.BenchmarkByName(*benchName)
		check(err)
		benches = []rarsim.Benchmark{b}
	case *suite == "mem" || *suite == "":
		benches = rarsim.MemoryIntensiveBenchmarks()
	case *suite == "compute":
		benches = rarsim.ComputeIntensiveBenchmarks()
	case *suite == "all":
		benches = rarsim.Benchmarks()
	default:
		check(fmt.Errorf("unknown suite %q", *suite))
	}

	var schemeList []rarsim.Scheme
	for _, name := range strings.Split(*schemes, ",") {
		s, err := rarsim.SchemeByName(strings.TrimSpace(name))
		check(err)
		schemeList = append(schemeList, s)
	}

	if *warmup == 0 {
		*warmup = *n / 5
	}
	opt := rarsim.Options{Instructions: *n, Warmup: *warmup, Seed: *seed, NoFastForward: *noFF}
	if *timeline > 0 {
		runTimeline(cfg, schemeList, benches, opt, *timeline)
		return
	}
	if !*jsonOut {
		fmt.Printf("%-12s %-10s %8s %8s %8s %8s %7s %9s %12s %7s %8s\n",
			"bench", "scheme", "IPC", "MPKI", "MLP", "mispred", "RA/flsh", "AVF", "ABC", "ld/st", "sim-ms")
	}
	eng := rarsim.NewEngine()
	if *cacheDir != "" {
		eng, err = rarsim.NewPersistentEngine(*cacheDir)
		check(err)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, b := range benches {
		for _, s := range schemeList {
			st, err := eng.Run(cfg, s, b, opt)
			check(err)
			if *jsonOut {
				check(enc.Encode(st))
				continue
			}
			events := st.RunaheadEntries + st.Flushes
			// Simulated wall-clock time from the core frequency: the one
			// place cycle counts become seconds (absolute FIT/MTTF scale).
			simMS := float64(st.Cycles) / (cfg.FrequencyGHz * 1e6)
			ldst := float64(st.CommittedLoads) / float64(max(st.CommittedStores, 1))
			fmt.Printf("%-12s %-10s %8.3f %8.2f %8.2f %8.4f %7d %9.5f %12d %7.2f %8.2f\n",
				b.Name, s.Name, st.IPC(), st.MPKI(), st.Mem.MLP(),
				st.MispredictRate(), events, st.AVF(), st.TotalABC, ldst, simMS)
		}
	}
}

// runTimeline prints the AVF phase series of each (scheme, benchmark)
// cell: one row per window of the given cycle width.
func runTimeline(cfg rarsim.CoreConfig, schemes []rarsim.Scheme, benches []rarsim.Benchmark, opt rarsim.Options, window uint64) {
	for _, b := range benches {
		for _, s := range schemes {
			series, bits, err := rarsim.RunTimeline(cfg, s, b.Name, opt, window)
			check(err)
			fmt.Printf("# %s / %s (window %d cycles)\n", b.Name, s.Name, window)
			for _, w := range series {
				avf := rarsim.WindowAVF(w, bits, window)
				fmt.Printf("%12d %8.4f %s\n", w.StartCycle, avf, avfBar(avf))
			}
		}
	}
}

func avfBar(avf float64) string {
	n := int(avf * 80)
	if n > 78 {
		n = 78
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func pickCore(name string) (rarsim.CoreConfig, error) {
	if name == "baseline" {
		return rarsim.BaselineConfig(), nil
	}
	for _, c := range rarsim.ScaledConfigs() {
		if c.Name == name {
			return c, nil
		}
	}
	return rarsim.CoreConfig{}, fmt.Errorf("unknown core %q", name)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rarsim:", err)
		os.Exit(1)
	}
}
