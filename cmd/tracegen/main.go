// Command tracegen records synthetic-benchmark instruction streams into
// trace files that the simulator (and external tools) can replay, and
// inspects existing traces.
//
//	tracegen -bench mcf -n 1000000 -o mcf.trace.gz
//	tracegen -inspect mcf.trace.gz
//
// The trace format is documented in internal/trace/file.go. Replaying a
// trace reproduces the generating run exactly (see rarsim.RunTraceFile).
package main

import (
	"flag"
	"fmt"
	"os"

	"rarsim/internal/isa"
	"rarsim/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark to record")
		n       = flag.Uint64("n", 1_000_000, "instructions to record")
		seed    = flag.Uint64("seed", 42, "generation seed")
		out     = flag.String("o", "", "output path (.gz compresses)")
		inspect = flag.String("inspect", "", "print a summary of an existing trace and exit")
	)
	flag.Parse()

	if *inspect != "" {
		fs, err := trace.OpenTraceFile(*inspect)
		check(err)
		summarize(fs)
		return
	}
	if *bench == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -bench and -o (or -inspect)")
		os.Exit(1)
	}
	b, err := trace.ByName(*bench)
	check(err)
	gen := trace.New(b, *seed)
	check(trace.WriteTraceFile(*out, b.Name, gen, *n))
	fmt.Printf("wrote %d instructions of %s to %s\n", *n, b.Name, *out)
}

func summarize(fs *trace.FileSource) {
	var counts [isa.NumClasses]int
	var in isa.Inst
	for i := 0; i < fs.Len(); i++ {
		fs.Next(&in)
		counts[in.Class]++
	}
	fmt.Printf("trace %q: %d instructions\n", fs.Name(), fs.Len())
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Printf("  %-7s %9d (%.1f%%)\n", c, counts[c],
			100*float64(counts[c])/float64(fs.Len()))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
