package rarsim_test

import (
	"fmt"

	"rarsim"
)

// Example demonstrates the one-call API: simulate a benchmark under a
// scheme and read the headline metrics.
func Example() {
	opt := rarsim.Options{Instructions: 50_000, Warmup: 10_000, Seed: 42}
	st, err := rarsim.Run(rarsim.BaselineConfig(), rarsim.OoO, "libquantum", opt)
	if err != nil {
		panic(err)
	}
	fmt.Println("committed:", st.Committed)
	fmt.Println("memory-intensive:", st.MPKI() > 8)
	// Output:
	// committed: 50000
	// memory-intensive: true
}

// ExampleRunMatrix shows a paper-style normalised comparison: the OoO
// baseline must be part of the matrix, and every metric of the baseline
// against itself is exactly 1.
func ExampleRunMatrix() {
	b, err := rarsim.BenchmarkByName("gems")
	if err != nil {
		panic(err)
	}
	rs, err := rarsim.RunMatrix(
		[]rarsim.CoreConfig{rarsim.BaselineConfig()},
		[]rarsim.Scheme{rarsim.OoO, rarsim.RAR},
		[]rarsim.Benchmark{b},
		rarsim.Options{Instructions: 50_000, Warmup: 10_000, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline vs itself: %.1fx\n", rs.MTTF("baseline", "OoO", "gems"))
	fmt.Println("RAR beats baseline MTTF:", rs.MTTF("baseline", "RAR", "gems") > 1)
	// Output:
	// baseline vs itself: 1.0x
	// RAR beats baseline MTTF: true
}

// ExampleSchemeByName resolves the paper's scheme names.
func ExampleSchemeByName() {
	s, err := rarsim.SchemeByName("RAR-LATE")
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name, s.Early, s.FlushAtExit, s.Lean)
	// Output:
	// RAR-LATE false true true
}
