module rarsim

go 1.22
