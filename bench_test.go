package rarsim_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each BenchmarkFigN drives the same code path as
// `cmd/experiments -fig N` (workload generation, the full (core × scheme ×
// benchmark) matrix, normalisation, table rendering) at a reduced
// instruction count, so `go test -bench=.` regenerates every experiment
// end to end. Paper-scale numbers come from `cmd/experiments -n 1000000`;
// see EXPERIMENTS.md for paper-versus-measured values.
//
// Tables map to benchmarks as follows: Table I (scaled cores) is exercised
// by Fig4/Fig10; Table II (the baseline core) by every figure and by the
// per-scheme throughput benchmarks below; Table III (bit budgets) by every
// ACE-accounting run; Table IV (the variant matrix) by Fig9.

import (
	"io"
	"testing"

	"rarsim"
	"rarsim/internal/experiments"
	"rarsim/internal/isa"
	"rarsim/internal/sim"
	"rarsim/internal/trace"
)

// benchOpt keeps matrix benchmarks at interactive speed. The shapes at
// this scale already match the full runs; EXPERIMENTS.md records both.
func benchOpt() sim.Options {
	return sim.Options{Instructions: 25_000, Warmup: 8_000, Seed: 42, Parallelism: 0}
}

func benchFig(b *testing.B, fig string) {
	b.Helper()
	cfg := experiments.Config{Opt: benchOpt(), Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.ByName(fig, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_PerfVsReliability(b *testing.B) { benchFig(b, "1") }
func BenchmarkFig3_ABCStacks(b *testing.B)         { benchFig(b, "3") }
func BenchmarkFig4_BackendScalingABC(b *testing.B) { benchFig(b, "4") }
func BenchmarkFig5_ACEAttribution(b *testing.B)    { benchFig(b, "5") }
func BenchmarkFig7_Reliability(b *testing.B)       { benchFig(b, "7") }
func BenchmarkFig8_Performance(b *testing.B)       { benchFig(b, "8") }
func BenchmarkFig9_RunaheadVariants(b *testing.B)  { benchFig(b, "9") }
func BenchmarkFig10_ResourceScaling(b *testing.B)  { benchFig(b, "10") }
func BenchmarkFig11_Prefetching(b *testing.B)      { benchFig(b, "11") }

// Per-scheme simulator throughput on the Table II baseline core: how many
// simulated instructions per second the model achieves, and the headline
// metrics of each scheme on a representative streaming benchmark.
func benchScheme(b *testing.B, scheme rarsim.Scheme) {
	b.Helper()
	const insts = 100_000
	var ipc, avf float64
	for i := 0; i < b.N; i++ {
		st, err := rarsim.Run(rarsim.BaselineConfig(), scheme, "libquantum",
			rarsim.Options{Instructions: insts, Warmup: 20_000, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		ipc, avf = st.IPC(), st.AVF()
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "simInsts/s")
	b.ReportMetric(ipc, "IPC")
	b.ReportMetric(avf*1000, "mAVF")
}

func BenchmarkSchemeOoO(b *testing.B)     { benchScheme(b, rarsim.OoO) }
func BenchmarkSchemeFLUSH(b *testing.B)   { benchScheme(b, rarsim.FLUSH) }
func BenchmarkSchemeTR(b *testing.B)      { benchScheme(b, rarsim.TR) }
func BenchmarkSchemePRE(b *testing.B)     { benchScheme(b, rarsim.PRE) }
func BenchmarkSchemeRARLate(b *testing.B) { benchScheme(b, rarsim.RARLate) }
func BenchmarkSchemeRAR(b *testing.B)     { benchScheme(b, rarsim.RAR) }

// BenchmarkWorkloadGeneration measures the synthetic trace generator alone.
func BenchmarkWorkloadGeneration(b *testing.B) {
	bench, err := rarsim.BenchmarkByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	g := trace.New(bench, 42)
	var in isa.Inst
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		g.Next(&in)
		sink += in.PC
	}
	_ = sink
}

// Ablation benches: the design-choice sweeps DESIGN.md calls out, driven
// through the same path as `cmd/experiments -fig <ablation>`.
func BenchmarkAblationTimer(b *testing.B)     { benchFig(b, "timer") }
func BenchmarkAblationMSHR(b *testing.B)      { benchFig(b, "mshr") }
func BenchmarkAblationScaling(b *testing.B)   { benchFig(b, "scaling") }
func BenchmarkAblationSeeds(b *testing.B)     { benchFig(b, "seeds") }
func BenchmarkAblationEnergy(b *testing.B)    { benchFig(b, "energy") }
func BenchmarkAblationInjection(b *testing.B) { benchFig(b, "inject") }
func BenchmarkAblationMulticore(b *testing.B) { benchFig(b, "multicore") }
